"""Job queues used by the schedulers (the paper's Qedf, Qother, Qsupp).

All three queues of the V-Dover algorithm are priority queues over jobs
(possibly with attached bookkeeping tuples) that additionally support
*removal by job* — a job can leave a queue because its deadline passed,
because the zero-laxity handler drained Qedf into Qother, or because it got
scheduled.  :class:`JobQueue` implements this with a heap plus lazy
deletion (tombstones), giving O(log n) push/pop/remove amortised.

Tombstone hygiene: lazy deletion alone lets the heap grow without bound
under preemption churn (Qedf→Qother drains, evictions) even while the live
membership stays small.  :meth:`JobQueue.remove` therefore counts the
tombstones it creates and, when they outnumber the live entries
(churn ratio > 1/2, the same trigger :class:`repro.sim.events.EventQueue`
uses for stale events), rebuilds the heap from the surviving entries —
preserving each entry's original insertion counter so tie-break order is
untouched.  This bounds the heap at ~2× the live size regardless of how
long the run churns.

Orderings (paper, Section III-D):

* ``Qedf``   — earliest deadline first (entries are ``(job, t_insert,
  cslack_insert)`` tuples);
* ``Qother`` — earliest deadline first;
* ``Qsupp``  — **latest** deadline first.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generic, Iterator, Optional, Tuple, TypeVar

from repro.errors import SchedulingError
from repro.sim.job import Job

__all__ = ["JobQueue", "edf_key", "latest_deadline_key", "EdfEntry"]

#: Bookkeeping entry for Qedf: (job, t_insert, cslack_insert).
EdfEntry = Tuple[Job, float, float]

E = TypeVar("E")


def edf_key(job: Job) -> tuple:
    """Earliest-deadline-first ordering key with deterministic tie-break."""
    return (job.deadline, job.jid)


def latest_deadline_key(job: Job) -> tuple:
    """Latest-deadline-first ordering key (used by Qsupp)."""
    return (-job.deadline, job.jid)


class JobQueue(Generic[E]):
    """Heap-ordered queue of entries keyed by their job, with removal.

    Parameters
    ----------
    key:
        Maps a *job* to its ordering key (smallest first).
    entry_job:
        Extracts the job from an entry.  Defaults to identity, for queues
        whose entries are bare jobs; Qedf passes ``lambda e: e[0]``.
    name:
        For diagnostics.
    """

    def __init__(
        self,
        key: Callable[[Job], tuple] = edf_key,
        *,
        entry_job: Callable[[E], Job] | None = None,
        name: str = "queue",
    ) -> None:
        self._key = key
        self._entry_job = entry_job or (lambda entry: entry)  # type: ignore[assignment]
        self._name = name
        self._heap: list[tuple[tuple, int, E]] = []
        self._live: dict[int, E] = {}  # jid -> current entry
        self._counter = itertools.count()
        self._tombstones = 0  # dead heap entries not yet purged

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, job: Job) -> bool:
        return job.jid in self._live

    def jobs(self) -> Iterator[Job]:
        """Iterate over live member jobs (heap order not guaranteed)."""
        for entry in self._live.values():
            yield self._entry_job(entry)

    def entries(self) -> Iterator[E]:
        """Iterate over live entries (heap order not guaranteed)."""
        yield from self._live.values()

    def live_jids(self) -> list[int]:
        """Sorted jids of live members.

        The canonical serialization of queue membership for snapshots and
        policy-state capture — avoids materialising Job views just to read
        their ``jid``.
        """
        return sorted(self._live)

    @property
    def heap_size(self) -> int:
        """Physical heap length including tombstones (hygiene telemetry)."""
        return len(self._heap)

    # ------------------------------------------------------------------
    def insert(self, entry: E) -> None:
        """Insert an entry; its job must not already be a member."""
        job = self._entry_job(entry)
        if job.jid in self._live:
            raise SchedulingError(
                f"{self._name}: job {job.jid} inserted twice"
            )
        self._live[job.jid] = entry
        heapq.heappush(self._heap, (self._key(job), next(self._counter), entry))

    def _purge(self) -> None:
        """Drop tombstoned heap entries from the top."""
        heap = self._heap
        live = self._live
        entry_job = self._entry_job
        while heap:
            entry = heap[0][2]
            if live.get(entry_job(entry).jid) is entry:
                return
            heapq.heappop(heap)
            self._tombstones -= 1

    def first(self) -> E:
        """The paper's ``FirstInQueue``: best entry without removal."""
        self._purge()
        if not self._heap:
            raise SchedulingError(f"{self._name}: first() on empty queue")
        return self._heap[0][2]

    def dequeue(self) -> E:
        """The paper's ``Dequeue``: pop and return the best entry."""
        self._purge()
        if not self._heap:
            raise SchedulingError(f"{self._name}: dequeue() on empty queue")
        _, _, entry = heapq.heappop(self._heap)
        del self._live[self._entry_job(entry).jid]
        return entry

    def remove(self, job: Job) -> Optional[E]:
        """Remove ``job``'s entry if present; return it (else ``None``).

        O(1) amortised: the heap copy becomes a tombstone purged lazily,
        and when tombstones outnumber live entries the heap is compacted
        (see module docstring).
        """
        entry = self._live.pop(job.jid, None)
        if entry is not None:
            self._tombstones += 1
            if self._tombstones * 2 > len(self._heap):
                self.compact()
        return entry

    def compact(self) -> int:
        """Rebuild the heap from live entries only; returns tombstones
        dropped.

        Each surviving heap tuple keeps its original insertion counter, so
        the (key, counter) total order — and therefore every future
        ``first``/``dequeue`` result — is exactly what it would have been
        without compaction.
        """
        live = self._live
        entry_job = self._entry_job
        before = len(self._heap)
        self._heap = [
            item
            for item in self._heap
            if live.get(entry_job(item[2]).jid) is item[2]
        ]
        heapq.heapify(self._heap)
        self._tombstones = 0
        return before - len(self._heap)

    def drain(self) -> list[E]:
        """Remove and return *all* live entries in key order.

        Single pass: filter the live heap tuples out of the heap once and
        sort them by their (key, counter) prefix — rather than repeated
        ``dequeue()`` calls, each of which re-purges tombstones from the
        top of a shrinking heap.
        """
        live = self._live
        entry_job = self._entry_job
        kept = [
            item
            for item in self._heap
            if live.get(entry_job(item[2]).jid) is item[2]
        ]
        # (key, counter) is unique, so entries themselves are never compared.
        kept.sort()
        self._heap.clear()
        self._live.clear()
        self._tombstones = 0
        return [item[2] for item in kept]

    def clear(self) -> None:
        self._live.clear()
        self._heap.clear()
        self._tombstones = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobQueue({self._name}, size={len(self._live)})"
