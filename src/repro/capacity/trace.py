"""Trace-driven capacity: replay a sampled residual-capacity time series.

The paper's system is motivated by real clouds where the residual capacity
left by primary jobs is *measured*, not modelled.  With no network access in
this environment we cannot ship real utilisation traces, so
:class:`TraceCapacity` accepts any ``(timestamps, values)`` series — e.g.
one produced by :mod:`repro.cloud.primary` — and exposes it through the
standard :class:`~repro.capacity.base.CapacityFunction` interface using
zero-order hold (the conventional semantics for sampled utilisation data).

This class is also the adapter for *continuous* analytic models: sample the
model on a grid and replay it.

Being a :class:`~repro.capacity.piecewise.PiecewiseConstantCapacity`,
a trace inherits the shared prefix-sum capacity index
(:mod:`repro.capacity.prefix`): ``integrate``/``advance`` over a
million-sample trace are O(log n) bisections, not linear replays.  Bound
validation is tolerance-aware (1e-12 relative — see
:mod:`repro.capacity.base`), so a measured sample sitting one ulp outside
an explicitly declared band no longer rejects the trace; use ``clip=True``
for genuinely dirty data whose spikes exceed that tolerance.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.errors import CapacityError

__all__ = ["TraceCapacity", "sample_function"]


class TraceCapacity(PiecewiseConstantCapacity):
    """Zero-order-hold replay of a sampled capacity trace.

    Parameters
    ----------
    timestamps:
        Strictly increasing sample times; the first must be ``0.0``.
    values:
        Capacity observed at each timestamp, held constant until the next
        sample (and forever after the last one).
    lower, upper:
        Optional declared bounds (default: realized min/max).
    clip:
        If declared bounds are given and ``clip=True``, out-of-bound samples
        are clamped into ``[lower, upper]`` instead of raising.  Real traces
        routinely contain measurement spikes; clamping them is the
        documented, intentional behaviour for dirty data.
    """

    def __init__(
        self,
        timestamps: Sequence[float],
        values: Sequence[float],
        *,
        lower: float | None = None,
        upper: float | None = None,
        clip: bool = False,
    ) -> None:
        ts = np.asarray(timestamps, dtype=float)
        vs = np.asarray(values, dtype=float)
        if ts.ndim != 1 or vs.ndim != 1 or ts.size != vs.size or ts.size == 0:
            raise CapacityError("timestamps/values must be equal-length 1-D, non-empty")
        if clip:
            if lower is None or upper is None:
                raise CapacityError("clip=True requires explicit lower and upper")
            vs = np.clip(vs, lower, upper)
        super().__init__(ts.tolist(), vs.tolist(), lower=lower, upper=upper)


def sample_function(
    fn: Callable[[float], float],
    horizon: float,
    dt: float,
    *,
    lower: float | None = None,
    upper: float | None = None,
) -> TraceCapacity:
    """Discretise an arbitrary positive function ``fn`` onto a uniform grid.

    Uses midpoint sampling: the value held on ``[i*dt, (i+1)*dt)`` is
    ``fn((i + 0.5) * dt)``.  This is how a general integrable ``c(t)`` from
    the paper's input set enters the (exact, piecewise-constant) engine.
    """
    if horizon <= 0.0 or dt <= 0.0:
        raise CapacityError(f"need positive horizon and dt, got {horizon!r}, {dt!r}")
    n = max(1, int(np.ceil(horizon / dt)))
    ts = [i * dt for i in range(n)]
    vs = [float(fn((i + 0.5) * dt)) for i in range(n)]
    return TraceCapacity(ts, vs, lower=lower, upper=upper)
