"""Unit tests for secondary VM requests."""

import pytest

from repro.cloud import VMRequest, requests_to_jobs
from repro.errors import InvalidInstanceError


def req(**overrides):
    kwargs = dict(
        request_id=0,
        submit_time=1.0,
        compute_demand=4.0,
        latest_finish=10.0,
        bid=2.5,
    )
    kwargs.update(overrides)
    return VMRequest(**kwargs)


class TestRequest:
    def test_revenue_is_bid_times_demand(self):
        assert req().revenue == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(compute_demand=0.0),
            dict(bid=0.0),
            dict(latest_finish=1.0),
            dict(latest_finish=0.5),
        ],
    )
    def test_rejects_bad_fields(self, overrides):
        with pytest.raises(InvalidInstanceError):
            req(**overrides)

    def test_to_job_mapping(self):
        job = req().to_job()
        assert job.jid == 0
        assert job.release == 1.0
        assert job.workload == 4.0
        assert job.deadline == 10.0
        assert job.value == pytest.approx(10.0)
        assert job.density == pytest.approx(2.5)  # density == bid

    def test_admissibility_against_floor(self):
        # window 9, demand 4: admissible at floor >= 4/9.
        assert req().is_admissible(1.0)
        assert not req().is_admissible(0.4)


class TestBatchConversion:
    def test_rekeyed_by_submit_order(self):
        requests = [
            req(request_id=5, submit_time=3.0),
            req(request_id=2, submit_time=1.0),
        ]
        jobs = requests_to_jobs(requests)
        assert [j.jid for j in jobs] == [0, 1]
        assert jobs[0].release == 1.0
