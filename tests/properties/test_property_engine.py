"""Property-based tests: every scheduler, on every random instance, must
produce a *legal* schedule (validated trace) with consistent metrics.

This is the repository's broadest net: hypothesis drives random instances
and random capacity paths through every policy, and the independent trace
validator re-checks work conservation, non-overlap and deadline legality.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import (
    DoverScheduler,
    EDFScheduler,
    FCFSScheduler,
    GreedyDensityScheduler,
    LLFScheduler,
    VDoverScheduler,
)
from repro.sim import Job, simulate

SCHEDULER_FACTORIES = [
    EDFScheduler,
    LLFScheduler,
    FCFSScheduler,
    GreedyDensityScheduler,
    lambda: VDoverScheduler(k=10.0),
    lambda: VDoverScheduler(k=10.0, supplement=False),
    lambda: DoverScheduler(k=10.0, c_hat=1.0),
    lambda: DoverScheduler(k=10.0, c_hat=4.0),
]


@st.composite
def instances(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    jobs = []
    for i in range(n):
        release = draw(st.floats(min_value=0.0, max_value=30.0))
        workload = draw(st.floats(min_value=0.05, max_value=8.0))
        slack = draw(st.floats(min_value=1.0, max_value=4.0))
        density = draw(st.floats(min_value=1.0, max_value=10.0))
        jobs.append(
            Job(
                jid=i,
                release=release,
                workload=workload,
                deadline=release + slack * workload,  # admissible at c̲=1
                value=density * workload,
            )
        )
    return jobs


@st.composite
def capacities(draw):
    kind = draw(st.sampled_from(["constant", "piecewise"]))
    if kind == "constant":
        return ConstantCapacity(draw(st.floats(min_value=1.0, max_value=4.0)))
    n = draw(st.integers(min_value=2, max_value=6))
    gaps = draw(
        st.lists(st.floats(min_value=1.0, max_value=15.0), min_size=n - 1, max_size=n - 1)
    )
    breakpoints = [0.0]
    for g in gaps:
        breakpoints.append(breakpoints[-1] + g)
    rates = draw(
        st.lists(st.floats(min_value=1.0, max_value=4.0), min_size=n, max_size=n)
    )
    return PiecewiseConstantCapacity(breakpoints, rates, lower=1.0, upper=4.0)


@settings(max_examples=40, deadline=None)
@given(jobs=instances(), capacity=capacities(), idx=st.integers(0, len(SCHEDULER_FACTORIES) - 1))
def test_every_schedule_is_legal(jobs, capacity, idx):
    """validate=True re-derives legality from first principles and raises on
    any violation; metric identities are re-checked on top."""
    scheduler = SCHEDULER_FACTORIES[idx]()
    result = simulate(jobs, capacity, scheduler, validate=True)

    # Value identity: accrued value == sum of completed jobs' values.
    by_id = {j.jid: j for j in jobs}
    assert result.value == pytest.approx(
        sum(by_id[jid].value for jid in result.completed_ids)
    )
    # Every job is accounted for exactly once.
    assert set(result.completed_ids).isdisjoint(result.failed_ids)
    assert len(result.completed_ids) + len(result.failed_ids) == len(jobs)
    # Normalisation stays in [0, 1].
    assert 0.0 - 1e-12 <= result.normalized_value <= 1.0 + 1e-12
    # Busy time never exceeds the horizon; work never exceeds capacity.
    assert result.busy_time <= result.horizon + 1e-9
    assert result.executed_work <= capacity.integrate(0.0, result.horizon) + 1e-6


@settings(max_examples=25, deadline=None)
@given(jobs=instances(), capacity=capacities())
def test_vdover_dominates_its_ablation_in_value_or_ties_often(jobs, capacity):
    """Not a theorem — supplements CAN displace nothing (they only run on
    otherwise-idle capacity) but they never *hurt* completed regular work.
    We assert the weaker invariant that holds structurally: the supplement
    variant completes a superset of... is not expressible cheaply, so we
    check both produce legal schedules and the values are finite."""
    with_supp = simulate(jobs, capacity, VDoverScheduler(k=10.0), validate=True)
    without = simulate(
        jobs, capacity, VDoverScheduler(k=10.0, supplement=False), validate=True
    )
    assert with_supp.value >= 0.0 and without.value >= 0.0


@settings(max_examples=25, deadline=None)
@given(jobs=instances())
def test_edf_completes_everything_feasible_constant(jobs):
    """If the instance is feasible (checked via EDF itself being the
    feasibility oracle), every scheduler-independent metric lines up."""
    cap = ConstantCapacity(2.0)
    result = simulate(jobs, cap, EDFScheduler(), validate=True)
    if result.n_completed == len(jobs):
        assert result.normalized_value == pytest.approx(1.0)
        assert result.value == pytest.approx(result.generated_value)
