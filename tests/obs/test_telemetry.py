"""SLO telemetry primitives: window rings, trackers, parity, exposition."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.telemetry import (
    HEALTH_STATES,
    SloTracker,
    WindowRing,
    lint_prometheus,
    render_prometheus,
    render_top,
    slo_parity_view,
)


class TestWindowRing:
    def test_observations_land_in_width_buckets(self):
        ring = WindowRing(width=2.0, slots=4)
        ring.observe(0.5, "hit")
        ring.observe(1.9, "hit")
        ring.observe(2.0, "hit")
        assert ring.buckets() == [(0, {"hit": 2.0}), (1, {"hit": 1.0})]
        assert ring.total("hit") == 3.0
        assert ring.total("missing") == 0.0

    def test_retention_prunes_oldest_buckets(self):
        ring = WindowRing(width=1.0, slots=3)
        for t in range(6):
            ring.observe(float(t), "x")
        assert [i for i, _ in ring.buckets()] == [3, 4, 5]
        assert ring.dropped_buckets == 3

    def test_rate_is_windowed_ratio(self):
        ring = WindowRing(width=1.0, slots=8)
        ring.observe(0.0, "miss")
        ring.observe(0.0, "done")
        ring.observe(1.0, "done")
        ring.observe(2.0, "done")
        assert ring.rate("miss", "done") == pytest.approx(1.0 / 3.0)
        assert WindowRing(1.0).rate("miss", "done") == 0.0

    def test_snapshot_round_trips_through_json(self):
        ring = WindowRing(width=2.5, slots=4)
        for t, name in [(0.1, "a"), (3.3, "b"), (9.9, "a"), (11.0, "a")]:
            ring.observe(t, name)
        doc = json.loads(json.dumps(ring.snapshot()))
        back = WindowRing.restore(doc)
        assert back.snapshot() == ring.snapshot()

    def test_merge_is_exact_on_retained_buckets(self):
        # One stream counted whole vs split at an arbitrary point must
        # agree on every retained bucket — the crash-resume guarantee
        # (dropped_buckets is diagnostic only and may double-count).
        stream = [(0.2, "a"), (1.7, "b"), (2.1, "a"), (5.5, "a"), (7.0, "b")]
        whole = WindowRing(width=2.0, slots=3)
        for t, name in stream:
            whole.observe(t, name)
        for cut in range(len(stream) + 1):
            left = WindowRing(width=2.0, slots=3)
            right = WindowRing(width=2.0, slots=3)
            for t, name in stream[:cut]:
                left.observe(t, name)
            for t, name in stream[cut:]:
                right.observe(t, name)
            left.merge(right)
            assert left.buckets() == whole.buckets(), f"cut={cut}"

    def test_restore_then_continue_matches_uninterrupted(self):
        # The boundary the service actually crosses: snapshot mid-stream,
        # restore, keep observing — must be bit-identical to never
        # having stopped (including dropped_buckets).
        stream = [(0.2, "a"), (1.7, "b"), (2.1, "a"), (5.5, "a"), (7.0, "b")]
        whole = WindowRing(width=2.0, slots=3)
        for t, name in stream:
            whole.observe(t, name)
        for cut in range(len(stream) + 1):
            head = WindowRing(width=2.0, slots=3)
            for t, name in stream[:cut]:
                head.observe(t, name)
            resumed = WindowRing.restore(
                json.loads(json.dumps(head.snapshot()))
            )
            for t, name in stream[cut:]:
                resumed.observe(t, name)
            assert resumed.snapshot() == whole.snapshot(), f"cut={cut}"

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ObservabilityError):
            WindowRing(1.0, 4).merge(WindowRing(2.0, 4))
        with pytest.raises(ObservabilityError):
            WindowRing(1.0, 4).merge(WindowRing(1.0, 8))

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ObservabilityError):
            WindowRing(0.0)
        with pytest.raises(ObservabilityError):
            WindowRing(1.0, slots=0)


class TestSloTracker:
    def _tracker(self):
        slo = SloTracker("t0", horizon=16.0, slots=8)
        slo.observe(1.0, "admitted")
        slo.observe(2.0, "admitted")
        slo.observe(2.5, "shed")
        slo.observe(2.5, "shed.queue_budget")
        slo.count("recoveries")
        slo.set_depth(3)
        slo.set_depth(1)
        slo.observe_fsync(0.004)
        slo.observe_fsync(0.002)
        return slo

    def test_counters_ring_and_gauges(self):
        slo = self._tracker()
        assert slo.counters["admitted"] == 2.0
        assert slo.counters["shed.queue_budget"] == 1.0
        assert slo.ring.total("admitted") == 2.0
        assert (slo.depth_last, slo.depth_hwm) == (1, 3)
        assert slo.fsync["count"] == 2
        assert slo.fsync["min"] == pytest.approx(0.002)
        assert slo.fsync["max"] == pytest.approx(0.004)

    def test_snapshot_restore_round_trip(self):
        slo = self._tracker()
        doc = json.loads(json.dumps(slo.snapshot()))
        back = SloTracker.restore(doc)
        assert back.snapshot() == slo.snapshot()

    def test_merge_pools_everything(self):
        a, b = self._tracker(), self._tracker()
        b.observe(9.0, "admitted")
        b.set_depth(7)
        a.merge(b)
        assert a.counters["admitted"] == 5.0
        assert a.depth_hwm == 7
        assert a.depth_last == 7
        assert a.fsync["count"] == 4

    def test_parity_view_strips_restart_and_wall_clock_fields(self):
        slo = self._tracker()
        view = slo_parity_view(slo.snapshot())
        assert "fsync" not in view
        assert "recoveries" not in view["counters"]
        assert "cold_starts" not in view["counters"]
        assert view["counters"]["admitted"] == 2.0
        # A cold start bumps recoveries/cold_starts and sees different
        # fsync wall-clock latencies — parity must still hold.
        other = SloTracker.restore(slo.snapshot())
        other.count("recoveries")
        other.count("cold_starts")
        other.observe_fsync(1.23)
        assert slo_parity_view(other.snapshot()) == view
        # ...but a real counter divergence must not.
        other.observe(3.0, "admitted")
        assert slo_parity_view(other.snapshot()) != view


def _fleet():
    slo = SloTracker("t0", horizon=10.0, slots=5)
    slo.observe(1.0, "admitted")
    slo.observe(2.0, "shed")
    slo.observe(2.0, "shed.queue_budget")
    slo.observe_fsync(0.001)
    doc = slo.snapshot()
    doc["live"] = {
        "completions": 4,
        "deadline_misses": 1,
        "miss_rate": 0.2,
        "attained_value": 12.5,
        "executed_work": 10.0,
        "value_per_capacity": 1.25,
        "depth": 2,
        "frontier": 8.0,
    }
    return {
        "t0": {
            "health": "degraded",
            "restarts": 1,
            "stats": {
                "tenant": "t0",
                "submitted": 6,
                "accepted": 5,
                "shed": 1,
                "recoveries": 1,
                "forced_crashes": 0,
                "frontier": 8.0,
            },
            "slo": doc,
        },
        "t1": {"health": "restarting", "restarts": 2, "stats": {}, "slo": {}},
    }


class TestPrometheus:
    def test_render_passes_strict_lint(self):
        text = render_prometheus(_fleet())
        assert lint_prometheus(text) == []

    def test_health_series_cover_every_state(self):
        text = render_prometheus(_fleet())
        for state in HEALTH_STATES:
            assert f'repro_tenant_health{{tenant="t0",state="{state}"}}' in text
        assert (
            'repro_tenant_health{tenant="t1",state="restarting"} 1' in text
        )
        assert 'repro_tenant_health{tenant="t1",state="ok"} 0' in text

    def test_samples_reflect_the_scrape(self):
        text = render_prometheus(_fleet())
        assert 'repro_submitted_total{tenant="t0"} 6.0' in text
        assert 'repro_deadline_misses_total{tenant="t0"} 1.0' in text
        assert (
            'repro_shed_reason_total{tenant="t0",reason="queue_budget"} 1.0'
            in text
        )
        assert 'repro_fsync_latency_seconds_count{tenant="t0"} 1.0' in text

    def test_lint_catches_real_format_errors(self):
        assert lint_prometheus("repro_x 1\n")  # no TYPE
        assert lint_prometheus("# TYPE repro_x rainbow\nrepro_x 1\n")
        assert lint_prometheus(
            "# TYPE repro_x counter\nrepro_x 1\n"
        )  # counter without _total
        assert lint_prometheus(
            "# TYPE repro_x_total counter\n"
            "repro_x_total{tenant=t0} 1\n"  # unquoted label value
        )
        assert lint_prometheus(
            "# TYPE repro_x gauge\nrepro_x abc\n"
        )  # non-numeric value
        assert lint_prometheus(
            "# TYPE repro_x gauge\nrepro_x 1\nrepro_x 2\n"
        )  # duplicate series
        # and the good shapes pass
        assert (
            lint_prometheus(
                "# HELP repro_x_total help.\n"
                "# TYPE repro_x_total counter\n"
                'repro_x_total{tenant="a b"} 1\n'
                'repro_x_total{tenant="c"} +Inf\n'
            )
            == []
        )

    def test_bare_comment_lines_allowed(self):
        assert lint_prometheus("#\n# free-form comment\n") == []


class TestTop:
    def test_screen_contains_tenants_and_totals(self):
        screen = render_top(_fleet(), title="repro top — demo")
        assert screen.startswith("repro top — demo")
        assert "TENANT" in screen and "MISS%" in screen
        lines = screen.splitlines()
        t0 = next(line for line in lines if line.startswith("t0"))
        assert "degraded" in t0
        assert "20.0" in t0  # miss_rate 0.2 -> 20.0%
        t1 = next(line for line in lines if line.startswith("t1"))
        assert "restarting" in t1
        assert lines[-1].startswith("fleet: 2 tenant(s)")
        assert "submitted=6" in lines[-1]
