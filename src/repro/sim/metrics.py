"""Simulation outcome metrics.

:class:`SimulationResult` is the value returned by every simulation run; it
bundles the accrued value (the paper's objective), per-job outcomes, the
trace, and derived statistics used by the experiment harness (normalized
value for Table I, the cumulative series for Figure 1, utilisation, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.sim.job import Job, JobStatus, total_value
from repro.sim.trace import ScheduleTrace

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Everything measured in one simulation run."""

    scheduler_name: str
    jobs: Sequence[Job]
    horizon: float
    trace: ScheduleTrace
    #: simulated-process crashes survived to produce this result (0 for a
    #: run without :class:`~repro.faults.EngineCrashPlan` recovery)
    recoveries: int = 0

    # ------------------------------------------------------------------
    # Primary objective
    # ------------------------------------------------------------------
    @property
    def value(self) -> float:
        """Total value of jobs completed by their deadlines.

        Normally read off the trace's cumulative value series; when that
        series is empty (a trace rebuilt without value points — e.g. a
        hand-assembled or partially restored trace) but jobs *did*
        complete, fall back to summing the completed jobs' values from the
        recorded outcomes instead of silently reporting 0.0."""
        if self.trace.value_points:
            return self.trace.value_points[-1][1]
        completed = set(self._ids_with(JobStatus.COMPLETED))
        if not completed:
            return 0.0
        return sum(job.value for job in self.jobs if job.jid in completed)

    @property
    def generated_value(self) -> float:
        """Total value of *all* released jobs (Table I's normalizer)."""
        return total_value(self.jobs)

    @property
    def normalized_value(self) -> float:
        """``value / generated_value`` — the paper's Table I metric.

        Returns 0 for an empty instance (no jobs means nothing to win)."""
        gen = self.generated_value
        return self.value / gen if gen > 0.0 else 0.0

    # ------------------------------------------------------------------
    # Outcome counts
    # ------------------------------------------------------------------
    def _ids_with(self, status: JobStatus) -> List[int]:
        return [jid for jid, st in self.trace.outcomes.items() if st is status]

    @property
    def completed_ids(self) -> List[int]:
        return sorted(self._ids_with(JobStatus.COMPLETED))

    @property
    def failed_ids(self) -> List[int]:
        return sorted(
            self._ids_with(JobStatus.FAILED) + self._ids_with(JobStatus.ABANDONED)
        )

    @property
    def n_completed(self) -> int:
        return len(self._ids_with(JobStatus.COMPLETED))

    @property
    def n_failed(self) -> int:
        return len(self.failed_ids)

    @property
    def completion_ratio(self) -> float:
        """Fraction of jobs completed (by count, not value)."""
        n = len(self.jobs)
        return self.n_completed / n if n else 0.0

    # ------------------------------------------------------------------
    # Resource usage
    # ------------------------------------------------------------------
    @property
    def busy_time(self) -> float:
        return self.trace.busy_time()

    @property
    def utilization(self) -> float:
        """Fraction of the horizon during which the processor was busy."""
        return self.busy_time / self.horizon if self.horizon > 0.0 else 0.0

    @property
    def executed_work(self) -> float:
        """Total workload pushed through the processor, including work
        spent on jobs that eventually failed (wasted work)."""
        return self.trace.total_work()

    @property
    def wasted_work(self) -> float:
        """Work spent on jobs that did not complete."""
        work = self.trace.work_by_job()
        completed = set(self.completed_ids)
        return sum(w for jid, w in work.items() if jid not in completed)

    # ------------------------------------------------------------------
    # Series
    # ------------------------------------------------------------------
    def value_series(self) -> list[tuple[float, float]]:
        """Cumulative value step function (Figure 1's y-axis)."""
        return self.trace.value_series(self.horizon)

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline numbers (for tables and logs)."""
        return {
            "value": self.value,
            "generated_value": self.generated_value,
            "normalized_value": self.normalized_value,
            "n_jobs": float(len(self.jobs)),
            "n_completed": float(self.n_completed),
            "n_failed": float(self.n_failed),
            "completion_ratio": self.completion_ratio,
            "utilization": self.utilization,
            "wasted_work": self.wasted_work,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SimulationResult({self.scheduler_name!r}, value={self.value:.4g}, "
            f"normalized={self.normalized_value:.4f}, "
            f"completed={self.n_completed}/{len(self.jobs)})"
        )
