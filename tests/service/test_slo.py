"""Per-tenant SLO telemetry at the shard layer: tracking, the scrape
view, durability through the store, and drain/cold-start parity."""

from __future__ import annotations

from repro.obs.telemetry import SloTracker, slo_parity_view
from repro.service import (
    Advance,
    CapacitySpec,
    InjectFault,
    Submit,
    TenantShard,
    TenantSpec,
)
from repro.sim.job import Job
from repro.store.tenant import TenantStore


def _spec(tenant="t0", **kw):
    base = dict(
        tenant=tenant,
        horizon=40.0,
        scheduler="edf",
        capacity=CapacitySpec("constant", {"rate": 1.0}),
        queue_budget=6,
        snapshot_every=4,
        flush_every=2,
        fsync=False,
    )
    base.update(kw)
    return TenantSpec(**base)


def _job(jid, release, workload=1.0, value=1.0):
    return Job(
        jid=jid,
        release=release,
        workload=workload,
        deadline=release + 5.0,
        value=value,
    )


def _drive(shard, n=10):
    from repro.errors import SimulatedCrash

    for i in range(n):
        shard.handle(Submit("t0", _job(i, release=1.0 + 0.2 * i), rid=f"r{i}"))
    shard.handle(InjectFault("t0", "kill", time=2.5, rid="f0"))
    try:
        shard.handle(InjectFault("t0", "crash", time=3.0, rid="c0"))
    except SimulatedCrash as crash:  # the supervisor's job, done inline
        shard.recover(crash)
    shard.handle(Advance("t0", 6.0))


class TestTrackingOff:
    def test_stats_omit_slo_and_view_still_lives(self, tmp_path):
        shard = TenantShard(
            _spec(), store=TenantStore(tmp_path / "t0", fsync=False)
        )
        _drive(shard)
        assert "slo" not in shard.stats()
        view = shard.slo_view()
        assert "counters" not in view
        live = view["live"]
        assert live["frontier"] > 0.0
        assert live["depth"] == shard.depth
        assert "window" not in live
        shard.close()


class TestTrackingOn:
    def test_decision_counters_and_gauges(self, tmp_path):
        shard = TenantShard(
            _spec(),
            store=TenantStore(tmp_path / "t0", fsync=False),
            telemetry=True,
        )
        _drive(shard)
        stats = shard.stats()
        doc = stats["slo"]
        counters = doc["counters"]
        # every submit was decided: admitted + shed partition the stream
        assert counters["admitted"] == stats["accepted"]
        assert counters["shed"] == stats["shed"] > 0
        assert counters["shed.queue_budget"] == counters["shed"]
        assert counters["admitted"] + counters["shed"] == 10.0
        assert counters["injected.kill"] == 1.0
        assert counters["crashes"] == 1.0
        assert counters["recoveries"] == 1.0  # the forced crash recovered
        assert doc["depth"]["hwm"] >= doc["depth"]["last"] >= 0
        assert doc["fsync"]["count"] > 0  # op-log appends were timed
        assert doc["ring"]["buckets"]  # observations landed in the window
        shard.close()

    def test_duplicate_deliveries_counted(self, tmp_path):
        shard = TenantShard(
            _spec(),
            store=TenantStore(tmp_path / "t0", fsync=False),
            telemetry=True,
        )
        shard.handle(Submit("t0", _job(1, release=1.0), rid="r1"))
        shard.handle(Advance("t0", 2.0))
        ack = shard.handle(Submit("t0", _job(1, release=1.0), rid="r1"))
        assert ack and ack.get("duplicate")
        assert shard.stats()["slo"]["counters"]["duplicates"] == 1.0
        shard.close()

    def test_slo_view_window_and_kernel_facts(self, tmp_path):
        shard = TenantShard(
            _spec(),
            store=TenantStore(tmp_path / "t0", fsync=False),
            telemetry=True,
        )
        _drive(shard)
        shard.handle(Advance("t0", 39.0))  # let outcomes accumulate
        view = shard.slo_view()
        live = view["live"]
        assert live["completions"] >= 1
        assert live["attained_value"] > 0.0
        assert live["executed_work"] > 0.0
        assert (
            live["value_per_capacity"]
            == live["attained_value"] / live["executed_work"]
        )
        decided = live["completions"] + live["deadline_misses"]
        assert live["miss_rate"] == (
            live["deadline_misses"] / decided if decided else 0.0
        )
        window = live["window"]
        assert window["width"] == view["ring"]["width"]
        total = sum(
            b.get("completions", 0.0) for _, b in window["buckets"]
        )
        assert total == live["completions"]
        shard.close()


class TestDurability:
    def test_slo_rides_the_snapshot_payload(self, tmp_path):
        shard = TenantShard(
            _spec(),
            store=TenantStore(tmp_path / "t0", fsync=False),
            telemetry=True,
        )
        _drive(shard)
        shard.persist_now()
        store = TenantStore(tmp_path / "t0", fsync=False)
        payload, _anchor = store.load_snapshot()
        store.close()
        assert payload["slo"]["counters"]["admitted"] == shard.stats()["accepted"]
        assert "r0" in payload["rid_jids"]
        shard.close()

    def test_kill9_cold_start_slo_parity(self, tmp_path):
        # Abandon a live shard without closing (in-process kill -9): the
        # cold-started twin must agree with the victim's final tracker
        # on the parity view — snapshot restore plus op-log refold, with
        # only recoveries/cold_starts/fsync legitimately differing.
        shard = TenantShard(
            _spec(),
            store=TenantStore(tmp_path / "t0", fsync=False),
            telemetry=True,
        )
        _drive(shard)
        before = shard.stats()["slo"]
        # shard deliberately NOT closed — its store state is the corpse

        revived = TenantShard(
            _spec(),
            store=TenantStore(tmp_path / "t0", fsync=False),
            resume=True,
            telemetry=True,
        )
        after = revived.stats()["slo"]
        assert slo_parity_view(after) == slo_parity_view(before)
        assert (
            after["counters"]["recoveries"]
            == before["counters"]["recoveries"] + 1
        )
        assert after["counters"]["cold_starts"] == 1.0
        revived.close()

    def test_parity_view_detects_a_genuinely_diverged_tracker(self):
        a = SloTracker("t0", horizon=10.0)
        b = SloTracker("t0", horizon=10.0)
        a.observe(1.0, "admitted")
        b.observe(1.0, "admitted")
        assert slo_parity_view(a.snapshot()) == slo_parity_view(b.snapshot())
        b.observe(2.0, "shed")
        assert slo_parity_view(a.snapshot()) != slo_parity_view(b.snapshot())

    def test_pre_telemetry_store_cold_starts_clean(self, tmp_path):
        # A store written with telemetry off (no "slo" payload key) must
        # resume into a telemetry-on shard.  History folded into the
        # snapshot is gone (only the op-log tail refolds), so the tracker
        # starts fresh at the resume point and counts from there.
        shard = TenantShard(
            _spec(), store=TenantStore(tmp_path / "t0", fsync=False)
        )
        _drive(shard)
        shard.persist_now()

        revived = TenantShard(
            _spec(),
            store=TenantStore(tmp_path / "t0", fsync=False),
            resume=True,
            telemetry=True,
        )
        doc = revived.stats()["slo"]
        assert doc["counters"]["cold_starts"] == 1.0
        assert "admitted" not in doc["counters"]  # pre-snapshot history
        revived.handle(Submit("t0", _job(50, release=8.0), rid="r50"))
        revived.handle(Advance("t0", 9.0))
        assert revived.stats()["slo"]["counters"]["admitted"] == 1.0
        revived.close()
