"""Per-tenant durable state: spec + op log + snapshots, one directory.

Layout under ``<store_dir>/<tenant>/``::

    spec.json        # the TenantSpec as checksummed JSON (written once)
    oplog/           # SegmentedLog of JSON op records (admits, pushes,
                     #   sheds, crash marks, dedup entries)
    snaps/           # SnapshotStore of pickled shard state images
    wal.jsonl        # the kernel's write-ahead EventJournal (plain file;
                     #   the kernel owns its format and torn-tail rules)
    shed.jsonl       # human-readable shed sidecar (rebuilt on resume)

The shard (:mod:`repro.service.shard`) writes *op records first, state
mutation second*: an admit/push/shed is fsynced into the op log before
the kernel sees it, so the disk is always ahead of (or equal to) the
process — ``SIGKILL`` at any instant loses at most acked-but-undecided
buffering, never a decision.  Snapshots anchor the op sequence: a state
image recorded at op sequence ``s`` supersedes every op with
``seq < s``, and :meth:`write_snapshot` compacts the op log accordingly.

This module is deliberately spec-schema agnostic: the tenant spec and
the op payloads are opaque JSON documents; (de)serialising them to
:class:`~repro.service.shard.TenantSpec` etc. lives with the service
layer, keeping ``repro.store`` free of service imports.
"""

from __future__ import annotations

import json
import pickle
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.store.directory import Directory, OsDirectory
from repro.store.log import SegmentedLog
from repro.store.snapshots import SnapshotStore

__all__ = ["TenantStore"]

SPEC_FILE = "spec.json"
WAL_FILE = "wal.jsonl"
SHED_FILE = "shed.jsonl"


class TenantStore:
    """One tenant's crash-safe state: spec, op log, snapshot anchors."""

    def __init__(
        self,
        directory: "Directory | str | Path",
        *,
        segment_bytes: int = 64 * 1024,
        snapshot_keep: int = 2,
        fsync: bool = True,
    ) -> None:
        if not hasattr(directory, "subdir"):
            directory = OsDirectory(directory)  # type: ignore[arg-type]
        self._dir: Directory = directory  # type: ignore[assignment]
        self._fsync = bool(fsync)
        self.oplog = SegmentedLog(
            self._dir.subdir("oplog"),
            segment_bytes=segment_bytes,
            fsync=fsync,
        )
        self.snapshots = SnapshotStore(
            self._dir.subdir("snaps"), keep=snapshot_keep, fsync=fsync
        )

    # -- paths (None for in-memory directories) -------------------------
    @property
    def path(self) -> Optional[Path]:
        return self._dir.path

    @property
    def wal_path(self) -> Optional[Path]:
        return None if self.path is None else self.path / WAL_FILE

    @property
    def shed_path(self) -> Optional[Path]:
        return None if self.path is None else self.path / SHED_FILE

    # -- tenant spec -----------------------------------------------------
    def ensure_spec(self, spec_doc: Dict[str, Any], normalize=None) -> None:
        """Write the spec once; on reopen, verify it has not changed —
        resuming a tenant under a different world would silently break
        replay parity.

        ``normalize`` (a doc -> doc callable) is applied to the *stored*
        doc before comparison, so a store written before a spec field
        existed still resumes when the running spec carries that field at
        its default — the caller round-trips the doc through its spec
        type, filling in defaults.  Genuinely different specs still
        refuse."""
        stored = self.load_spec()
        if stored is not None:
            if normalize is not None:
                stored = normalize(stored)
            if stored != spec_doc:
                raise StorageError(
                    "stored tenant spec differs from the running spec; "
                    "refusing to resume (delete the tenant directory to "
                    "start over)"
                )
            return
        body = json.dumps(spec_doc, sort_keys=True)
        doc = {"spec": spec_doc, "crc": zlib.crc32(body.encode()) & 0xFFFFFFFF}
        tmp = SPEC_FILE + ".tmp"
        h = self._dir.create(tmp)
        h.write((json.dumps(doc, sort_keys=True) + "\n").encode())
        if self._fsync:
            h.fsync()
        else:
            h.flush()
        h.close()
        self._dir.rename(tmp, SPEC_FILE)
        if self._fsync:
            self._dir.fsync_dir()

    def load_spec(self) -> Optional[Dict[str, Any]]:
        if not self._dir.exists(SPEC_FILE):
            return None
        try:
            doc = json.loads(self._dir.read_bytes(SPEC_FILE).decode())
            spec_doc = doc["spec"]
            body = json.dumps(spec_doc, sort_keys=True)
            if (zlib.crc32(body.encode()) & 0xFFFFFFFF) != doc["crc"]:
                raise ValueError("checksum mismatch")
        except (ValueError, KeyError, TypeError) as exc:
            raise StorageError(
                "tenant spec file is corrupt; refusing to guess the "
                f"tenant's world ({exc})"
            ) from exc
        return spec_doc

    # -- op log ----------------------------------------------------------
    def append_ops(
        self, docs: "List[Dict[str, Any]]", *, sync: bool = True
    ) -> int:
        """Append op records (JSON docs); returns the next sequence
        after the batch.  With ``sync`` the whole batch is fsynced
        before returning (one fsync, after the last frame)."""
        for i, doc in enumerate(docs):
            last = i == len(docs) - 1
            self.oplog.append(
                json.dumps(doc, sort_keys=True).encode(),
                sync=sync and last,
            )
        return self.oplog.next_seq

    @property
    def op_seq(self) -> int:
        return self.oplog.next_seq

    def ops(self) -> List[Tuple[int, Dict[str, Any]]]:
        """All live op records as ``(seq, doc)``."""
        return [
            (seq, json.loads(payload.decode()))
            for seq, payload in self.oplog.entries()
        ]

    # -- snapshots -------------------------------------------------------
    def write_snapshot(self, state: Any, *, op_seq: int) -> int:
        """Commit one state image anchored at ``op_seq`` and compact the
        op log behind it."""
        seq = self.snapshots.write(
            pickle.dumps(state), {"op_seq": int(op_seq)}
        )
        self.oplog.compact(int(op_seq))
        return seq

    def load_snapshot(self) -> Optional[Tuple[Any, int]]:
        """Newest complete state image as ``(state, op_seq)``."""
        loaded = self.snapshots.load()
        if loaded is None:
            return None
        _seq, meta, payload = loaded
        op_seq = int(meta.get("op_seq", 0))
        if self.oplog.next_seq < op_seq and not len(self.oplog):
            # The op log was quarantined wholesale (catastrophic rot):
            # re-anchor its sequence space at the snapshot so post-resume
            # appends stay ahead of the anchor.
            self.oplog.rebase(op_seq)
        return pickle.loads(payload), op_seq

    def has_state(self) -> bool:
        """True if anything recoverable exists (ops or a snapshot)."""
        return len(self.oplog) > 0 or self.snapshots.load() is not None

    def close(self) -> None:
        self.oplog.close()
