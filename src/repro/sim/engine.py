"""The discrete-event simulation engine.

The engine owns the ground truth of a run: job remaining workloads, the
processor assignment, the event heap and the trace.  Schedulers only decide
*which* job should occupy the processor after each interrupt; the engine
performs the mechanics:

* **exact completion prediction** — when a job starts (or resumes) at time
  ``t`` with remaining workload ``w``, its completion instant is
  ``capacity.advance(t, w)``, computed exactly on the piecewise-constant
  trajectory.  For prefix-indexed capacities (``supports_prefix_index``,
  see :mod:`repro.capacity.prefix`) this is an O(log n) searchsorted on the
  cumulative-work array, and the engine additionally anchors each running
  segment at ``W(seg_start)`` so progress queries cost one index lookup —
  with values bit-identical to the naive linear scan.  A preemption
  invalidates the in-flight completion event via a per-job version token
  (lazy deletion on the heap);
* **deadline policing** — firm deadlines fire as events; a completion at
  exactly the deadline wins the tie (succeeds);
* **alarm plumbing** — schedulers arm per-job alarms (zero-conservative-
  laxity interrupts) and global timers through the context; stale alarms are
  version-dropped;
* **trace recording** — every maximal run segment is logged with the work
  performed (the capacity integral over the segment), so the resulting
  schedule can be re-validated independently.

Determinism: for a fixed instance and scheduler the run is bit-for-bit
reproducible — ties in the event heap break by (kind priority, insertion
sequence) and nothing consults a clock or RNG.
"""

from __future__ import annotations

import logging
import math
from typing import Dict, Optional, Sequence, Tuple

from repro.capacity.base import CapacityFunction
from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.job import Job, JobStatus, validate_jobs
from repro.sim.metrics import SimulationResult
from repro.sim.scheduler import Scheduler, SchedulerContext
from repro.sim.trace import ScheduleTrace

__all__ = ["SimulationEngine", "simulate"]

logger = logging.getLogger(__name__)

_EPS = 1e-9


class _EngineContext(SchedulerContext):
    """The engine-backed implementation of the online information model."""

    def __init__(self, engine: "SimulationEngine") -> None:
        self._engine = engine

    def now(self) -> float:
        return self._engine._now

    def remaining(self, job: Job) -> float:
        return self._engine._remaining_of(job)

    def capacity_now(self) -> float:
        return self._engine._capacity.value(self._engine._now)

    @property
    def bounds(self) -> Tuple[float, float]:
        cap = self._engine._capacity
        return (cap.lower, cap.upper)

    def current_job(self) -> Optional[Job]:
        return self._engine._current

    def set_alarm(self, job: Job, time: float, tag: str = "claxity") -> None:
        self._engine._set_alarm(job, time, tag)

    def cancel_alarm(self, job: Job) -> None:
        self._engine._cancel_alarm(job)

    def set_timer(self, time: float, tag: str) -> None:
        self._engine._set_timer(time, tag)


class SimulationEngine:
    """Run one scheduler over one instance (jobs + capacity trajectory).

    Parameters
    ----------
    jobs:
        The instance's job set (ids must be unique).
    capacity:
        The realized capacity trajectory.  The engine may query its future
        (it is the physics of the world); the scheduler cannot.
    scheduler:
        The online policy under test.  ``bind`` is called on it, so a fresh
        run starts from clean per-run state.
    horizon:
        End of simulated time.  Defaults to just past the latest deadline so
        every job resolves.  Jobs unresolved at the horizon are recorded as
        failed.
    validate:
        When true, the produced trace is re-validated against the capacity
        (work conservation, no overlap, deadline legality) before returning;
        a violation raises :class:`SimulationError`.  Cheap enough to leave
        on in tests; off by default for Monte-Carlo throughput.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        capacity: CapacityFunction,
        scheduler: Scheduler,
        *,
        horizon: float | None = None,
        validate: bool = False,
    ) -> None:
        validate_jobs(jobs)
        self._jobs = list(jobs)
        self._capacity = capacity
        self._scheduler = scheduler
        if horizon is None:
            horizon = max((j.deadline for j in jobs), default=0.0) + 1.0
        if not math.isfinite(horizon) or horizon < 0.0:
            raise SimulationError(f"invalid horizon: {horizon!r}")
        self._horizon = float(horizon)
        self._validate = bool(validate)

        # Ground-truth run state.
        self._now = 0.0
        self._remaining: Dict[int, float] = {}
        self._status: Dict[int, JobStatus] = {}
        self._current: Optional[Job] = None
        self._seg_start = 0.0
        self._seg_remaining0 = 0.0  # remaining workload at seg_start
        # Prefix-sum index fast path (repro.capacity.prefix): anchor the
        # running segment at its cumulative work W(seg_start) so progress
        # queries are one O(log n) lookup, W(now) − anchor — bit-identical
        # to integrate(seg_start, now), which indexed models define as
        # exactly that difference.
        self._indexed = bool(getattr(capacity, "supports_prefix_index", False))
        self._seg_cum0 = 0.0  # W(seg_start) anchor (indexed models only)

        # Event bookkeeping.
        self._events = EventQueue()
        self._completion_version: Dict[int, int] = {}
        self._alarm_version: Dict[int, int] = {}
        self._trace = ScheduleTrace()

    # ------------------------------------------------------------------
    # State queries used by the context
    # ------------------------------------------------------------------
    def _seg_work(self, t: float) -> float:
        """Work performed by the running segment up to ``t`` — via the
        capacity's prefix-sum index when available, else the naive
        integral (identical values either way; see class docstring)."""
        if self._indexed:
            return self._capacity.cumulative(t) - self._seg_cum0
        return self._capacity.integrate(self._seg_start, t)

    def _remaining_of(self, job: Job) -> float:
        status = self._status.get(job.jid)
        if status is None or status is JobStatus.PENDING:
            raise SchedulingError(
                f"remaining() queried for unreleased job {job.jid}"
            )
        if job is self._current:
            done = self._seg_work(self._now)
            return max(0.0, self._seg_remaining0 - done)
        return self._remaining[job.jid]

    # ------------------------------------------------------------------
    # Alarm / timer plumbing
    # ------------------------------------------------------------------
    def _set_alarm(self, job: Job, time: float, tag: str) -> None:
        if job.jid not in self._status:
            raise SchedulingError(f"alarm for unknown job {job.jid}")
        when = max(time, self._now)
        version = self._alarm_version.get(job.jid, 0) + 1
        self._alarm_version[job.jid] = version
        self._events.push(Event(when, EventKind.ALARM, (job, tag), version))

    def _cancel_alarm(self, job: Job) -> None:
        # Bumping the version orphans any in-flight alarm event.
        self._alarm_version[job.jid] = self._alarm_version.get(job.jid, 0) + 1

    def _set_timer(self, time: float, tag: str) -> None:
        self._events.push(Event(max(time, self._now), EventKind.TIMER, tag))

    # ------------------------------------------------------------------
    # Processor mechanics
    # ------------------------------------------------------------------
    def _close_segment(self, t: float) -> None:
        """Stop the running job at ``t``, folding its progress into the
        ground truth and the trace.  Leaves the processor empty."""
        job = self._current
        if job is None:
            return
        work = self._seg_work(t)
        new_remaining = self._seg_remaining0 - work
        if new_remaining < -1e-6 * max(1.0, job.workload):
            raise SimulationError(
                f"job {job.jid} over-executed: remaining {new_remaining}"
            )
        self._remaining[job.jid] = max(0.0, new_remaining)
        self._trace.add_segment(self._seg_start, t, job.jid, work)
        self._status[job.jid] = JobStatus.READY
        # Orphan the in-flight completion event.
        self._completion_version[job.jid] = (
            self._completion_version.get(job.jid, 0) + 1
        )
        self._current = None

    def _start_job(self, job: Job, t: float) -> None:
        status = self._status.get(job.jid)
        if status is not JobStatus.READY:
            raise SchedulingError(
                f"scheduler tried to run job {job.jid} in state {status}"
            )
        self._current = job
        self._status[job.jid] = JobStatus.RUNNING
        self._seg_start = t
        self._seg_remaining0 = self._remaining[job.jid]
        if self._indexed:
            self._seg_cum0 = self._capacity.cumulative(t)
        finish = self._capacity.advance(t, self._seg_remaining0)
        version = self._completion_version.get(job.jid, 0) + 1
        self._completion_version[job.jid] = version
        if finish <= self._horizon:
            self._events.push(Event(finish, EventKind.COMPLETION, job, version))

    def _apply_decision(self, desired: Optional[Job], t: float) -> None:
        """Switch the processor to ``desired`` (no-op if unchanged)."""
        if desired is self._current:
            return
        self._close_segment(t)
        if desired is not None:
            self._start_job(desired, t)

    def _complete_current(self, job: Job, t: float) -> None:
        """Fold the running job's final segment and record its success."""
        work = self._seg_work(t)
        self._trace.add_segment(self._seg_start, t, job.jid, work)
        self._remaining[job.jid] = 0.0
        self._status[job.jid] = JobStatus.COMPLETED
        self._current = None
        self._completion_version[job.jid] = (
            self._completion_version.get(job.jid, 0) + 1
        )
        self._trace.record_outcome(job, JobStatus.COMPLETED, t)
        desired = self._scheduler.on_job_end(job, completed=True)
        self._apply_decision(desired, t)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        t = event.time
        kind = event.kind

        if kind is EventKind.RELEASE:
            job: Job = event.payload
            self._status[job.jid] = JobStatus.READY
            self._remaining[job.jid] = job.workload
            desired = self._scheduler.on_release(job)
            self._apply_decision(desired, t)
            return

        if kind is EventKind.COMPLETION:
            job = event.payload
            if self._completion_version.get(job.jid, 0) != event.version:
                return  # stale: the job was preempted since this was armed
            if job is not self._current:  # pragma: no cover - defensive
                return
            self._complete_current(job, t)
            return

        if kind is EventKind.DEADLINE:
            job = event.payload
            status = self._status.get(job.jid)
            if status in (
                JobStatus.COMPLETED,
                JobStatus.FAILED,
                JobStatus.ABANDONED,
            ):
                return
            if job is self._current:
                # Jobs with zero laxity finish *exactly* at their deadline;
                # the predicted completion instant can land one ulp past it.
                # A running job whose remaining workload is within float
                # tolerance has completed, not failed.
                done = self._seg_work(t)
                left = self._seg_remaining0 - done
                if left <= 1e-9 * max(1.0, job.workload):
                    self._complete_current(job, t)
                    return
                self._close_segment(t)
            self._status[job.jid] = JobStatus.FAILED
            self._trace.record_outcome(job, JobStatus.FAILED, t)
            desired = self._scheduler.on_job_end(job, completed=False)
            self._apply_decision(desired, t)
            return

        if kind is EventKind.ALARM:
            job, tag = event.payload
            if self._alarm_version.get(job.jid, 0) != event.version:
                return  # re-armed or cancelled since
            if self._status.get(job.jid) is not JobStatus.READY:
                return  # running/finished jobs do not take alarms
            desired = self._scheduler.on_alarm(job, tag)
            self._apply_decision(desired, t)
            return

        if kind is EventKind.TIMER:
            desired = self._scheduler.on_timer(event.payload)
            self._apply_decision(desired, t)
            return

        raise SimulationError(f"unhandled event kind: {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        ctx = _EngineContext(self)
        self._scheduler.bind(ctx)

        for job in self._jobs:
            self._status[job.jid] = JobStatus.PENDING
            if job.release <= self._horizon:
                self._events.push(Event(job.release, EventKind.RELEASE, job))
                self._events.push(Event(job.deadline, EventKind.DEADLINE, job))
        self._events.push(Event(self._horizon, EventKind.END))

        while len(self._events):
            event = self._events.pop()
            if event.time < self._now - _EPS:
                raise SimulationError(
                    f"time went backwards: {event.time} < {self._now}"
                )
            if event.kind is EventKind.END:
                self._now = event.time
                break
            if event.time > self._horizon:
                self._now = self._horizon
                break
            self._now = event.time
            self._dispatch(event)

        # Wind down: close the running segment and mark unresolved jobs.
        self._close_segment(self._now)
        for job in self._jobs:
            if self._status.get(job.jid) in (JobStatus.READY, JobStatus.RUNNING):
                self._status[job.jid] = JobStatus.FAILED
                self._trace.record_outcome(job, JobStatus.FAILED, self._now)

        if self._validate:
            self._trace.validate(self._jobs, self._capacity)

        return SimulationResult(
            scheduler_name=self._scheduler.name,
            jobs=self._jobs,
            horizon=self._horizon,
            trace=self._trace,
        )


def simulate(
    jobs: Sequence[Job],
    capacity: CapacityFunction,
    scheduler: Scheduler,
    *,
    horizon: float | None = None,
    validate: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SimulationEngine` and run it."""
    return SimulationEngine(
        jobs, capacity, scheduler, horizon=horizon, validate=validate
    ).run()
