"""Scenario tests for the Dover-family machinery (handlers B, C, D)."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import DoverScheduler, VDoverScheduler
from repro.core.dover_family import DoverFamilyScheduler
from repro.errors import SchedulingError
from repro.sim import Job, simulate


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestConstruction:
    def test_beta_must_exceed_one(self):
        with pytest.raises(SchedulingError):
            DoverFamilyScheduler(beta=1.0)
        with pytest.raises(SchedulingError):
            DoverFamilyScheduler(beta=0.5)

    def test_dover_rejects_bad_params(self):
        with pytest.raises(SchedulingError):
            DoverScheduler(k=0.5, c_hat=1.0)
        with pytest.raises(SchedulingError):
            DoverScheduler(k=7.0, c_hat=0.0)

    def test_vdover_rejects_bad_k(self):
        with pytest.raises(SchedulingError):
            VDoverScheduler(k=0.9)


class TestHandlerB:
    """Job-release handler."""

    def test_idle_release_runs_immediately(self):
        r = simulate([J(0, 1.0, 2.0, 9.0)], ConstantCapacity(1.0),
                     VDoverScheduler(k=7.0), validate=True)
        assert r.trace.segments[0].start == pytest.approx(1.0)
        assert r.completed_ids == [0]

    def test_edf_preemption_with_slack(self):
        """B.6–B.9: earlier deadline + enough cSlack -> preempt; the
        preempted job parks in Qedf and resumes via handler C."""
        jobs = [J(0, 0.0, 2.0, 20.0, v=1.0), J(1, 1.0, 3.0, 10.0, v=1.0)]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        segs = [(s.jid, s.start, s.end) for s in r.trace.segments]
        assert segs == [(0, 0.0, 1.0), (1, 1.0, 4.0), (0, 4.0, 5.0)]
        assert r.n_completed == 2

    def test_edf_preemption_refused_without_slack(self):
        """B.11: zero cSlack (running job has zero laxity) blocks the EDF
        preemption even for an earlier deadline."""
        jobs = [J(0, 0.0, 10.0, 10.0, v=5.0), J(1, 1.0, 2.0, 5.0, v=1.0)]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        # Job 0 runs uninterrupted to completion; job 1 loses the value
        # comparison at its zero-laxity instant and dies a supplement.
        assert r.trace.segments[0].jid == 0
        assert r.trace.segments[0].end == pytest.approx(10.0)
        assert r.completed_ids == [0]

    def test_later_deadline_goes_to_qother(self):
        jobs = [J(0, 0.0, 2.0, 5.0), J(1, 1.0, 2.0, 9.0)]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        segs = [(s.jid, s.start, s.end) for s in r.trace.segments]
        assert segs == [(0, 0.0, 2.0), (1, 2.0, 4.0)]


class TestHandlerD:
    """Zero-conservative-laxity handler."""

    def test_edf_path_absorbs_urgent_job_when_slack_allows(self):
        """A tight-deadline arrival with enough cSlack never reaches handler
        D at all: B's EDF rule admits it and both jobs finish."""
        jobs = [J(0, 0.0, 10.0, 30.0, v=1.0), J(1, 2.0, 5.0, 7.0, v=100.0)]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=100.0), validate=True)
        segs = [(s.jid, s.start, s.end) for s in r.trace.segments]
        assert segs == [(0, 0.0, 2.0), (1, 2.0, 7.0), (0, 7.0, 15.0)]
        assert r.n_completed == 2

    def test_urgent_high_value_job_wins(self):
        """D.1–D.5: cSlack is too small for the EDF rule, the arrival waits
        in Qother, and at its zero-laxity instant its value beats
        beta * protected value, so it seizes the processor."""
        jobs = [J(0, 0.0, 10.0, 10.5, v=1.0), J(1, 2.0, 5.0, 7.0, v=100.0)]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=100.0), validate=True)
        segs = [(s.jid, s.start, s.end) for s in r.trace.segments]
        assert segs[:2] == [(0, 0.0, 2.0), (1, 2.0, 7.0)]
        assert r.completed_ids == [1]
        assert r.value == pytest.approx(100.0)

    def test_urgent_low_value_job_demoted(self):
        """D.7: the urgent job loses the comparison and becomes supplement;
        with capacity pinned at the floor it can never recover."""
        jobs = [J(0, 0.0, 10.0, 11.0, v=100.0), J(1, 2.0, 5.0, 7.0, v=1.0)]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=100.0), validate=True)
        assert r.completed_ids == [0]
        assert r.trace.segments[0].end == pytest.approx(10.0)

    def test_triage_prefers_value_under_overload(self):
        """Overloaded pair: V-Dover sacrifices the cheap job for the dear
        one — the behaviour EDF lacks."""
        jobs = [J(0, 0.0, 6.0, 6.0, v=1.0), J(1, 0.0, 6.0, 6.5, v=10.0)]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=10.0), validate=True)
        assert r.completed_ids == [1]
        assert r.value == pytest.approx(10.0)


class TestSupplementMechanism:
    """The paper's delta (ii): supplement jobs ride capacity spikes."""

    SPIKE = [0.0, 2.0], [1.0, 5.0]  # rate 1 until t=2, then 5

    def test_supplement_completes_on_spike(self):
        cap = PiecewiseConstantCapacity(*self.SPIKE)
        jobs = [J(0, 0.0, 12.0, 13.0, v=10.0), J(1, 1.0, 4.0, 5.0, v=1.0)]
        vd = simulate(jobs, cap, VDoverScheduler(k=10.0), validate=True)
        # Job 1 is demoted at t=1 (claxity 0, value too small); job 0
        # finishes at t=4 thanks to the spike; job 1 then completes as a
        # supplement at 4.8 <= 5.
        assert vd.n_completed == 2
        assert vd.trace.completion_times[1] == pytest.approx(4.8)

    def test_dover_abandons_what_vdover_salvages(self):
        cap = PiecewiseConstantCapacity(*self.SPIKE)
        jobs = [J(0, 0.0, 12.0, 13.0, v=10.0), J(1, 1.0, 4.0, 5.0, v=1.0)]
        dv = simulate(jobs, cap, DoverScheduler(k=10.0, c_hat=1.0), validate=True)
        assert dv.completed_ids == [0]

    def test_no_supplement_ablation_matches_dover_here(self):
        cap = PiecewiseConstantCapacity(*self.SPIKE)
        jobs = [J(0, 0.0, 12.0, 13.0, v=10.0), J(1, 1.0, 4.0, 5.0, v=1.0)]
        ns = simulate(jobs, cap, VDoverScheduler(k=10.0, supplement=False), validate=True)
        assert ns.completed_ids == [0]

    def test_release_preempts_supplement_immediately(self):
        """B.13–B.15: regular arrivals always preempt supplement work."""
        cap = PiecewiseConstantCapacity(*self.SPIKE)
        jobs = [
            J(0, 0.0, 12.0, 13.0, v=10.0),
            J(1, 1.0, 4.0, 5.0, v=1.0),     # demoted, runs as supplement at 4
            J(2, 4.2, 1.0, 6.0, v=2.0),     # arrives mid-supplement
        ]
        r = simulate(jobs, cap, VDoverScheduler(k=10.0), validate=True)
        segs = [(s.jid, round(s.start, 3), round(s.end, 3)) for s in r.trace.segments]
        assert (2, 4.2, 4.4) in segs          # regular job preempted in
        assert r.trace.completion_times[1] == pytest.approx(5.0)  # at deadline
        assert r.n_completed == 3

    def test_supplement_queue_serves_latest_deadline_first(self):
        cap = PiecewiseConstantCapacity([0.0, 4.0], [1.0, 10.0])
        jobs = [
            J(0, 0.0, 6.0, 6.0, v=100.0),    # keeps the processor
            J(1, 1.0, 2.0, 3.0, v=1.0),      # supplement, deadline 3 (dies)
            J(2, 1.5, 40.0, 9.0, v=1.0),     # supplement, deadline 9
            J(3, 2.0, 4.5, 6.5, v=1.0),      # supplement, deadline 6.5
        ]
        r = simulate(jobs, cap, VDoverScheduler(k=100.0), validate=True)
        # Job 0 finishes at t=4.2 (the spike accelerates it); then the
        # supplement with the *latest* deadline (job 2) is scheduled first.
        assert r.trace.completion_times[0] == pytest.approx(4.2)
        supp_segments = [s.jid for s in r.trace.segments if s.start >= 4.19]
        assert supp_segments and supp_segments[0] == 2


class TestHandlerC:
    def test_qedf_restored_in_deadline_order(self):
        """Nested EDF preemptions unwind earliest-deadline-first."""
        jobs = [
            J(0, 0.0, 6.0, 40.0),
            J(1, 1.0, 6.0, 30.0),
            J(2, 2.0, 2.0, 10.0),
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        order = [s.jid for s in r.trace.segments]
        assert order == [0, 1, 2, 1, 0]
        assert r.n_completed == 3

    def test_qother_job_with_earlier_deadline_jumps_qedf(self):
        """C.5–C.7: at a completion, a Qother job with an earlier deadline
        than the Qedf head is scheduled if cSlack allows."""
        jobs = [
            J(0, 0.0, 4.0, 40.0),   # preempted into Qedf by job 1
            J(1, 1.0, 2.0, 20.0),   # runs; meanwhile job 2 lands in Qother
            J(2, 2.0, 1.0, 25.0),   # later deadline than job 1 -> Qother
        ]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0), validate=True)
        # After job 1 completes at t=3: Qedf head is job 0 (deadline 40),
        # Qother head job 2 (deadline 25) is earlier and fits -> job 2 next.
        order = [s.jid for s in r.trace.segments]
        assert order == [0, 1, 2, 0]
        assert r.n_completed == 3

    def test_idle_after_everything_done(self):
        jobs = [J(0, 0.0, 1.0, 9.0)]
        r = simulate(jobs, ConstantCapacity(1.0), VDoverScheduler(k=7.0),
                     horizon=20.0, validate=True)
        assert r.busy_time == pytest.approx(1.0)


class TestDoverReduction:
    def test_vdover_equals_dover_at_constant_capacity(self):
        """Section IV: under constant capacity (and equal beta) V-Dover and
        Dover(ĉ = c) produce identical schedules — the supplement queue can
        never help because claxity-negative jobs are truly dead."""
        jobs = [
            J(0, 0.0, 3.0, 5.0, v=2.0),
            J(1, 0.5, 2.0, 4.0, v=6.0),
            J(2, 1.0, 4.0, 9.0, v=1.0),
            J(3, 2.0, 1.0, 3.5, v=9.0),
            J(4, 4.0, 2.0, 11.0, v=3.0),
        ]
        cap = ConstantCapacity(1.0)
        vd = simulate(jobs, cap, VDoverScheduler(k=7.0, beta=2.0), validate=True)
        dv = simulate(jobs, cap, DoverScheduler(k=7.0, c_hat=1.0, beta=2.0), validate=True)
        assert vd.value == pytest.approx(dv.value)
        assert vd.completed_ids == dv.completed_ids

    def test_dover_overestimate_overcommits(self):
        """With ĉ far above the realized capacity Dover trusts laxities that
        do not exist and loses value V-Dover secures."""
        cap = PiecewiseConstantCapacity([0.0], [1.0], lower=1.0, upper=35.0)
        jobs = [J(0, 0.0, 6.0, 6.0, v=1.0), J(1, 0.0, 6.0, 6.5, v=10.0)]
        vd = simulate(jobs, cap, VDoverScheduler(k=10.0), validate=True)
        dv = simulate(jobs, cap, DoverScheduler(k=10.0, c_hat=35.0), validate=True)
        assert vd.value >= dv.value
        assert vd.value == pytest.approx(10.0)


class TestInstrumentation:
    def test_stats_counters(self):
        sched = VDoverScheduler(k=10.0)
        jobs = [J(0, 0.0, 10.0, 11.0, v=100.0), J(1, 2.0, 5.0, 7.0, v=1.0)]
        simulate(jobs, ConstantCapacity(1.0), sched, validate=True)
        stats = sched.stats
        assert stats["zero_laxity_interrupts"] == 1
        assert stats["supplement_labels"] == 1
        assert stats["zero_laxity_wins"] == 0

    def test_beta_resolution_from_bounds(self):
        sched = VDoverScheduler(k=7.0)
        cap = PiecewiseConstantCapacity([0.0], [1.0], lower=1.0, upper=35.0)
        simulate([J(0, 0.0, 1.0, 2.0)], cap, sched)
        from repro.analysis.theory import optimal_beta

        assert sched.beta == pytest.approx(optimal_beta(7.0, 35.0))

    def test_beta_falls_back_at_constant_capacity(self):
        sched = VDoverScheduler(k=4.0)
        simulate([J(0, 0.0, 1.0, 2.0)], ConstantCapacity(1.0), sched)
        assert sched.beta == pytest.approx(3.0)  # 1 + sqrt(4)
