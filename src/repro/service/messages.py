"""Typed ingress messages and their JSON-line wire form.

The service speaks newline-delimited JSON (one message per line), the
lowest-friction wire format for a stdin pipe or a raw TCP socket.  Four
message types drive a tenant shard:

``submit``
    One job offered for admission::

        {"type": "submit", "tenant": "t0",
         "job": {"jid": 7, "release": 1.5, "workload": 2.0,
                 "deadline": 4.5, "value": 6.0}}

``fault``
    An injected execution fault at a virtual time: ``op`` is ``kill``
    (with optional ``retain``), ``evict``, or ``crash`` (a forced kernel
    crash exercising snapshot recovery)::

        {"type": "fault", "tenant": "t0", "op": "kill",
         "time": 3.0, "retain": 0.5}

``advance``
    Drive the tenant's virtual clock: dispatch everything strictly
    before ``time``.  Submissions carry their own implicit advance (a
    job cannot be admitted behind the dispatch frontier), so explicit
    advances mark quiet periods and batch boundaries::

        {"type": "advance", "tenant": "t0", "time": 10.0}

``close``
    Finish the tenant: run the kernel to its horizon, wind down, and
    produce the tenant report.

``stat``
    Read-only counters for a tenant (accepted/shed/submitted counts, a
    CRC of the accepted jid set, the dispatch frontier) — what the
    kill -9 soak compares across a drain/cold-start boundary.

``metrics`` / ``health``
    The live telemetry plane (docs/OBSERVABILITY.md §live-service
    telemetry): ``metrics`` returns the tenant's full SLO scrape
    (stats + windowed SLO snapshot + health state), ``health`` just the
    health state.  ``"tenant": "*"`` scrapes the whole fleet.  Both are
    answered synchronously by the supervisor — they bypass the
    per-tenant queue, so a scrape works even while a tenant is mid
    restart ladder or the service is draining.

**Idempotency**: ``submit`` and ``fault`` may carry a client-chosen
``request_id`` string.  A shard remembers every decided request id in
its durable dedup journal; redelivering the same id (for example,
replaying a traffic log against a cold-started service) acks
``{"ok": true, "duplicate": true, ...}`` instead of double-admitting
or double-injecting.

Parsing is strict — an unknown type, a missing field or a non-numeric
value raises :class:`~repro.errors.MessageError` with a reason the
ingress can count and report without dying.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Union

from repro.errors import InvalidInstanceError, MessageError
from repro.sim.job import Job

__all__ = [
    "Submit",
    "InjectFault",
    "Advance",
    "Close",
    "Stat",
    "MetricsQuery",
    "HealthQuery",
    "Message",
    "parse_message",
    "encode_message",
    "FAULT_OPS",
]

#: Injectable fault operations (``crash`` forces a kernel crash).
FAULT_OPS = ("kill", "evict", "crash")


@dataclass(frozen=True)
class Submit:
    tenant: str
    job: Job
    rid: "str | None" = None  # client request id (wire: request_id)


@dataclass(frozen=True)
class InjectFault:
    tenant: str
    op: str  # one of FAULT_OPS
    time: float
    retain: float = 0.0  # kill only: surviving progress fraction
    rid: "str | None" = None  # client request id (wire: request_id)


@dataclass(frozen=True)
class Advance:
    tenant: str
    time: float


@dataclass(frozen=True)
class Close:
    tenant: str


@dataclass(frozen=True)
class Stat:
    tenant: str


@dataclass(frozen=True)
class MetricsQuery:
    """Wire ``metrics``: live SLO scrape; ``tenant="*"`` = whole fleet."""

    tenant: str


@dataclass(frozen=True)
class HealthQuery:
    """Wire ``health``: supervisor health state(s) only."""

    tenant: str


Message = Union[
    Submit, InjectFault, Advance, Close, Stat, MetricsQuery, HealthQuery
]


def _request_id(payload: Mapping[str, Any]) -> "str | None":
    rid = payload.get("request_id")
    if rid is None:
        return None
    if not isinstance(rid, str) or not rid:
        raise MessageError(
            f"request_id must be a non-empty string, got {rid!r}"
        )
    return rid


def _require(payload: Mapping[str, Any], field: str) -> Any:
    if field not in payload:
        raise MessageError(f"message is missing required field {field!r}")
    return payload[field]


def _number(payload: Mapping[str, Any], field: str) -> float:
    value = _require(payload, field)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise MessageError(f"field {field!r} must be a number, got {value!r}")
    return float(value)


def parse_message(raw: "str | bytes | Mapping[str, Any]") -> Message:
    """Decode one wire message (a JSON line or an already-parsed dict)."""
    if isinstance(raw, (str, bytes)):
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise MessageError(f"undecodable message line: {exc}") from exc
    else:
        payload = raw
    if not isinstance(payload, dict):
        raise MessageError(
            f"message must be a JSON object, got {type(payload).__name__}"
        )

    mtype = _require(payload, "type")
    tenant = _require(payload, "tenant")
    if not isinstance(tenant, str) or not tenant:
        raise MessageError(f"tenant must be a non-empty string, got {tenant!r}")

    if mtype == "submit":
        jobspec = _require(payload, "job")
        if not isinstance(jobspec, dict):
            raise MessageError(f"job must be an object, got {jobspec!r}")
        try:
            job = Job(
                jid=int(_number(jobspec, "jid")),
                release=_number(jobspec, "release"),
                workload=_number(jobspec, "workload"),
                deadline=_number(jobspec, "deadline"),
                value=_number(jobspec, "value"),
            )
        except InvalidInstanceError as exc:
            raise MessageError(f"invalid job: {exc}") from exc
        return Submit(tenant=tenant, job=job, rid=_request_id(payload))

    if mtype == "fault":
        op = _require(payload, "op")
        if op not in FAULT_OPS:
            raise MessageError(
                f"unknown fault op {op!r}; expected one of {FAULT_OPS}"
            )
        time = _number(payload, "time")
        retain = (
            float(payload.get("retain", 0.0)) if op == "kill" else 0.0
        )
        if not 0.0 <= retain <= 1.0:
            raise MessageError(f"retain must be in [0, 1], got {retain!r}")
        return InjectFault(
            tenant=tenant,
            op=op,
            time=time,
            retain=retain,
            rid=_request_id(payload),
        )

    if mtype == "advance":
        return Advance(tenant=tenant, time=_number(payload, "time"))

    if mtype == "close":
        return Close(tenant=tenant)

    if mtype == "stat":
        return Stat(tenant=tenant)

    if mtype == "metrics":
        return MetricsQuery(tenant=tenant)

    if mtype == "health":
        return HealthQuery(tenant=tenant)

    raise MessageError(f"unknown message type {mtype!r}")


def encode_message(message: Message) -> str:
    """The JSON-line wire form of a message (inverse of
    :func:`parse_message`; used by the soak harness and tests)."""
    out: Dict[str, Any]
    if isinstance(message, Submit):
        job = message.job
        out = {
            "type": "submit",
            "tenant": message.tenant,
            "job": {
                "jid": job.jid,
                "release": job.release,
                "workload": job.workload,
                "deadline": job.deadline,
                "value": job.value,
            },
        }
        if message.rid is not None:
            out["request_id"] = message.rid
    elif isinstance(message, InjectFault):
        out = {
            "type": "fault",
            "tenant": message.tenant,
            "op": message.op,
            "time": message.time,
        }
        if message.op == "kill":
            out["retain"] = message.retain
        if message.rid is not None:
            out["request_id"] = message.rid
    elif isinstance(message, Advance):
        out = {"type": "advance", "tenant": message.tenant, "time": message.time}
    elif isinstance(message, Close):
        out = {"type": "close", "tenant": message.tenant}
    elif isinstance(message, Stat):
        out = {"type": "stat", "tenant": message.tenant}
    elif isinstance(message, MetricsQuery):
        out = {"type": "metrics", "tenant": message.tenant}
    elif isinstance(message, HealthQuery):
        out = {"type": "health", "tenant": message.tenant}
    else:
        raise MessageError(f"cannot encode {message!r}")
    return json.dumps(out)
