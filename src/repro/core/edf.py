"""Earliest Deadline First — optimal for underloaded systems (Theorem 2).

EDF always runs the ready job with the earliest deadline, preempting on
arrival of an earlier-deadline job.  The paper's Theorem 2 shows this
achieves competitive ratio 1 for underloaded systems *even under
time-varying capacity* (the classical constant-capacity result of Liu &
Layland / Dertouzos carries over via the time-stretch transformation).

Under overload EDF can be arbitrarily bad (Locke's observation): it
happily burns the whole horizon on a long low-value job whose deadline is
earliest, starving everything else.  The adversarial generators in
:mod:`repro.workload.instances` exhibit this; Dover/V-Dover exist to fix it.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.job import Job
from repro.sim.queues import JobQueue, edf_key
from repro.sim.scheduler import Scheduler

__all__ = ["EDFScheduler"]


class EDFScheduler(Scheduler):
    """Preemptive earliest-deadline-first.

    Ties on deadline break by job id, so runs are deterministic.
    """

    name = "EDF"

    def reset(self) -> None:
        self._ready: JobQueue[Job] = JobQueue(edf_key, name="edf-ready")

    def on_release(self, job: Job) -> Optional[Job]:
        current = self.ctx.current_job()
        obs = self.ctx.obs
        if current is None:
            if obs is not None:
                obs.decision(self.name, "admit.idle", self.ctx.now(), job.jid)
            return job
        if edf_key(job) < edf_key(current):
            self._ready.insert(current)
            if obs is not None:
                obs.decision(
                    self.name,
                    "preempt.edf",
                    self.ctx.now(),
                    job.jid,
                    preempted=current.jid,
                )
            return job
        self._ready.insert(job)
        if obs is not None:
            obs.decision(self.name, "enqueue.ready", self.ctx.now(), job.jid)
        return current

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        current = self.ctx.current_job()
        if current is not None:
            # A waiting job expired; just drop it from the ready queue.
            self._ready.remove(job)
            return current
        self._ready.remove(job)  # no-op if `job` was the running one
        obs = self.ctx.obs
        if self._ready:
            chosen = self._ready.dequeue()
            if obs is not None:
                obs.decision(self.name, "resume.edf", self.ctx.now(), chosen.jid)
            return chosen
        if obs is not None:
            obs.decision(self.name, "idle", self.ctx.now())
        return None

    def on_eviction(self, job: Job) -> Optional[Job]:
        # Unlike a release, an eviction can leave the processor idle while
        # the ready queue is non-empty; re-elect over the full queue.
        self._ready.insert(job)
        chosen = self._ready.dequeue()
        obs = self.ctx.obs
        if obs is not None:
            obs.decision(
                self.name, "requeue.evicted", self.ctx.now(), chosen.jid
            )
        return chosen

    # -- snapshot / restore --------------------------------------------
    def _policy_state(self) -> dict:
        return {"ready": self._ready.live_jids()}

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        for jid in state["ready"]:
            self._ready.insert(jobs_by_id[jid])
