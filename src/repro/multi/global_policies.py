"""Global multiprocessor policies: top-m election by a priority key.

Global EDF is the canonical migration-permitted policy: at every instant
the m earliest-deadline ready jobs occupy the m processors.  The election
skeleton (:class:`GlobalTopM`) is key-generic, so a value-density variant
ships alongside.  Assignment churn is minimised: a re-elected job stays on
its processor; newly elected jobs fill the freed processors, the most
urgent ones going to the currently fastest processors (a heterogeneity-
aware tie-break that degenerates to don't-care on identical machines).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.job import Job
from repro.sim.queues import JobQueue, edf_key
from repro.multi.scheduler import Assignment, MultiScheduler

__all__ = ["GlobalTopM", "GlobalEDFScheduler", "GlobalDensityScheduler"]


class GlobalTopM(MultiScheduler):
    """Run the m best ready jobs (by a static key), migration allowed."""

    name = "global-top-m"

    def __init__(self, key: Callable[[Job], tuple] | None = None) -> None:
        super().__init__()
        self._key = key or edf_key

    def reset(self) -> None:
        self._ready: JobQueue[Job] = JobQueue(self._key, name=f"{self.name}-pool")

    # ------------------------------------------------------------------
    def _elect(self) -> Assignment:
        """Choose the top-m of (ready pool + running jobs) and map them to
        processors with minimal churn."""
        running = list(self.ctx.running())
        m = len(running)
        # Pool the universe: running jobs re-enter the election.
        for job in running:
            if job is not None and job not in self._ready:
                self._ready.insert(job)
        chosen: list[Job] = []
        for _ in range(min(m, len(self._ready))):
            chosen.append(self._ready.dequeue())
        # Losers that were running go back to the pool via... they are
        # still in the pool (we only removed winners).  Winners that stay
        # waiting? No: winners get processors now.

        chosen_ids = {job.jid for job in chosen}
        desired: list[Optional[Job]] = [None] * m
        placed: set[int] = set()
        # Keep re-elected jobs where they are.
        for proc, job in enumerate(running):
            if job is not None and job.jid in chosen_ids:
                desired[proc] = job
                placed.add(job.jid)
        # Fill the remaining processors: most urgent unplaced job onto the
        # currently fastest free processor.
        free_procs = [p for p in range(m) if desired[p] is None]
        free_procs.sort(key=lambda p: -self.ctx.capacity_now(p))
        unplaced = [job for job in chosen if job.jid not in placed]
        for proc, job in zip(free_procs, unplaced):
            desired[proc] = job
        obs = self.ctx.obs
        if obs is not None:
            now = self.ctx.now()
            for proc, job in zip(free_procs, unplaced):
                displaced = running[proc]
                if displaced is not None:
                    obs.decision(
                        self.name,
                        "elect.displace",
                        now,
                        job.jid,
                        proc=proc,
                        preempted=displaced.jid,
                    )
                else:
                    obs.decision(self.name, "elect.place", now, job.jid, proc=proc)
        return desired

    # ------------------------------------------------------------------
    def on_release(self, job: Job) -> Assignment:
        self._ready.insert(job)
        return self._elect()

    def on_job_end(self, job: Job, completed: bool) -> Assignment:
        self._ready.remove(job)
        return self._elect()

    # ------------------------------------------------------------------
    # Snapshot protocol (crash recovery)
    # ------------------------------------------------------------------
    def _policy_state(self) -> dict:
        # Sorted-jid serialisation: the queue's ordering keys tie-break on
        # jid, so insertion order is irrelevant on restore.
        return {"ready": self._ready.live_jids()}

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        for jid in state["ready"]:
            self._ready.insert(jobs_by_id[jid])


class GlobalEDFScheduler(GlobalTopM):
    """Global earliest-deadline-first with free migration."""

    name = "Global-EDF"

    def __init__(self) -> None:
        super().__init__(edf_key)


class GlobalDensityScheduler(GlobalTopM):
    """Global highest-value-density-first with free migration."""

    name = "Global-Density"

    def __init__(self) -> None:
        super().__init__(lambda job: (-job.density, job.jid))
