"""Discrete-event simulation substrate.

Built from scratch (no simpy dependency): the paper's interrupt semantics —
zero-conservative-laxity alarms, exact completion prediction under
piecewise-constant capacity, firm-deadline policing — need a custom kernel.
"""

from repro.sim.engine import SimulationEngine, simulate
from repro.sim.gantt import render_gantt
from repro.sim.events import (
    CalendarEventQueue,
    Event,
    EventKind,
    EventQueue,
    make_event_queue,
)
from repro.sim.invariants import (
    InvariantMonitor,
    InvariantViolation,
    InvariantWatchdog,
    default_monitors,
)
from repro.sim.journal import (
    EngineSnapshot,
    EventJournal,
    JournalRecord,
    results_bit_identical,
)
from repro.sim.job import (
    CODE_STATUS,
    STATUS_CODE,
    TERMINAL_CODES,
    Job,
    JobStatus,
    importance_ratio,
    make_jobs,
    total_value,
    validate_jobs,
)
from repro.sim.jobtable import JobTable
from repro.sim.metrics import SimulationResult
from repro.sim.queues import EdfEntry, JobQueue, edf_key, latest_deadline_key
from repro.sim.scheduler import Scheduler, SchedulerContext
from repro.sim.trace import RunSegment, ScheduleTrace

__all__ = [
    "SimulationEngine",
    "simulate",
    "render_gantt",
    "Event",
    "EventKind",
    "EventQueue",
    "CalendarEventQueue",
    "make_event_queue",
    "Job",
    "JobStatus",
    "JobTable",
    "STATUS_CODE",
    "CODE_STATUS",
    "TERMINAL_CODES",
    "importance_ratio",
    "make_jobs",
    "total_value",
    "validate_jobs",
    "SimulationResult",
    "EdfEntry",
    "JobQueue",
    "edf_key",
    "latest_deadline_key",
    "Scheduler",
    "SchedulerContext",
    "RunSegment",
    "ScheduleTrace",
    "InvariantMonitor",
    "InvariantViolation",
    "InvariantWatchdog",
    "default_monitors",
    "EngineSnapshot",
    "EventJournal",
    "JournalRecord",
    "results_bit_identical",
]
