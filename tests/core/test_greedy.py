"""Unit tests for the greedy baselines."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import FCFSScheduler, GreedyDensityScheduler, GreedyValueScheduler
from repro.sim import Job, simulate


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestGreedyDensity:
    def test_prefers_higher_density(self):
        jobs = [J(0, 0.0, 2.0, 4.0, v=2.0), J(1, 0.0, 2.0, 4.0, v=6.0)]
        r = simulate(jobs, ConstantCapacity(1.0), GreedyDensityScheduler(), validate=True)
        assert r.trace.segments[0].jid == 1
        assert 1 in r.completed_ids

    def test_preempts_for_higher_density(self):
        jobs = [J(0, 0.0, 4.0, 10.0, v=4.0), J(1, 1.0, 1.0, 3.0, v=5.0)]
        r = simulate(jobs, ConstantCapacity(1.0), GreedyDensityScheduler(), validate=True)
        assert r.n_completed == 2

    def test_skips_hopeless_jobs(self):
        # Job 1 can never finish (even at the upper bound) once job 0 is
        # done, so the scheduler must not waste time on it.
        cap = PiecewiseConstantCapacity([0.0], [1.0], lower=1.0, upper=2.0)
        jobs = [
            J(0, 0.0, 2.0, 4.0, v=10.0),
            J(1, 0.0, 50.0, 4.0, v=5.0),
            J(2, 0.0, 2.0, 4.5, v=1.0),
        ]
        r = simulate(jobs, cap, GreedyDensityScheduler(), validate=True)
        assert 0 in r.completed_ids
        assert 2 in r.completed_ids  # picked up because job 1 was skipped

    def test_deadline_blindness_pathology(self):
        """High density but impossible deadline wastes the processor —
        the designed weakness of value-greedy policies."""
        jobs = [
            J(0, 0.0, 10.0, 10.0, v=100.0),  # density 10, needs everything
            J(1, 0.0, 10.0, 10.5, v=50.0),   # density 5, loses the processor
        ]
        r = simulate(jobs, ConstantCapacity(1.0), GreedyDensityScheduler(), validate=True)
        assert r.value == pytest.approx(100.0)  # it does finish the dense one
        assert 1 in r.failed_ids


class TestGreedyValue:
    def test_prefers_higher_value(self):
        jobs = [J(0, 0.0, 1.0, 2.0, v=2.0), J(1, 0.0, 4.0, 5.0, v=6.0)]
        r = simulate(jobs, ConstantCapacity(1.0), GreedyValueScheduler(), validate=True)
        assert r.trace.segments[0].jid == 1


class TestFCFS:
    def test_arrival_order(self):
        jobs = [J(0, 1.0, 1.0, 9.0), J(1, 0.0, 1.0, 9.0)]
        r = simulate(jobs, ConstantCapacity(1.0), FCFSScheduler(), validate=True)
        assert r.trace.segments[0].jid == 1

    def test_never_preempts(self):
        jobs = [J(0, 0.0, 5.0, 9.0), J(1, 1.0, 1.0, 3.0, v=100.0)]
        r = simulate(jobs, ConstantCapacity(1.0), FCFSScheduler(), validate=True)
        assert r.trace.segments[0].jid == 0
        assert r.trace.segments[0].end == pytest.approx(5.0)
        assert 1 in r.failed_ids  # died waiting behind the head-of-line job

    def test_drains_queue(self):
        jobs = [J(i, 0.0, 1.0, 10.0) for i in range(5)]
        r = simulate(jobs, ConstantCapacity(1.0), FCFSScheduler(), validate=True)
        assert r.n_completed == 5
