"""SegmentedLog: framing, rotation, torn tails, quarantine, compaction."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.store.directory import MemoryDirectory, OsDirectory
from repro.store.log import SegmentedLog


def _records(log: SegmentedLog) -> list:
    return [payload for _seq, payload in log.entries()]


def _fill(log: SegmentedLog, n: int, size: int = 8) -> list:
    payloads = [bytes([65 + (i % 26)]) * size for i in range(n)]
    for p in payloads:
        log.append(p)
    return payloads


class TestAppendRecover:
    def test_roundtrip_and_sequences(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d)
        assert log.append(b"one") == 0
        assert log.append(b"two") == 1
        log.close()
        reopened = SegmentedLog(d)
        assert reopened.entries() == [(0, b"one"), (1, b"two")]
        assert reopened.next_seq == 2
        assert reopened.append(b"three") == 2

    def test_rotation_bounds_segments(self, tmp_path):
        d = OsDirectory(tmp_path)
        # header 12 + frame 8+8=16 per record: 3 records fit in 64 bytes.
        log = SegmentedLog(d, segment_bytes=64)
        payloads = _fill(log, 10)
        segs = [n for n in d.listdir() if n.endswith(".seg")]
        assert len(segs) > 1
        # Segment names carry the first sequence they hold.
        assert segs[0] == "log-000000000000.seg"
        log.close()
        reopened = SegmentedLog(d, segment_bytes=64)
        assert _records(reopened) == payloads

    def test_oversized_record_gets_own_segment(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d, segment_bytes=64)
        big = b"z" * 200  # larger than a whole segment
        log.append(b"small")
        log.append(big)
        log.close()
        assert _records(SegmentedLog(d, segment_bytes=64)) == [b"small", big]

    def test_too_small_segment_bytes_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="segment_bytes"):
            SegmentedLog(OsDirectory(tmp_path), segment_bytes=4)

    def test_append_after_close_rejected(self, tmp_path):
        log = SegmentedLog(OsDirectory(tmp_path))
        log.close()
        with pytest.raises(StorageError, match="closed"):
            log.append(b"x")

    def test_leftover_tmp_removed_on_open(self, tmp_path):
        d = OsDirectory(tmp_path)
        SegmentedLog(d).close()
        (tmp_path / "log-000000000042.seg.tmp").write_bytes(b"dead")
        log = SegmentedLog(d)
        assert not (tmp_path / "log-000000000042.seg.tmp").exists()
        assert log.next_seq == 0


class TestTornTail:
    def test_torn_final_frame_truncates(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d)
        log.append(b"keep-me")
        log.append(b"torn")
        log.close()
        name = "log-000000000000.seg"
        data = (tmp_path / name).read_bytes()
        (tmp_path / name).write_bytes(data[:-2])  # tear the last frame
        reopened = SegmentedLog(d)
        assert _records(reopened) == [b"keep-me"]
        assert reopened.truncated_bytes > 0
        assert reopened.quarantined == []
        # Appends continue from the truncation point.
        assert reopened.append(b"next") == 1

    def test_torn_frame_header_truncates(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d)
        log.append(b"keep")
        log.close()
        name = "log-000000000000.seg"
        with (tmp_path / name).open("ab") as fh:
            fh.write(b"\x05\x00")  # 2 bytes of an 8-byte frame header
        assert _records(SegmentedLog(d)) == [b"keep"]

    def test_tear_in_sealed_segment_quarantines(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d, segment_bytes=64)
        _fill(log, 6)  # two sealed-or-open segments
        log.close()
        segs = sorted(
            p.name for p in tmp_path.iterdir() if p.name.endswith(".seg")
        )
        assert len(segs) >= 2
        path = tmp_path / segs[0]
        path.write_bytes(path.read_bytes()[:-2])  # tear a *sealed* seg
        reopened = SegmentedLog(d, segment_bytes=64)
        # A tear inside a sealed segment is corruption, not a crash
        # signature: that segment and everything after it is set aside.
        assert reopened.quarantined == segs
        assert len(reopened) == 0
        for name in segs:
            assert (tmp_path / (name + ".quarantine")).exists()


class TestCorruptQuarantine:
    def _flip(self, path, offset: int) -> None:
        data = bytearray(path.read_bytes())
        data[offset] ^= 0x01
        path.write_bytes(bytes(data))

    def test_bit_rot_mid_segment_quarantines_suffix(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d)
        log.append(b"alpha")
        log.append(b"beta")
        log.append(b"gamma")
        log.close()
        name = "log-000000000000.seg"
        # Flip a payload byte of "beta": header 12 + frame1 (8+5) = 25,
        # frame2 payload starts at 25+8 = 33.
        self._flip(tmp_path / name, 33)
        reopened = SegmentedLog(d)
        assert _records(reopened) == [b"alpha"]
        assert name in reopened.quarantined
        assert (tmp_path / (name + ".quarantine")).exists()
        # The good prefix was rewritten under the original name.
        assert (tmp_path / name).exists()
        # Recovery continues at the right sequence.
        assert reopened.next_seq == 1

    def test_bit_rot_quarantines_later_segments_too(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d, segment_bytes=64)
        _fill(log, 8)
        log.close()
        segs = sorted(
            p for p in tmp_path.iterdir() if p.name.endswith(".seg")
        )
        assert len(segs) >= 3
        self._flip(segs[0], 22)  # rot inside the first segment's payloads
        reopened = SegmentedLog(d, segment_bytes=64)
        # Everything after the rotten record has suspect lineage.
        assert len(reopened.quarantined) >= len(segs) - 1
        for p in segs[1:]:
            assert (tmp_path / (p.name + ".quarantine")).exists()

    def test_bad_magic_quarantines(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d)
        log.append(b"x")
        log.close()
        name = "log-000000000000.seg"
        data = bytearray((tmp_path / name).read_bytes())
        data[0] ^= 0xFF
        (tmp_path / name).write_bytes(bytes(data))
        reopened = SegmentedLog(d)
        assert _records(reopened) == []
        assert name in reopened.quarantined

    def test_sequence_gap_quarantines_suffix(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d, segment_bytes=64)
        _fill(log, 8)
        log.close()
        segs = sorted(
            p.name for p in tmp_path.iterdir() if p.name.endswith(".seg")
        )
        assert len(segs) >= 3
        # Remove a middle segment: the chain breaks there.
        (tmp_path / segs[1]).unlink()
        reopened = SegmentedLog(d, segment_bytes=64)
        assert reopened.quarantined == segs[2:]
        assert len(reopened) == 3  # only the first segment's records


class TestCompaction:
    def test_compact_drops_whole_segments_only(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d, segment_bytes=64)
        payloads = _fill(log, 9)  # 3 per segment
        removed = log.compact(4)  # seq 4 lives in the second segment
        assert removed == 1
        assert log.base_seq == 3
        assert _records(log) == payloads[3:]
        assert log.next_seq == 9

    def test_compact_never_drops_last_segment(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d, segment_bytes=64)
        _fill(log, 9)
        log.compact(10_000)
        assert len(log._segments) == 1  # noqa: SLF001 - structural pin
        assert log.next_seq == 9

    def test_compaction_survives_reopen(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d, segment_bytes=64)
        payloads = _fill(log, 9)
        log.compact(6)
        log.close()
        reopened = SegmentedLog(d, segment_bytes=64)
        assert reopened.base_seq == 6
        assert _records(reopened) == payloads[6:]

    def test_rebase_restarts_empty_log(self, tmp_path):
        d = OsDirectory(tmp_path)
        log = SegmentedLog(d)
        log.rebase(100)
        assert log.next_seq == 100
        assert log.append(b"x") == 100
        log.close()
        assert SegmentedLog(d).entries() == [(100, b"x")]

    def test_rebase_nonempty_rejected(self, tmp_path):
        log = SegmentedLog(OsDirectory(tmp_path))
        log.append(b"x")
        with pytest.raises(StorageError, match="empty"):
            log.rebase(5)


class TestPowerLoss:
    def test_synced_appends_survive_power_loss(self):
        mem = MemoryDirectory()
        log = SegmentedLog(mem, segment_bytes=64)
        payloads = []
        for i in range(7):
            p = f"rec-{i}".encode()
            log.append(p, sync=True)
            payloads.append(p)
        mem.crash()
        assert _records(SegmentedLog(mem, segment_bytes=64)) == payloads

    def test_unsynced_appends_may_vanish(self):
        mem = MemoryDirectory()
        log = SegmentedLog(mem)
        log.append(b"durable", sync=True)
        log.append(b"volatile", sync=False)
        mem.crash()
        assert _records(SegmentedLog(mem)) == [b"durable"]
