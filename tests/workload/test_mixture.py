"""Unit tests for workload mixtures."""

import pytest

from repro.errors import InvalidInstanceError
from repro.workload import PeriodicTask, PeriodicWorkload, PoissonWorkload
from repro.workload.mixture import MixtureWorkload


@pytest.fixture
def mixture():
    return MixtureWorkload(
        [
            PoissonWorkload(lam=2.0, horizon=30.0, deadline_slack=2.0),
            PeriodicWorkload([PeriodicTask(5.0, 1.0, 3.0)], horizon=30.0),
        ]
    )


class TestMixture:
    def test_empty_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MixtureWorkload([])

    def test_contains_both_components(self, mixture):
        jobs = mixture.generate(1)
        # The periodic component alone contributes 6 jobs of value 3.0.
        assert sum(1 for j in jobs if j.value == 3.0) == 6
        assert len(jobs) > 6  # plus the Poisson stream

    def test_sorted_with_sequential_ids(self, mixture):
        jobs = mixture.generate(2)
        assert [j.jid for j in jobs] == list(range(len(jobs)))
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)

    def test_deterministic(self, mixture):
        assert mixture.generate(3) == mixture.generate(3)

    def test_component_attribution(self, mixture):
        jobs = mixture.generate(4)
        periodic_ids = {j.jid for j in jobs if j.value == 3.0}
        for jid in list(periodic_ids)[:3]:
            assert mixture.component_of(4, jid) == 1
        non_periodic = next(j.jid for j in jobs if j.value != 3.0)
        assert mixture.component_of(4, non_periodic) == 0

    def test_component_of_range_checked(self, mixture):
        with pytest.raises(InvalidInstanceError):
            mixture.component_of(4, 10_000)

    def test_schedulable_end_to_end(self, mixture):
        from repro.capacity import ConstantCapacity
        from repro.core import VDoverScheduler
        from repro.sim import simulate

        jobs = mixture.generate(5)
        result = simulate(jobs, ConstantCapacity(2.0), VDoverScheduler(k=9.0), validate=True)
        assert result.n_completed > 0
