"""FaultyDirectory: all four injectable storage fault kinds."""

from __future__ import annotations

import pytest

from repro.errors import StorageError, StorageFault
from repro.store.directory import MemoryDirectory
from repro.store.faults import (
    STORAGE_FAULT_KINDS,
    FaultyDirectory,
    StorageFaultSpec,
)
from repro.store.log import SegmentedLog


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(StorageError, match="unknown storage fault"):
            StorageFaultSpec(kind="gamma_ray")

    def test_negative_offset_rejected(self):
        with pytest.raises(StorageError, match=">= 0"):
            StorageFaultSpec(kind="torn_write", at=-1)

    def test_labels(self):
        assert StorageFaultSpec("torn_write", at=12).label == "torn_write@12"
        assert StorageFaultSpec("fsync_lie").label == "fsync-lie"

    def test_closed_kind_set(self):
        assert set(STORAGE_FAULT_KINDS) == {
            "torn_write",
            "bit_flip",
            "enospc",
            "fsync_lie",
        }


class TestTornWrite:
    def test_prefix_persists_then_dead(self):
        mem = MemoryDirectory()
        faulty = StorageFaultSpec("torn_write", at=4).apply(mem)
        h = faulty.create("f")
        with pytest.raises(StorageFault):
            h.write(b"0123456789")
        assert mem.read_bytes("f") == b"0123"  # the torn prefix
        # The process is dead: every later write raises too.
        with pytest.raises(StorageFault):
            h.write(b"more")
        assert faulty.fired

    def test_writes_below_offset_untouched(self):
        mem = MemoryDirectory()
        faulty = StorageFaultSpec("torn_write", at=100).apply(mem)
        h = faulty.create("f")
        h.write(b"safe")
        assert mem.read_bytes("f") == b"safe"
        assert not faulty.fired
        assert faulty.bytes_written == 4


class TestBitFlip:
    def test_single_bit_inverted_write_succeeds(self):
        mem = MemoryDirectory()
        faulty = StorageFaultSpec(
            "bit_flip", at=2, options={"bit": 3}
        ).apply(mem)
        h = faulty.create("f")
        h.write(b"\x00\x00\x00\x00")
        assert mem.read_bytes("f") == b"\x00\x00\x08\x00"

    def test_fires_once(self):
        mem = MemoryDirectory()
        faulty = StorageFaultSpec("bit_flip", at=0).apply(mem)
        h = faulty.create("f")
        h.write(b"\x00")
        h.write(b"\x00")  # same relative position, later offset: clean
        assert mem.read_bytes("f") == b"\x01\x00"

    def test_only_crc_catches_it(self):
        # The log write *succeeds*; the rot only surfaces on reopen.
        mem = MemoryDirectory()
        faulty = StorageFaultSpec("bit_flip", at=30).apply(mem)
        log = SegmentedLog(faulty, fsync=True)
        log.append(b"alpha")
        log.append(b"beta")
        log.close()
        reopened = SegmentedLog(mem)
        assert reopened.quarantined
        assert len(reopened) < 2


class TestEnospc:
    def test_disk_full_raises_oserror(self):
        import errno

        mem = MemoryDirectory()
        faulty = StorageFaultSpec("enospc", at=4).apply(mem)
        h = faulty.create("f")
        with pytest.raises(OSError) as excinfo:
            h.write(b"0123456789")
        assert excinfo.value.errno == errno.ENOSPC
        assert mem.read_bytes("f") == b"0123"
        with pytest.raises(OSError):
            h.write(b"more")


class TestFsyncLie:
    def test_fsync_persists_nothing(self):
        mem = MemoryDirectory()
        faulty = StorageFaultSpec("fsync_lie").apply(mem)
        h = faulty.create("f")
        faulty.fsync_dir()
        h.write(b"believed durable")
        h.fsync()  # lies
        mem.crash()
        # The entry itself was never really dir-fsynced either.
        assert not mem.exists("f")

    def test_log_believes_sync_then_loses_tail(self):
        mem = MemoryDirectory()
        faulty = StorageFaultSpec("fsync_lie").apply(mem)
        log = SegmentedLog(faulty, fsync=True)
        log.append(b"gone", sync=True)  # append claims durability
        mem.crash()
        reopened = SegmentedLog(mem)
        assert len(reopened) == 0


class TestComposition:
    def test_subdir_shares_global_cursor(self):
        mem = MemoryDirectory()
        faulty = StorageFaultSpec("torn_write", at=6).apply(mem)
        h1 = faulty.create("a")
        h1.write(b"1234")  # cursor 4
        sub = faulty.subdir("inner")
        h2 = sub.create("b")
        with pytest.raises(StorageFault):
            h2.write(b"5678")  # crosses global offset 6
        assert mem.subdir("inner").read_bytes("b") == b"56"
        assert faulty.bytes_written == 6

    def test_specs_stack(self):
        mem = MemoryDirectory()
        a = StorageFaultSpec("fsync_lie").apply(mem)
        b = StorageFaultSpec("bit_flip", at=0).apply(a)
        h = b.create("f")
        h.write(b"\x00")
        h.fsync()  # inner wrapper swallows it
        assert mem.read_bytes("f") == b"\x01"
        mem.crash()
        assert not mem.exists("f")
