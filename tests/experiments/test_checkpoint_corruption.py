"""Checkpoint corruption paths: what a resumed sweep must and must not eat.

Satellite contract (docs/ROBUSTNESS.md): a truncated *final* line is the
signature of a crash mid-append and is silently tolerated (that replication
re-runs).  A corrupt record *mid-file* — undecodable JSON or a CRC32
mismatch, i.e. bit rot rather than a torn append — is skipped and reported
via ``CheckpointStore.corrupt_records``, and its replication re-runs.  Only
a corrupt/foreign header or a fingerprint mismatch refuses to resume with a
clear :class:`CheckpointError`.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.experiments.checkpoint import CheckpointStore
from repro.experiments.runner import FailedReplication, ReplicationOutcome


def _outcome(v: float = 5.0) -> ReplicationOutcome:
    return ReplicationOutcome(
        generated_value=10.0,
        n_jobs=3,
        values={"EDF": v},
        completed={"EDF": 2},
        recovered=1,
    )


def _store(path, **kw) -> CheckpointStore:
    args = dict(seed=1, n_runs=4, fingerprint="abc123")
    args.update(kw)
    return CheckpointStore(path, **args)


def _fresh(tmp_path, n_records: int = 3):
    path = tmp_path / "run.ckpt"
    store = _store(path)
    for i in range(n_records):
        store.record(i, _outcome(float(i)))
    store.close()
    return path


class TestCleanResume:
    def test_roundtrip(self, tmp_path):
        path = _fresh(tmp_path)
        resumed = _store(path)
        assert sorted(resumed.completed) == [0, 1, 2]
        assert resumed.completed[1].values == {"EDF": 1.0}
        assert resumed.completed[1].recovered == 1
        assert resumed.pending() == [3]

    def test_failures_are_retried(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = _store(path)
        store.record(0, _outcome())
        store.record(
            1,
            FailedReplication(
                index=1, error_type="ValueError", message="boom", attempts=2
            ),
        )
        store.close()
        resumed = _store(path)
        assert resumed.pending() == [1, 2, 3]  # the failure re-runs
        assert resumed.failures[1].message == "boom"

    def test_latest_record_wins(self, tmp_path):
        path = tmp_path / "run.ckpt"
        store = _store(path)
        store.record(
            0,
            FailedReplication(
                index=0, error_type="OSError", message="flaky", attempts=1
            ),
        )
        store.record(0, _outcome(9.0))  # the retry succeeded
        store.close()
        resumed = _store(path)
        assert resumed.completed[0].values == {"EDF": 9.0}
        assert 0 not in resumed.failures


class TestCorruption:
    def test_truncated_final_line_tolerated(self, tmp_path):
        path = _fresh(tmp_path)
        text = path.read_text()
        path.write_text(text[: text.rindex('{"index": 2') + 14])
        resumed = _store(path)
        assert sorted(resumed.completed) == [0, 1]
        assert resumed.pending() == [2, 3]  # the torn replication re-runs

    def test_corrupt_middle_line_skipped_and_reported(self, tmp_path):
        path = _fresh(tmp_path)
        lines = path.read_text().splitlines()
        lines[2] = '{"index": 1, "outcome": BROKEN'
        path.write_text("\n".join(lines) + "\n")
        resumed = _store(path)
        # Records around the rotten one survive; only index 1 re-runs.
        assert sorted(resumed.completed) == [0, 2]
        assert resumed.pending() == [1, 3]
        assert resumed.corrupt_records == [(3, "undecodable JSON")]

    def test_crc_mismatch_skipped_and_reported(self, tmp_path):
        path = _fresh(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        record["outcome"]["values"]["EDF"] = 999.0  # bit rot in a value
        lines[2] = json.dumps(record)  # stale "crc" now mismatches
        path.write_text("\n".join(lines) + "\n")
        resumed = _store(path)
        assert sorted(resumed.completed) == [0, 2]
        assert resumed.pending() == [1, 3]
        assert resumed.corrupt_records == [(3, "CRC mismatch")]

    def test_legacy_record_without_crc_accepted(self, tmp_path):
        path = _fresh(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[2])
        del record["crc"]  # written before checksums existed
        lines[2] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        resumed = _store(path)
        assert sorted(resumed.completed) == [0, 1, 2]
        assert resumed.corrupt_records == []

    def test_corrupt_header_refuses_resume(self, tmp_path):
        path = _fresh(tmp_path)
        lines = path.read_text().splitlines()
        lines[0] = "{broken header"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt checkpoint header"):
            _store(path)

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text(json.dumps({"kind": "event_journal", "schema": 1}) + "\n")
        with pytest.raises(CheckpointError, match="not a Monte-Carlo checkpoint"):
            _store(path)

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_text(
            json.dumps(
                {
                    "kind": "mc_checkpoint",
                    "schema": 99,
                    "seed": 1,
                    "n_runs": 4,
                    "fingerprint": "abc123",
                }
            )
            + "\n"
        )
        with pytest.raises(CheckpointError, match="unsupported checkpoint schema"):
            _store(path)

    def test_out_of_range_index_rejected(self, tmp_path):
        path = _fresh(tmp_path, n_records=1)
        with path.open("a") as fh:
            fh.write(
                json.dumps(
                    {"index": 99, "outcome": json.loads(json.dumps({
                        "generated_value": 1.0,
                        "n_jobs": 1,
                        "values": {"EDF": 1.0},
                        "completed": {"EDF": 1},
                    }))}
                )
                + "\n"
            )
        with pytest.raises(CheckpointError, match="out of range"):
            _store(path)


class TestFingerprint:
    @pytest.mark.parametrize(
        "kw, what",
        [
            ({"fingerprint": "zzz999"}, "fingerprint"),
            ({"seed": 2}, "seed"),
            ({"n_runs": 8}, "n_runs"),
        ],
    )
    def test_mismatch_refuses_resume(self, tmp_path, kw, what):
        path = _fresh(tmp_path)
        with pytest.raises(CheckpointError, match="different run") as excinfo:
            _store(path, **kw)
        assert what in str(excinfo.value)
