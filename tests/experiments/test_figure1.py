"""Tests for the Figure-1 harness (small-scale)."""

import pytest

from repro.experiments import Figure1Config, run_figure1


@pytest.fixture(scope="module")
def result():
    # Per-instance dominance (V-Dover ending above Dover in every panel) is
    # the typical case, not a theorem — it holds on ~90% of seeds at this
    # scale, so the test pins one (like the paper pins one instance).
    return run_figure1(Figure1Config(lam=6.0, expected_jobs=500.0, seed=2))


class TestStructure:
    def test_one_panel_per_c_hat(self, result):
        assert [p.c_hat for p in result.panels] == [1.0, 10.5, 24.5, 35.0]

    def test_series_are_monotone(self, result):
        for panel in result.panels:
            for series in (panel.vdover_series, panel.dover_series):
                values = [v for _, v in series]
                assert values == sorted(values)
                assert values[0] == 0.0

    def test_series_bounded_by_generated(self, result):
        for panel in result.panels:
            assert panel.vdover_final <= panel.generated_value + 1e-9
            assert panel.dover_final <= panel.generated_value + 1e-9

    def test_capacity_path_recorded(self, result):
        for panel in result.panels:
            assert panel.capacity_path
            rates = {r for _, _, r in panel.capacity_path}
            assert rates <= {1.0, 35.0}


class TestPaperShape:
    def test_vdover_ends_at_or_above_dover(self, result):
        """Fig. 1's visual: V-Dover never ends below Dover."""
        for panel in result.panels:
            assert panel.vdover_final >= panel.dover_final - 1e-9

    def test_lead_series_never_strongly_negative(self, result):
        """V-Dover's cumulative lead stays (essentially) non-negative —
        on the shared instance Dover never builds a durable advantage."""
        for panel in result.panels:
            leads = [lead for _, lead in panel.lead_series()]
            # Transient dips are possible mid-run; the end must be >= 0.
            assert leads[-1] >= -1e-9

    def test_render(self, result):
        text = result.render()
        assert "V-Dover" in text and "Dover" in text
        assert "panel" in text
