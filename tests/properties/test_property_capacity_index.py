"""Property tests for the prefix-sum capacity index (repro.capacity.prefix).

Two contracts are pinned here:

* **indexed ≡ naive** — the O(log n) indexed ``integrate``/``advance``
  agree with the naive linear piece-scan reference
  (``naive_integrate``/``naive_advance``): to 0 ulp on rational
  (dyadic-exact) grids, and to ≤ 1e-9 on random floats;
* **round-trip** — ``advance(t, integrate(t, t2))`` lands back on ``t2``
  (the inverse-integral property the engine's completion prediction
  relies on),

including degenerate single-segment paths and very long (10⁴-segment)
paths, for the static piecewise model, the lazily-extended Markov model,
and the sinusoidal segment cache.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity import (
    MarkovModulatedCapacity,
    PiecewiseConstantCapacity,
    SinusoidalCapacity,
    TwoStateMarkovCapacity,
    crosscheck_index,
    naive_advance,
    naive_integrate,
)


@st.composite
def piecewise_caps(draw):
    """Random breakpoint grids with float gaps and float rates."""
    n = draw(st.integers(min_value=1, max_value=40))
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=50.0),
            min_size=n - 1, max_size=n - 1,
        )
    )
    bp = [0.0]
    for g in gaps:
        bp.append(bp[-1] + g)
    rates = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=40.0),
            min_size=n, max_size=n,
        )
    )
    return PiecewiseConstantCapacity(bp, rates)


@st.composite
def rational_piecewise_caps(draw):
    """Dyadic grids (integer/4 breakpoints, power-of-two rates): every
    prefix sum, and every division by a rate, is exactly representable,
    so indexed and naive must agree to 0 ulp."""
    n = draw(st.integers(min_value=1, max_value=20))
    gaps = draw(
        st.lists(st.integers(min_value=1, max_value=64),
                 min_size=n - 1, max_size=n - 1)
    )
    bp = [0.0]
    for g in gaps:
        bp.append(bp[-1] + g / 4.0)
    rates = [
        2.0 ** k
        for k in draw(
            st.lists(st.integers(min_value=-3, max_value=4),
                     min_size=n, max_size=n)
        )
    ]
    return PiecewiseConstantCapacity(bp, rates)


def rel_close(a, b, tol=1e-9):
    return math.isclose(a, b, rel_tol=tol, abs_tol=tol)


class TestIndexedVsNaive:
    @settings(max_examples=60, deadline=None)
    @given(cap=piecewise_caps(), a=st.floats(0.0, 500.0), span=st.floats(0.0, 500.0))
    def test_integrate_agrees_on_random_grids(self, cap, a, span):
        b = a + span
        assert rel_close(cap.integrate(a, b), naive_integrate(cap, a, b))

    @settings(max_examples=60, deadline=None)
    @given(cap=rational_piecewise_caps(), a=st.integers(0, 400), b=st.integers(0, 400))
    def test_integrate_exact_on_rationals(self, cap, a, b):
        lo, hi = (a / 4.0, b / 4.0) if a <= b else (b / 4.0, a / 4.0)
        # 0-ulp agreement: both paths perform the same left-to-right
        # prefix-sum arithmetic on exactly representable dyadics.
        assert cap.integrate(lo, hi) == naive_integrate(cap, lo, hi)

    @settings(max_examples=60, deadline=None)
    @given(cap=piecewise_caps(), t0=st.floats(0.0, 300.0), work=st.floats(0.0, 1e4))
    def test_advance_agrees_with_naive(self, cap, t0, work):
        # Large-but-finite horizon: the naive scan's horizon-edge tolerance
        # then applies on both sides when work exhausts capacity exactly.
        fast = cap.advance(t0, work, horizon=1e15)
        slow = naive_advance(cap, t0, work, horizon=1e15)
        assert rel_close(fast, slow)

    @settings(max_examples=40, deadline=None)
    @given(cap=rational_piecewise_caps(), t0=st.integers(0, 200), work=st.integers(0, 2000))
    def test_advance_exact_on_rationals(self, cap, t0, work):
        assert cap.advance(t0 / 4.0, work / 8.0) == naive_advance(
            cap, t0 / 4.0, work / 8.0
        )

    def test_degenerate_single_segment(self):
        cap = PiecewiseConstantCapacity([0.0], [2.5])
        assert crosscheck_index(cap, 0.0, 100.0, n_queries=32) == 32
        assert cap.integrate(3.0, 7.0) == naive_integrate(cap, 3.0, 7.0)
        assert cap.advance(1.0, 10.0) == naive_advance(cap, 1.0, 10.0)

    def test_very_long_path_10k_segments(self):
        n = 10_000
        bp = [float(i) for i in range(n)]
        rates = [1.0 + (i % 7) * 0.5 for i in range(n)]
        cap = PiecewiseConstantCapacity(bp, rates)
        cap.check_index_invariants()
        assert crosscheck_index(cap, 0.0, float(n), n_queries=64) == 64
        # Deep advance from t=0 across the whole path: searchsorted must
        # land on the same piece as the front-to-back scan.
        total = cap.integrate(0.0, float(n))
        for frac in (0.1, 0.5, 0.999):
            w = total * frac
            assert rel_close(cap.advance(0.0, w), naive_advance(cap, 0.0, w))

    def test_markov_lazy_path_agrees(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=0.25, rng=7)
        # Force a long materialized path, then cross-check across it.
        cap.integrate(0.0, 2000.0)
        assert len(cap.breakpoints_materialized) >= 1000
        cap.check_index_invariants()
        assert crosscheck_index(cap, 0.0, 1500.0, n_queries=64) == 64

    def test_sinusoidal_segment_cache_agrees(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=7.3, phase=0.4,
                                 steps_per_period=64)
        assert crosscheck_index(cap, 0.0, 120.0, n_queries=96) == 96

    def test_query_order_does_not_change_lazy_path(self):
        a = MarkovModulatedCapacity([1.0, 4.0, 9.0], [0.5, 0.7, 0.3], rng=11)
        b = MarkovModulatedCapacity([1.0, 4.0, 9.0], [0.5, 0.7, 0.3], rng=11)
        # a: one deep query; b: many increasing shallow queries.
        deep = a.integrate(0.0, 300.0)
        parts = sum(b.integrate(i * 10.0, (i + 1) * 10.0) for i in range(30))
        assert deep == pytest.approx(parts, rel=1e-12)
        assert a.integrate(0.0, 300.0) == b.integrate(0.0, 300.0)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        cap=piecewise_caps(),
        t=st.floats(0.0, 200.0),
        span=st.floats(1e-6, 200.0),
    )
    def test_advance_inverts_integrate(self, cap, t, span):
        t2 = t + span
        w = cap.integrate(t, t2)
        back = cap.advance(t, w)
        # Relative tolerance on the *time* axis, scaled by span (rates are
        # bounded in [0.1, 40], so the inverse amplifies error ≤ 10x).
        assert back == pytest.approx(t2, rel=1e-9, abs=1e-7 * max(1.0, t2))

    @settings(max_examples=30, deadline=None)
    @given(t=st.floats(0.0, 400.0), span=st.floats(1e-3, 200.0), seed=st.integers(0, 50))
    def test_markov_round_trip(self, t, span, seed):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=1.0, rng=seed)
        t2 = t + span
        w = cap.integrate(t, t2)
        assert cap.advance(t, w) == pytest.approx(t2, rel=1e-9, abs=1e-7 * max(1.0, t2))

    @settings(max_examples=30, deadline=None)
    @given(t=st.floats(0.0, 50.0), span=st.floats(1e-3, 50.0))
    def test_sinusoidal_round_trip(self, t, span):
        cap = SinusoidalCapacity(1.0, 5.0, period=9.7, steps_per_period=64)
        t2 = t + span
        w = cap.integrate(t, t2)
        assert cap.advance(t, w) == pytest.approx(t2, rel=1e-9, abs=1e-7 * max(1.0, t2))

    def test_zero_work_is_identity(self):
        cap = PiecewiseConstantCapacity([0.0, 1.0], [1.0, 2.0])
        for t in (0.0, 0.5, 1.0, 17.3):
            assert cap.advance(t, 0.0) == t


class TestIndexInvariants:
    @settings(max_examples=40, deadline=None)
    @given(cap=piecewise_caps())
    def test_invariants_hold_for_random_grids(self, cap):
        cap.check_index_invariants()

    def test_markov_invariants_after_extension(self):
        cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=0.5, rng=3)
        cap.check_index_invariants()
        cap.integrate(0.0, 500.0)   # extend lazily
        cap.check_index_invariants()
        n1 = len(cap.breakpoints_materialized)
        cap.advance(0.0, 200.0)     # extend further via advance
        cap.check_index_invariants()
        assert len(cap.breakpoints_materialized) >= n1  # append-only
