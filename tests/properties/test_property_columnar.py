"""Columnar hot-path properties.

Three contracts guard this PR's refactor:

1. **Table/object parity** — the struct-of-arrays
   :class:`~repro.sim.jobtable.JobTable` must agree with the historical
   per-object (jid-keyed dict) state representation after *any* event
   sequence: random lifecycle walks directly on the table, and full engine
   runs with faults injected.
2. **Summation-order audit (1-ulp tests)** — every vectorized expression
   that replaced scalar arithmetic must agree *to the bit*, not to a
   tolerance: element-wise laxities, the ``np.add.accumulate`` admission
   chain, and ``advance_from`` with a cached anchor vs plain ``advance``.
3. **Batched dispatch equivalence** — same-timestamp batch draining plus
   the pre-journal stale filter must leave journals and observability
   exports invariant across loop variants (fast vs instrumented) on
   tie-heavy instances.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.capacity import PiecewiseConstantCapacity, TwoStateMarkovCapacity
from repro import obs
from repro.core import AdmissionEDFScheduler, EDFScheduler, VDoverScheduler
from repro.faults.execution import JobKillFault, RevocationBurst
from repro.sim import (
    CODE_STATUS,
    STATUS_CODE,
    Job,
    JobStatus,
    JobTable,
    SimulationEngine,
    simulate,
)
from repro.sim.journal import EventJournal, results_bit_identical
from repro.workload import PoissonWorkload

_PENDING = STATUS_CODE[JobStatus.PENDING]
_READY = STATUS_CODE[JobStatus.READY]
_RUNNING = STATUS_CODE[JobStatus.RUNNING]


@st.composite
def instances(draw, max_jobs=10):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    jobs = []
    for i in range(n):
        release = draw(st.floats(min_value=0.0, max_value=20.0))
        workload = draw(st.floats(min_value=0.05, max_value=6.0))
        slack = draw(st.floats(min_value=1.0, max_value=4.0))
        density = draw(st.floats(min_value=1.0, max_value=10.0))
        jobs.append(
            Job(
                jid=i,
                release=release,
                workload=workload,
                deadline=release + slack * workload,
                value=density * workload,
            )
        )
    return jobs


class TestTableObjectParity:
    """JobTable after a random lifecycle walk == the dict reference."""

    @given(instances(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_random_walk_matches_dict_reference(self, jobs, rng):
        table = JobTable(jobs)
        # The historical representation: jid-keyed dicts, statuses as enums.
        ref_rem: dict[int, float] = {}
        ref_st: dict[int, JobStatus] = {j.jid: JobStatus.PENDING for j in jobs}

        for _ in range(rng.randint(0, 6 * len(jobs))):
            job = jobs[rng.randrange(len(jobs))]
            row = table.row_of[job.jid]
            state = ref_st[job.jid]
            if state is JobStatus.PENDING:
                ref_st[job.jid] = JobStatus.READY
                ref_rem[job.jid] = job.workload
                table.status[row] = _READY
                table.remaining[row] = job.workload
            elif state is JobStatus.READY:
                step = rng.choice(["run", "fail", "abandon"])
                if step == "run":
                    ref_st[job.jid] = JobStatus.RUNNING
                    table.status[row] = _RUNNING
                else:
                    new = (
                        JobStatus.FAILED
                        if step == "fail"
                        else JobStatus.ABANDONED
                    )
                    ref_st[job.jid] = new
                    table.status[row] = STATUS_CODE[new]
            elif state is JobStatus.RUNNING:
                step = rng.choice(["preempt", "complete", "kill"])
                if step == "complete":
                    ref_st[job.jid] = JobStatus.COMPLETED
                    ref_rem[job.jid] = 0.0
                    table.status[row] = STATUS_CODE[JobStatus.COMPLETED]
                    table.remaining[row] = 0.0
                else:
                    factor = rng.uniform(0.0, 1.0 if step == "preempt" else 1.3)
                    new_rem = min(job.workload, ref_rem[job.jid] * factor)
                    ref_st[job.jid] = JobStatus.READY
                    ref_rem[job.jid] = new_rem
                    table.status[row] = _READY
                    table.remaining[row] = new_rem
            # terminal states stay terminal

        assert table.export_remaining() == ref_rem
        assert table.export_status() == {
            jid: s.name for jid, s in ref_st.items()
        }
        for job in jobs:
            assert table.status_of(job.jid) is ref_st[job.jid]
        ready_ref = sorted(
            table.row_of[j] for j, s in ref_st.items() if s is JobStatus.READY
        )
        assert table.rows_ready().tolist() == ready_ref
        unresolved_ref = sorted(
            table.row_of[j]
            for j, s in ref_st.items()
            if s in (JobStatus.READY, JobStatus.RUNNING)
        )
        assert table.rows_unresolved().tolist() == unresolved_ref

        # Column snapshot round-trips exactly, in place.
        rem_col, st_col = table.copy_state()
        rem_alias, st_alias = table.remaining, table.status
        clone = JobTable(jobs)
        clone.load_state_columns(rem_col, st_col)
        assert clone.remaining == table.remaining
        assert clone.status == table.status
        # Dict snapshot round-trips exactly too.
        clone2 = JobTable(jobs)
        clone2.load_state_dicts(table.export_remaining(), table.export_status())
        assert clone2.status == table.status
        for job in jobs:
            row = table.row_of[job.jid]
            if table.status[row] != _PENDING:
                assert clone2.remaining[row] == table.remaining[row]
        # In-place contract: loading must not rebind the column objects.
        table.load_state_dicts(table.export_remaining(), table.export_status())
        assert table.remaining is rem_alias and table.status is st_alias

    @given(instances(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_engine_table_matches_trace_after_faulted_run(self, jobs, seed):
        faults = [
            JobKillFault(0.4, retain=0.5, seed=seed),
            RevocationBurst(0.2, seed=seed + 1),
        ]
        cap = TwoStateMarkovCapacity(1.0, 8.0, mean_sojourn=3.0, rng=seed)
        engine = SimulationEngine(
            jobs, cap, EDFScheduler(), faults=faults, validate=True
        )
        result = engine.run()
        table = engine.kernel.table
        assert table.rows_unresolved().size == 0
        outcomes = result.trace.outcomes
        for job in jobs:
            status = table.status_of(job.jid)
            assert status in (JobStatus.COMPLETED, JobStatus.FAILED)
            assert outcomes[job.jid] is status
            if status is JobStatus.COMPLETED:
                row = table.row_of[job.jid]
                assert table.remaining[row] == 0.0


class TestSummationOrderAudit:
    """Vectorized arithmetic must match scalar arithmetic exactly (0 ulp)."""

    @given(instances(), st.floats(min_value=0.0, max_value=50.0),
           st.floats(min_value=0.25, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_laxities_bit_identical_to_scalar(self, jobs, now, rate):
        table = JobTable(jobs)
        rng = random.Random(17)
        for row, job in enumerate(jobs):
            table.remaining[row] = rng.uniform(0.0, job.workload)
        vec = table.laxities(now, rate)
        for row, job in enumerate(jobs):
            scalar = job.laxity(now, table.remaining[row], rate)
            assert vec[row] == scalar  # exact, not approx
        zvec = table.zero_laxity_times(rate)
        for row, job in enumerate(jobs):
            assert zvec[row] == job.deadline - table.remaining[row] / rate

    @given(
        st.lists(st.floats(min_value=0.001, max_value=50.0), min_size=1,
                 max_size=40),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.25, max_value=4.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_accumulate_matches_scalar_chain(self, remainings, now, rate):
        """np.add.accumulate is strictly left-to-right: the vectorized
        admission chain reproduces the scalar ``t += w/c`` loop to the bit."""
        terms = np.empty(len(remainings) + 1, dtype=np.float64)
        terms[0] = now
        for i, w in enumerate(remainings):
            terms[i + 1] = w / rate
        completion = np.add.accumulate(terms)[1:]
        t = now
        for i, w in enumerate(remainings):
            t += w / rate
            assert completion[i] == t  # exact

    @given(st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_advance_from_bit_identical_to_advance(self, rng):
        n = rng.randint(2, 12)
        bps = [0.0]
        rates = []
        for _ in range(n):
            bps.append(bps[-1] + rng.uniform(0.1, 5.0))
            rates.append(rng.uniform(0.5, 10.0))
        rates.append(rng.uniform(0.5, 10.0))
        cap = PiecewiseConstantCapacity(bps, rates)
        for _ in range(20):
            t0 = rng.uniform(0.0, bps[-1] * 1.2)
            work = rng.uniform(0.0, 30.0)
            assert cap.advance_from(t0, cap.cumulative(t0), work) == cap.advance(
                t0, work
            )

    def test_admission_scheduler_matches_scalar_reference(self):
        """End-to-end: the vectorized admission test admits exactly the jobs
        the scalar chain evaluation would."""
        h = 30.0
        jobs = PoissonWorkload(lam=5.0, horizon=h).generate(29)
        cap = TwoStateMarkovCapacity(1.0, 6.0, mean_sojourn=h / 3, rng=5)
        sched = AdmissionEDFScheduler()
        result = simulate(jobs, cap, sched, validate=True)
        assert result.value > 0.0
        # Recheck every rejection decision against the scalar rule using
        # the released-at-that-time information is infeasible post hoc, but
        # determinism pins the decision set: a second identical run must
        # reject the identical set.
        sched2 = AdmissionEDFScheduler()
        cap2 = TwoStateMarkovCapacity(1.0, 6.0, mean_sojourn=h / 3, rng=5)
        result2 = simulate(jobs, cap2, sched2, validate=True)
        assert results_bit_identical(result, result2)
        assert sched._rejected == sched2._rejected


def _tie_heavy_instance(seed=3):
    """The paper's workload shape: relative deadline == p/c̲, so every
    job's release coincides with its zero-laxity instant — plus quantized
    release times forcing cross-job same-timestamp batches."""
    rng = random.Random(seed)
    jobs = []
    for i in range(40):
        release = float(rng.randrange(0, 20))  # integer grid: heavy ties
        workload = rng.uniform(0.5, 3.0)
        jobs.append(
            Job(
                jid=i,
                release=release,
                workload=workload,
                deadline=release + workload,  # zero laxity at c̲ = 1
                value=rng.uniform(1.0, 10.0) * workload,
            )
        )
    return jobs


class TestBatchedDispatchEquivalence:
    """Same-timestamp batching + the pre-journal stale filter must leave
    results, journals and obs exports invariant across loop variants."""

    @pytest.mark.parametrize(
        "make",
        [lambda: EDFScheduler(), lambda: VDoverScheduler(k=7.0)],
        ids=["edf", "vdover"],
    )
    def test_fast_and_journaled_loops_bit_identical(self, make):
        jobs = _tie_heavy_instance()

        def cap():
            return TwoStateMarkovCapacity(1.0, 4.0, mean_sojourn=5.0, rng=11)

        fast = simulate(jobs, cap(), make())  # no instrumentation: fast loop
        journal = EventJournal()
        full = simulate(jobs, cap(), make(), journal=journal)  # full loop
        assert results_bit_identical(fast, full)
        assert len(journal) > 0

    def test_journal_invariant_under_observability(self):
        """The stale filter runs before journaling in every variant, so an
        obs session must not change a single journal record."""
        jobs = _tie_heavy_instance()

        def run():
            journal = EventJournal()
            cap = TwoStateMarkovCapacity(1.0, 4.0, mean_sojourn=5.0, rng=11)
            simulate(jobs, cap, VDoverScheduler(k=7.0), journal=journal)
            return journal.records

        bare = run()
        with obs.session():
            observed = run()
        assert bare == observed

    def test_obs_export_stable_on_tie_heavy_instance(self, tmp_path):
        jobs = _tie_heavy_instance()
        blobs = []
        for i in range(2):
            with obs.session() as octx:
                cap = TwoStateMarkovCapacity(1.0, 4.0, mean_sojourn=5.0, rng=11)
                simulate(jobs, cap, VDoverScheduler(k=7.0))
                path = tmp_path / f"tie{i}.jsonl"
                octx.sink.export_jsonl(path)
                blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1] and len(blobs[0]) > 0
