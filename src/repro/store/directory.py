"""Filesystem abstraction for the durable store: real, in-memory, faulty.

Everything in :mod:`repro.store` writes through a tiny :class:`Directory`
protocol instead of ``pathlib`` directly, for one reason: **crash
semantics must be testable**.  POSIX durability is subtle — ``write()``
lands in the page cache, ``fsync(fd)`` persists a file's *content*,
but a freshly created or renamed *entry* only survives power loss after
the parent directory itself is fsynced.  The store's atomicity recipes
(``tmp → fsync → rename → dir-fsync``) are exactly the dance that makes
partial states invisible; proving they work needs a filesystem whose
power cord can be pulled deterministically.

Three implementations:

* :class:`OsDirectory` — the real thing (``os.fsync`` on files and on
  the directory fd; ``os.replace`` for atomic rename).
* :class:`MemoryDirectory` — an in-memory filesystem with an explicit
  *volatile vs durable* split: every file tracks the bytes the process
  sees (``content``) and the bytes that would survive power loss
  (``durable``, advanced only by ``fsync``); directory entries
  (creations, renames, removals) stay volatile until :meth:`fsync_dir`.
  :meth:`MemoryDirectory.crash` simulates the power loss: all volatile
  state reverts, recursively.
* :class:`~repro.store.faults.FaultyDirectory` — wraps either of the
  above and injects torn writes / bit flips / ``ENOSPC`` / lying fsyncs
  (see :mod:`repro.store.faults`).

Simplification, stated: subdirectory *creation* is treated as durable
immediately (the store lays out its directory tree once, at open time,
long before any interesting write), and ``SIGKILL``-style process death
— as opposed to power loss — loses nothing that reached the OS, which
the in-memory model can emulate by fsync-ing everything before
:meth:`crash`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Protocol

from repro.errors import StorageError

__all__ = ["FileHandle", "Directory", "OsDirectory", "MemoryDirectory"]


class FileHandle(Protocol):
    """An open, append-positioned binary file."""

    def write(self, data: bytes) -> None: ...

    def flush(self) -> None: ...

    def fsync(self) -> None: ...

    def close(self) -> None: ...

    def tell(self) -> int: ...


class Directory(Protocol):
    """One flat directory of files plus named subdirectories."""

    def create(self, name: str) -> FileHandle: ...

    def open_append(self, name: str) -> FileHandle: ...

    def read_bytes(self, name: str) -> bytes: ...

    def exists(self, name: str) -> bool: ...

    def listdir(self) -> List[str]: ...

    def rename(self, old: str, new: str) -> None: ...

    def remove(self, name: str) -> None: ...

    def truncate(self, name: str, size: int) -> None: ...

    def fsync_dir(self) -> None: ...

    def subdir(self, name: str) -> "Directory": ...

    @property
    def path(self) -> Optional[Path]: ...


# ----------------------------------------------------------------------
# Real filesystem
# ----------------------------------------------------------------------
class _OsFile:
    def __init__(self, fh) -> None:
        self._fh = fh

    def write(self, data: bytes) -> None:
        self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def fsync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        self._fh.close()

    def tell(self) -> int:
        return self._fh.tell()


class OsDirectory:
    """The real filesystem rooted at ``path`` (created if missing)."""

    def __init__(self, path: "str | Path") -> None:
        self._path = Path(path)
        self._path.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Optional[Path]:
        return self._path

    def create(self, name: str) -> FileHandle:
        return _OsFile((self._path / name).open("wb"))

    def open_append(self, name: str) -> FileHandle:
        return _OsFile((self._path / name).open("ab"))

    def read_bytes(self, name: str) -> bytes:
        return (self._path / name).read_bytes()

    def exists(self, name: str) -> bool:
        return (self._path / name).exists()

    def listdir(self) -> List[str]:
        return sorted(
            p.name for p in self._path.iterdir() if p.is_file()
        )

    def rename(self, old: str, new: str) -> None:
        os.replace(self._path / old, self._path / new)

    def remove(self, name: str) -> None:
        (self._path / name).unlink()

    def truncate(self, name: str, size: int) -> None:
        with (self._path / name).open("r+b") as fh:
            fh.truncate(size)

    def fsync_dir(self) -> None:
        # Persist entry operations (create/rename/remove).  Some
        # platforms refuse to fsync a directory fd; durability there is
        # best-effort, exactly like the journal's dir-fsync.
        try:
            fd = os.open(self._path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def subdir(self, name: str) -> "OsDirectory":
        return OsDirectory(self._path / name)


# ----------------------------------------------------------------------
# In-memory filesystem with an explicit power-loss model
# ----------------------------------------------------------------------
class _MemFile:
    """One file's volatile content and its durable (fsynced) prefix."""

    __slots__ = ("content", "durable")

    def __init__(self) -> None:
        self.content = bytearray()
        self.durable: bytes = b""


class _MemHandle:
    def __init__(self, owner: "MemoryDirectory", f: _MemFile) -> None:
        self._owner = owner
        self._f = f
        self._epoch = owner.epoch
        self._closed = False

    def _check(self) -> None:
        if self._closed:
            raise StorageError("write to a closed file handle")
        if self._epoch != self._owner.epoch:
            raise StorageError("file handle outlived a simulated crash")

    def write(self, data: bytes) -> None:
        self._check()
        self._f.content += data

    def flush(self) -> None:
        self._check()  # buffering is not modelled: writes are "in the OS"

    def fsync(self) -> None:
        self._check()
        self._f.durable = bytes(self._f.content)

    def close(self) -> None:
        self._closed = True

    def tell(self) -> int:
        return len(self._f.content)


class MemoryDirectory:
    """In-memory :class:`Directory` with volatile/durable bookkeeping.

    ``files`` is what the process sees; ``_durable_entries`` snapshots
    the *name → file* mapping as of the last :meth:`fsync_dir` — a
    created/renamed/removed entry is volatile until then.  File content
    durability is per-file (``fsync``).  :meth:`crash` reverts every
    volatile bit, recursively through subdirectories.
    """

    def __init__(self) -> None:
        self._files: Dict[str, _MemFile] = {}
        self._durable_entries: Dict[str, _MemFile] = {}
        self._children: Dict[str, "MemoryDirectory"] = {}
        self.epoch = 0  # bumped on crash; invalidates open handles

    @property
    def path(self) -> Optional[Path]:
        return None

    # -- Directory protocol ---------------------------------------------
    def create(self, name: str) -> FileHandle:
        f = _MemFile()
        self._files[name] = f
        return _MemHandle(self, f)

    def open_append(self, name: str) -> FileHandle:
        if name not in self._files:
            raise StorageError(f"no such file {name!r}")
        return _MemHandle(self, self._files[name])

    def read_bytes(self, name: str) -> bytes:
        if name not in self._files:
            raise StorageError(f"no such file {name!r}")
        return bytes(self._files[name].content)

    def exists(self, name: str) -> bool:
        return name in self._files

    def listdir(self) -> List[str]:
        return sorted(self._files)

    def rename(self, old: str, new: str) -> None:
        if old not in self._files:
            raise StorageError(f"no such file {old!r}")
        self._files[new] = self._files.pop(old)

    def remove(self, name: str) -> None:
        if name not in self._files:
            raise StorageError(f"no such file {name!r}")
        del self._files[name]

    def truncate(self, name: str, size: int) -> None:
        f = self._files[name]
        del f.content[size:]

    def fsync_dir(self) -> None:
        self._durable_entries = dict(self._files)

    def subdir(self, name: str) -> "MemoryDirectory":
        # Subdirectory creation is durable immediately (see module doc).
        child = self._children.get(name)
        if child is None:
            child = MemoryDirectory()
            self._children[name] = child
        return child

    # -- the power cord ---------------------------------------------------
    def crash(self) -> None:
        """Simulate power loss: volatile entries and content vanish."""
        self.epoch += 1
        self._files = dict(self._durable_entries)
        for f in self._files.values():
            f.content = bytearray(f.durable)
        for child in self._children.values():
            child.crash()

    def sync_all(self) -> None:
        """Make the *current* state fully durable (recursively) — models
        ``SIGKILL``-style process death, which loses nothing already
        handed to the OS."""
        for f in self._files.values():
            f.durable = bytes(f.content)
        self.fsync_dir()
        for child in self._children.values():
            child.sync_all()
