"""Segmented, checksummed, crash-truncatable append log.

The op log under every tenant's durable state.  Records are opaque byte
payloads framed as ``<u32 length, u32 crc32(payload)>`` and appended to
bounded *segment files*::

    log-000000000000.seg      # header: b"RSG1" + <u64 first_seq>
    log-000000000037.seg      # next segment starts at sequence 37
    log-000000000037.seg.quarantine   # a corrupt segment, set aside

Invariants the layout buys:

* **Atomic birth** — every segment file is created as ``.tmp``, header
  written and fsynced, then renamed into place and the directory
  fsynced: a visible segment always has a complete, valid header
  (``tmp → fsync → rename → dir-fsync``, the same recipe as snapshots).
* **Torn tails truncate** — a crash mid-append leaves an incomplete
  final frame in the *last* segment; open detects it and truncates the
  file back to the last complete frame.  Data before the tear is
  untouched.
* **Corrupt records quarantine** — a complete frame whose CRC32 does
  not match (bit rot, torn overwrite) cannot be silently skipped: every
  record after it is of suspect lineage.  The bad segment is renamed
  ``*.quarantine`` (kept for forensics), its good prefix is rewritten
  as a fresh segment under the original name, all later segments are
  quarantined too, and recovery proceeds from the last good record.
* **Compaction by sequence** — :meth:`compact` drops whole segments
  whose records all precede an anchor sequence (the snapshot the ops
  are superseded by); the partially-covered segment stays.

Durability contract: ``append(..., sync=True)`` returns only after the
frame is fsynced — a ``SIGKILL`` after the call loses nothing, a power
loss after the call loses nothing (segment birth was dir-fsynced).
``sync=False`` hands the bytes to the OS (flush) without forcing them
to media.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import StorageError
from repro.store.directory import Directory, FileHandle

__all__ = ["SegmentedLog"]

_MAGIC = b"RSG1"
_HEADER = struct.Struct("<Q")  # first sequence number in the segment
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_HEADER_LEN = len(_MAGIC) + _HEADER.size  # 12


def _segment_name(first_seq: int) -> str:
    return f"log-{first_seq:012d}.seg"


@dataclass
class _Segment:
    name: str
    first_seq: int
    count: int  # live records in this segment


class SegmentedLog:
    """Append-only log of byte records in bounded, checksummed segments."""

    def __init__(
        self,
        directory: Directory,
        *,
        segment_bytes: int = 64 * 1024,
        fsync: bool = True,
    ) -> None:
        if segment_bytes < _HEADER_LEN + _FRAME.size:
            raise StorageError(
                f"segment_bytes too small ({segment_bytes!r})"
            )
        self._dir = directory
        self._segment_bytes = int(segment_bytes)
        self._fsync = bool(fsync)
        self._segments: List[_Segment] = []
        self._records: List[bytes] = []  # live records, seq order
        self._base_seq = 0  # seq of _records[0]
        self._handle: Optional[FileHandle] = None
        self._size = 0  # bytes in the open (last) segment
        self._closed = False
        #: segment names set aside as ``*.quarantine`` during this open.
        self.quarantined: List[str] = []
        #: bytes of torn tail truncated away during this open.
        self.truncated_bytes = 0
        self._recover()

    # -- accessors ------------------------------------------------------
    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will return."""
        return self._base_seq + len(self._records)

    @property
    def base_seq(self) -> int:
        """Sequence of the oldest live record (compaction floor)."""
        return self._base_seq

    def entries(self) -> List[Tuple[int, bytes]]:
        """All live records as ``(seq, payload)``, in order."""
        return list(enumerate(self._records, start=self._base_seq))

    def __len__(self) -> int:
        return len(self._records)

    # -- recovery -------------------------------------------------------
    def _recover(self) -> None:
        names = []
        for name in self._dir.listdir():
            if name.endswith(".seg.tmp"):
                # A rotation died between create and rename: the tmp file
                # was never part of the log.
                self._dir.remove(name)
                continue
            if name.startswith("log-") and name.endswith(".seg"):
                names.append(name)
        names.sort()

        expected_seq: Optional[int] = None
        for idx, name in enumerate(names):
            last = idx == len(names) - 1
            data = self._dir.read_bytes(name)
            if len(data) < _HEADER_LEN or data[: len(_MAGIC)] != _MAGIC:
                self._quarantine(names[idx:])
                break
            (first_seq,) = _HEADER.unpack(
                data[len(_MAGIC) : _HEADER_LEN]
            )
            if expected_seq is not None and first_seq != expected_seq:
                # A gap or overlap in the sequence chain: everything from
                # here on has suspect lineage.
                self._quarantine(names[idx:])
                break
            if expected_seq is None:
                self._base_seq = first_seq

            payloads, end, verdict = self._scan_frames(data)
            if verdict == "corrupt":
                # Set the bad segment aside, keep its good prefix under
                # the original name, drop everything after it.
                self._quarantine([name])
                self._write_segment(name, first_seq, payloads)
                self._segments.append(
                    _Segment(name, first_seq, len(payloads))
                )
                self._records.extend(payloads)
                self._quarantine(names[idx + 1 :])
                break
            if verdict == "torn":
                if not last:
                    # A non-final segment was sealed by a rotation; a tear
                    # inside one is not a crash signature but corruption.
                    self._quarantine(names[idx:])
                    break
                self.truncated_bytes += len(data) - end
                self._dir.truncate(name, end)
                data = data[:end]
            self._segments.append(_Segment(name, first_seq, len(payloads)))
            self._records.extend(payloads)
            expected_seq = first_seq + len(payloads)

        if not self._segments:
            self._base_seq = 0
            self._new_segment(0)
        else:
            seg = self._segments[-1]
            self._size = len(self._dir.read_bytes(seg.name))
            self._handle = self._dir.open_append(seg.name)

    @staticmethod
    def _scan_frames(data: bytes) -> Tuple[List[bytes], int, str]:
        """Parse frames after the header.

        Returns ``(payloads, end_offset_of_last_good_frame, verdict)``
        where verdict is ``"clean"`` (ran to the end), ``"torn"``
        (incomplete final frame) or ``"corrupt"`` (CRC mismatch on a
        complete frame)."""
        payloads: List[bytes] = []
        offset = _HEADER_LEN
        n = len(data)
        while offset < n:
            if offset + _FRAME.size > n:
                return payloads, offset, "torn"
            length, crc = _FRAME.unpack(data[offset : offset + _FRAME.size])
            end = offset + _FRAME.size + length
            if end > n:
                return payloads, offset, "torn"
            payload = data[offset + _FRAME.size : end]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                return payloads, offset, "corrupt"
            payloads.append(payload)
            offset = end
        return payloads, offset, "clean"

    def _quarantine(self, names: List[str]) -> None:
        for name in names:
            self._dir.rename(name, name + ".quarantine")
            self.quarantined.append(name)
        if names:
            self._dir.fsync_dir()

    def _write_segment(
        self, name: str, first_seq: int, payloads: List[bytes]
    ) -> None:
        """Atomically materialise a complete segment file."""
        tmp = name + ".tmp"
        h = self._dir.create(tmp)
        h.write(_MAGIC + _HEADER.pack(first_seq))
        for payload in payloads:
            h.write(
                _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
                + payload
            )
        h.fsync()
        h.close()
        self._dir.rename(tmp, name)
        self._dir.fsync_dir()

    def _new_segment(self, first_seq: int) -> None:
        name = _segment_name(first_seq)
        self._write_segment(name, first_seq, [])
        self._segments.append(_Segment(name, first_seq, 0))
        self._handle = self._dir.open_append(name)
        self._size = _HEADER_LEN

    # -- append path ----------------------------------------------------
    def append(self, payload: bytes, *, sync: "bool | None" = None) -> int:
        """Append one record; returns its sequence number."""
        if self._closed:
            raise StorageError("append to a closed log")
        frame = (
            _FRAME.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
            + payload
        )
        if (
            self._size + len(frame) > self._segment_bytes
            and self._segments[-1].count > 0
        ):
            self._rotate()
        seq = self.next_seq
        assert self._handle is not None
        self._handle.write(frame)
        self._size += len(frame)
        self._segments[-1].count += 1
        self._records.append(payload)
        do_sync = self._fsync if sync is None else bool(sync)
        if do_sync:
            self._handle.fsync()
        else:
            self._handle.flush()
        return seq

    def _rotate(self) -> None:
        assert self._handle is not None
        self._handle.fsync()  # seal the outgoing segment
        self._handle.close()
        self._new_segment(self.next_seq)

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        if self._handle is not None:
            self._handle.fsync()

    # -- maintenance ----------------------------------------------------
    def compact(self, min_seq: int) -> int:
        """Drop whole segments entirely below ``min_seq``; returns how
        many segments were removed.  The last segment always stays."""
        removed = 0
        while len(self._segments) > 1:
            head = self._segments[0]
            if head.first_seq + head.count > min_seq:
                break
            self._dir.remove(head.name)
            del self._records[: head.count]
            self._base_seq = head.first_seq + head.count
            self._segments.pop(0)
            removed += 1
        if removed:
            self._dir.fsync_dir()
        return removed

    def rebase(self, first_seq: int) -> None:
        """Restart an *empty* log at a given sequence (used when a
        catastrophically corrupt log was quarantined wholesale but a
        snapshot still anchors the op-sequence space)."""
        if self._records or self._segments[-1].count:
            raise StorageError("rebase is only valid on an empty log")
        if self._handle is not None:
            self._handle.close()
        old = self._segments.pop()
        self._dir.remove(old.name)
        self._base_seq = first_seq
        self._new_segment(first_seq)

    def close(self) -> None:
        if self._closed:
            return
        if self._handle is not None:
            self._handle.fsync()
            self._handle.close()
            self._handle = None
        self._closed = True
