"""Unit tests for the closed-form theory of Theorems 1 and 3."""

import math

import pytest

from repro.analysis import (
    asymptotic_optimality_gap,
    dover_beta,
    dover_competitive_ratio,
    f_overload,
    optimal_beta,
    varying_capacity_upper_bound,
    vdover_competitive_ratio,
)
from repro.errors import AnalysisError


class TestFOverload:
    def test_formula(self):
        # f(k, δ) = 2δ + 2 + log(δk)/log(δ/(δ−1))
        k, d = 7.0, 35.0
        expected = 2 * d + 2 + math.log(d * k) / math.log(d / (d - 1))
        assert f_overload(k, d) == pytest.approx(expected)

    def test_increasing_in_delta(self):
        assert f_overload(7.0, 10.0) < f_overload(7.0, 20.0) < f_overload(7.0, 40.0)

    def test_increasing_in_k(self):
        assert f_overload(2.0, 10.0) < f_overload(20.0, 10.0)

    def test_rejects_delta_at_most_one(self):
        with pytest.raises(AnalysisError):
            f_overload(7.0, 1.0)
        with pytest.raises(AnalysisError):
            f_overload(7.0, 0.5)

    def test_rejects_k_below_one(self):
        with pytest.raises(AnalysisError):
            f_overload(0.5, 2.0)


class TestRatios:
    def test_vdover_ratio_formula(self):
        k, d = 7.0, 35.0
        f = f_overload(k, d)
        expected = 1.0 / ((math.sqrt(k) + math.sqrt(f)) ** 2 + 1.0)
        assert vdover_competitive_ratio(k, d) == pytest.approx(expected)

    def test_upper_bound_formula(self):
        assert varying_capacity_upper_bound(4.0) == pytest.approx(1.0 / 9.0)
        assert dover_competitive_ratio(4.0) == pytest.approx(1.0 / 9.0)

    def test_achievable_below_upper_bound(self):
        for k in (1.0, 7.0, 100.0):
            for d in (1.5, 35.0, 200.0):
                assert vdover_competitive_ratio(k, d) <= varying_capacity_upper_bound(k)

    def test_asymptotic_optimality(self):
        """Thm 3's discussion: achievable/upper -> 1 as k -> inf at fixed δ."""
        d = 35.0
        gaps = [asymptotic_optimality_gap(k, d) for k in (1e2, 1e4, 1e8, 1e12)]
        assert gaps == sorted(gaps)  # monotone improvement
        assert gaps[-1] > 0.9

    def test_ratio_decreases_with_k(self):
        assert vdover_competitive_ratio(2.0, 10.0) > vdover_competitive_ratio(50.0, 10.0)


class TestBetas:
    def test_dover_beta(self):
        assert dover_beta(4.0) == pytest.approx(3.0)

    def test_optimal_beta_formula(self):
        k, d = 7.0, 35.0
        assert optimal_beta(k, d) == pytest.approx(
            1.0 + math.sqrt(k / f_overload(k, d))
        )

    def test_betas_exceed_one(self):
        for k in (1.0, 7.0, 1000.0):
            assert dover_beta(k) > 1.0
            assert optimal_beta(k, 35.0) > 1.0
