"""Calendar-queue equivalence: the bucketed event queue must produce the
exact pop sequence of the binary heap for any push/pop interleaving, and
engine runs must be bit-identical under either layout."""

import random

import pytest

from repro.capacity import TwoStateMarkovCapacity
from repro.core import EDFScheduler, VDoverScheduler
from repro.errors import SimulationError
from repro.sim import simulate
from repro.sim.events import (
    CALENDAR_DENSITY_THRESHOLD,
    CALENDAR_MIN_EVENTS,
    CalendarEventQueue,
    Event,
    EventKind,
    EventQueue,
    make_event_queue,
)
from repro.workload import PoissonWorkload


def _random_events(rng, n, span=100.0):
    kinds = list(EventKind)
    return [
        Event(
            # Quantized times force plenty of exact ties across kinds/seqs.
            round(rng.uniform(0.0, span), 1),
            rng.choice(kinds),
            payload=i,
        )
        for i in range(n)
    ]


class TestPopOrderEquivalence:
    @pytest.mark.parametrize("width", [0.3, 1.0, 7.5, 250.0])
    def test_bulk_push_then_drain(self, width):
        rng = random.Random(11)
        events = _random_events(rng, 400)
        heap = EventQueue()
        cal = CalendarEventQueue(bucket_width=width)
        for ev in events:
            heap.push(ev)
            cal.push(ev)
        out_heap = [heap.pop() for _ in range(len(events))]
        out_cal = [cal.pop() for _ in range(len(events))]
        assert out_heap == out_cal
        assert len(cal) == 0

    def test_interleaved_push_pop(self):
        """Random interleaving of pushes and pops, including pushes at or
        before the current head (same-timestamp batches)."""
        rng = random.Random(23)
        heap = EventQueue()
        cal = CalendarEventQueue(bucket_width=2.0)
        last = 0.0
        for step in range(600):
            if rng.random() < 0.6 or not len(heap):
                t = round(last + rng.uniform(0.0, 5.0), 1)
                ev = Event(t, rng.choice(list(EventKind)), payload=step)
                heap.push(ev)
                cal.push(ev)
            else:
                a, b = heap.pop(), cal.pop()
                assert a == b
                last = a.time
        while len(heap):
            assert heap.pop() == cal.pop()

    def test_push_many_matches_sequential(self):
        rng = random.Random(5)
        events = _random_events(rng, 100)
        bulk = CalendarEventQueue(bucket_width=1.0)
        seq = CalendarEventQueue(bucket_width=1.0)
        bulk.push_many(events)
        for ev in events:
            seq.push(ev)
        assert [bulk.pop() for _ in range(100)] == [
            seq.pop() for _ in range(100)
        ]


class TestCompactionAndSnapshots:
    def test_compact_equivalence(self):
        """Compacting mid-stream never changes the surviving pop order."""
        dead = set()
        stale = lambda ev: ev.payload in dead
        rng = random.Random(31)
        events = _random_events(rng, 200)
        heap = EventQueue(stale)
        cal = CalendarEventQueue(stale, bucket_width=3.0)
        for ev in events:
            heap.push(ev)
            cal.push(ev)
        dead.update(rng.sample(range(200), 80))
        assert heap.compact() == 80
        assert cal.compact() == 80
        assert len(heap) == len(cal) == 120
        while len(heap):
            assert heap.pop() == cal.pop()

    def test_dump_load_round_trip(self):
        rng = random.Random(43)
        events = _random_events(rng, 60)
        cal = CalendarEventQueue(bucket_width=0.7)
        for ev in events:
            cal.push(ev)
        dumped = cal.dump()
        assert dumped == sorted(dumped)
        clone = CalendarEventQueue(bucket_width=0.7)
        clone.load(dumped, cal.next_seq, cal.stale_hint)
        # Post-restore pushes must get the continuing sequence numbers.
        tie = Event(dumped[0][0], dumped[0][3].kind, payload="late")
        cal.push(tie)
        clone.push(tie)
        while len(cal):
            assert cal.pop() == clone.pop()

    def test_nan_and_bad_width_rejected(self):
        with pytest.raises(SimulationError):
            CalendarEventQueue(bucket_width=0.0)
        cal = CalendarEventQueue(bucket_width=1.0)
        with pytest.raises(SimulationError):
            cal.push(Event(float("nan"), EventKind.TIMER, "x"))


class TestSelectionHeuristic:
    def test_modes(self):
        assert isinstance(make_event_queue("heap"), EventQueue)
        assert isinstance(make_event_queue("calendar"), CalendarEventQueue)
        with pytest.raises(SimulationError):
            make_event_queue("btree")

    def test_auto_prefers_heap_at_paper_scale(self):
        """Figure-1 density (~12 events/unit) stays on the binary heap."""
        q = make_event_queue("auto", horizon=333.3, expected_events=4033)
        assert type(q) is EventQueue

    def test_auto_picks_calendar_when_dense(self):
        n = CALENDAR_MIN_EVENTS
        horizon = n / (2 * CALENDAR_DENSITY_THRESHOLD)
        q = make_event_queue("auto", horizon=horizon, expected_events=n)
        assert isinstance(q, CalendarEventQueue)

    def test_auto_needs_enough_events(self):
        q = make_event_queue(
            "auto", horizon=1.0, expected_events=CALENDAR_MIN_EVENTS - 1
        )
        assert type(q) is EventQueue


class TestEngineEquivalence:
    """End-to-end: a full simulation is bit-identical under either layout."""

    @pytest.mark.parametrize("make_sched", [
        EDFScheduler,
        lambda: VDoverScheduler(k=7.0),
    ])
    def test_run_bit_identical(self, make_sched):
        h = 40.0
        jobs = PoissonWorkload(lam=4.0, horizon=h).generate(13)

        def run(mode):
            cap = TwoStateMarkovCapacity(
                1.0, 20.0, mean_sojourn=h / 4, rng=9
            )
            return simulate(jobs, cap, make_sched(), event_queue=mode)

        base = run("heap")
        alt = run("calendar")
        assert alt.value == base.value
        assert alt.trace.segments == base.trace.segments
        assert alt.trace.outcomes == base.trace.outcomes
