"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the package with a single ``except`` clause
while still being able to discriminate by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` package."""


class CapacityError(ReproError):
    """Raised for invalid capacity functions or out-of-domain queries.

    Examples: a capacity model whose lower bound is non-positive, a piecewise
    model with unsorted breakpoints, or an ``integrate`` query with a
    reversed interval.
    """


class InvalidInstanceError(ReproError):
    """Raised when a problem instance (job set and/or capacity) is malformed.

    Examples: a job with negative workload, a deadline earlier than the
    release time, or a non-positive value.
    """


class SchedulingError(ReproError):
    """Raised when a scheduler is driven outside its contract.

    Examples: scheduling a job that was never released, resuming a completed
    job, or an interrupt handler returning a job unknown to the engine.
    """


class EstimateError(SchedulingError):
    """Raised when a scheduler's capacity estimate is unusable and no
    graceful fallback exists.

    The degradation ladder (docs/ROBUSTNESS.md) is: clamp out-of-band
    readings into the declared band, fall back to the last-known-good
    reading on dropout, fall back to the conservative bound ``c̲`` when
    there is no last-known-good value.  Only when even the declared bounds
    are garbage (non-finite, non-positive) does the scheduler raise this
    instead of silently mis-scheduling.
    """


class FaultInjectionError(ReproError):
    """Base class for the capacity-sensing fault-injection layer
    (:mod:`repro.faults`)."""


class FaultConfigError(FaultInjectionError):
    """Raised for an invalid fault-model configuration (negative noise
    width, non-positive dropout durations, a bias factor that would
    produce a non-positive declared bound, ...)."""


class CapacityReadError(FaultInjectionError):
    """Raised by a faulty capacity *sensor* when the reading is unavailable
    (a dropout interval).  Carries the query time and, when known, the
    instant at which the sensor recovers so callers can re-arm."""

    def __init__(self, t: float, resumes_at: float | None = None) -> None:
        self.t = float(t)
        self.resumes_at = None if resumes_at is None else float(resumes_at)
        suffix = "" if resumes_at is None else f" (sensor recovers at {resumes_at:g})"
        super().__init__(f"capacity reading unavailable at t={t:g}{suffix}")


class SimulationError(ReproError):
    """Raised when the discrete-event engine detects an internal
    inconsistency (events out of order, negative remaining workload beyond
    tolerance, a trace that fails validation, ...)."""


class RecoveryError(SimulationError):
    """Raised when engine snapshot/restore or journal replay cannot
    proceed: restoring a snapshot onto a mismatched scheduler or job set, a
    journal whose replayed events diverge from the live run, or a scheduler
    that does not implement state capture."""


class InvariantViolationError(SimulationError):
    """Raised by the invariant watchdog in *paranoid* mode when a runtime
    monitor detects a violation of one of the paper's correctness
    conditions (:mod:`repro.sim.invariants`).  In the default counting mode
    violations are recorded, not raised."""


class SimulatedCrash(FaultInjectionError):
    """Raised by :class:`repro.faults.EngineCrashPlan` when its scheduled
    crash point is reached.  Deliberately *not* a :class:`SimulationError`:
    it models the simulation *process* dying, and carries the engine's last
    snapshot so the run can be resumed.

    Attributes:
        time: simulation time at which the crash fired.
        at_event: dispatch index at which the crash fired (event-indexed
            plans), else ``None``.
        fault_index: index of the crash plan within the engine's fault list.
        snapshot: the :class:`repro.sim.journal.EngineSnapshot` taken at the
            instant of the crash (``None`` if snapshotting was disabled).
    """

    def __init__(
        self,
        time: float,
        at_event: "int | None" = None,
        fault_index: int = 0,
        snapshot: object = None,
    ) -> None:
        self.time = float(time)
        self.at_event = at_event
        self.fault_index = int(fault_index)
        self.snapshot = snapshot
        where = f"t={time:g}" if at_event is None else f"event #{at_event}"
        super().__init__(f"simulated engine crash at {where}")


class ObservabilityError(ReproError):
    """Raised by the observability layer (:mod:`repro.obs`) for misuse of
    the trace/metrics subsystem: disabling a session that is not enabled,
    registering one metric name under two instrument types, an invalid
    trace-ring size, or a malformed trace file handed to the loaders.

    Never raised from the instrumented hot path: emission sites only guard
    on ``obs is not None`` and cannot fail."""


class AnalysisError(ReproError):
    """Raised for invalid analysis queries (e.g. the competitive-ratio
    formula of Theorem 3 evaluated at ``delta <= 1``, where ``f(k, delta)``
    is undefined)."""


class ExperimentError(ReproError):
    """Raised by the experiment harness layer (Monte-Carlo runner, sweeps)
    for harness-level failures: invalid run configuration, or — via
    :meth:`repro.experiments.runner.MonteCarloReport.raise_on_failure` —
    replications that failed after exhausting their retry budget."""


class ReplicationTimeout(ExperimentError):
    """A single Monte-Carlo replication exceeded its wall-clock budget.

    Classified as *transient* by the runner: the replication is retried
    (with backoff) up to the configured retry budget before being recorded
    as a :class:`~repro.experiments.runner.FailedReplication`."""


class CheckpointError(ExperimentError):
    """Raised for unusable Monte-Carlo checkpoints: a fingerprint that does
    not match the requested run (different seed, run count, schedulers or
    instance distribution), an unsupported schema, or a corrupt header."""


class ServiceError(ReproError):
    """Base class for the always-on scheduling service layer
    (:mod:`repro.service`): ingress, tenant shards, supervision."""


class DrainingError(ServiceError):
    """The service is draining (SIGTERM received): new submissions are
    refused with a ``draining`` ack while in-flight state is flushed to
    the durable store.  Clients should resubmit (same ``request_id``)
    against the restarted service."""


class StorageError(ReproError):
    """Base class for the durable state store (:mod:`repro.store`):
    unrecoverable layout problems — an unreadable first segment header,
    a spec file that disagrees with the running spec, misuse of a
    closed store."""


class StorageFault(StorageError):
    """An *injected* storage failure from
    :class:`repro.store.faults.FaultyDirectory` — a torn write cut short
    at a chosen byte offset.  Models the process dying mid-``write()``;
    property tests catch it, simulate the power loss, and assert
    recovery.  Carries the fault ``kind`` and the global byte ``offset``
    at which it fired."""

    def __init__(self, kind: str, offset: int) -> None:
        self.kind = str(kind)
        self.offset = int(offset)
        super().__init__(f"injected storage fault {kind!r} at byte {offset}")


class MessageError(ServiceError):
    """An ingress message failed validation: unparseable JSON, unknown
    message type, unknown tenant, or malformed fields.  The message is
    rejected and counted; the service keeps running."""


class CircuitOpenError(ServiceError):
    """A tenant shard's circuit breaker is open: repeated recovery
    failures exhausted the restart policy, so the supervisor stopped
    restarting the shard.  New work for the tenant is shed instead of
    processed."""
