"""SnapshotStore: manifest atomicity, partial invisibility, quarantine."""

from __future__ import annotations

import json

import pytest

from repro.errors import StorageError
from repro.store.directory import MemoryDirectory, OsDirectory
from repro.store.snapshots import MANIFEST, SnapshotStore


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        store = SnapshotStore(OsDirectory(tmp_path))
        seq = store.write(b"payload-0", {"op_seq": 7})
        assert seq == 0
        loaded = SnapshotStore(OsDirectory(tmp_path)).load()
        assert loaded is not None
        got_seq, meta, payload = loaded
        assert (got_seq, payload) == (0, b"payload-0")
        assert meta["op_seq"] == 7

    def test_newest_wins(self, tmp_path):
        store = SnapshotStore(OsDirectory(tmp_path))
        store.write(b"old")
        store.write(b"new")
        _seq, _meta, payload = store.load()
        assert payload == b"new"

    def test_empty_store_loads_none(self, tmp_path):
        assert SnapshotStore(OsDirectory(tmp_path)).load() is None

    def test_prune_keeps_window(self, tmp_path):
        store = SnapshotStore(OsDirectory(tmp_path), keep=2)
        for i in range(5):
            store.write(b"p%d" % i)
        snaps = [p.name for p in tmp_path.iterdir() if p.suffix == ".bin"]
        assert sorted(snaps) == [
            "snap-000000000003.bin",
            "snap-000000000004.bin",
        ]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(StorageError, match="keep"):
            SnapshotStore(OsDirectory(tmp_path), keep=0)

    def test_seq_continues_after_reopen(self, tmp_path):
        SnapshotStore(OsDirectory(tmp_path)).write(b"a")
        store = SnapshotStore(OsDirectory(tmp_path))
        assert store.write(b"b") == 1


class TestPartialInvisible:
    def test_crash_before_manifest_keeps_old_state(self):
        # A complete-but-unreferenced snapshot file must stay invisible
        # behind the old manifest (write protocol step 1 without step 2)
        # ... unless the old manifest is gone entirely, in which case the
        # newest *self-validating* file is the best truth available.
        mem = MemoryDirectory()
        store = SnapshotStore(mem, fsync=True)
        store.write(b"committed")

        class _Boom(RuntimeError):
            pass

        # Fail the write after the snapshot file lands but before the
        # manifest is replaced.
        original = store._write_atomic

        def explode(name, data):
            if name == MANIFEST:
                raise _Boom()
            original(name, data)

        store._write_atomic = explode
        with pytest.raises(_Boom):
            store.write(b"uncommitted")
        mem.crash()  # power loss right there

        loaded = SnapshotStore(mem).load()
        assert loaded is not None
        assert loaded[2] == b"committed"  # reader still sees the old state

    def test_tmp_leftovers_removed_on_open(self, tmp_path):
        store = SnapshotStore(OsDirectory(tmp_path))
        store.write(b"good")
        (tmp_path / "snap-000000000009.bin.tmp").write_bytes(b"dead")
        reopened = SnapshotStore(OsDirectory(tmp_path))
        assert not (tmp_path / "snap-000000000009.bin.tmp").exists()
        assert reopened.load()[2] == b"good"


class TestQuarantine:
    def test_rotten_snapshot_falls_back(self, tmp_path):
        store = SnapshotStore(OsDirectory(tmp_path), keep=3)
        store.write(b"older")
        store.write(b"newer")
        name = "snap-000000000001.bin"
        data = bytearray((tmp_path / name).read_bytes())
        data[-1] ^= 0x01  # rot in the payload block
        (tmp_path / name).write_bytes(bytes(data))

        reopened = SnapshotStore(OsDirectory(tmp_path), keep=3)
        loaded = reopened.load()
        assert loaded is not None
        assert loaded[2] == b"older"
        # The damaged artifacts were set aside, not deleted.
        assert name in reopened.quarantined
        assert (tmp_path / (name + ".quarantine")).exists()

    def test_rotten_manifest_falls_back_to_newest_file(self, tmp_path):
        store = SnapshotStore(OsDirectory(tmp_path))
        store.write(b"state")
        (tmp_path / MANIFEST).write_bytes(b"{garbage")
        reopened = SnapshotStore(OsDirectory(tmp_path))
        assert reopened.load()[2] == b"state"
        assert MANIFEST in reopened.quarantined

    def test_manifest_crc_mismatch_detected(self, tmp_path):
        store = SnapshotStore(OsDirectory(tmp_path))
        store.write(b"state")
        doc = json.loads((tmp_path / MANIFEST).read_text())
        doc["seq"] = 99  # tampered field, stale crc
        (tmp_path / MANIFEST).write_text(json.dumps(doc))
        reopened = SnapshotStore(OsDirectory(tmp_path))
        assert reopened.load()[2] == b"state"  # via the file fallback
        assert MANIFEST in reopened.quarantined

    def test_everything_rotten_loads_none(self, tmp_path):
        store = SnapshotStore(OsDirectory(tmp_path), keep=1)
        store.write(b"only")
        name = "snap-000000000000.bin"
        (tmp_path / name).write_bytes(b"\x00" * 10)
        reopened = SnapshotStore(OsDirectory(tmp_path), keep=1)
        assert reopened.load() is None
        assert name in reopened.quarantined
