"""Multiprocessor engine benchmarks: indexed vs naive capacity math.

Not a paper artifact — the multiprocessor engine shares the single-
processor scheduling kernel (docs/ARCHITECTURE.md), so this file checks
that the prefix-sum capacity fast path actually engages per processor
and regenerates ``benchmarks/results/multi_engine_perf.txt``:

* ``simulate_multi`` on an m=4 heterogeneous fleet with indexed
  trajectories vs the same fleet wrapped in :class:`_NaiveCapacity`
  (which forces the kernel onto the pre-index linear-scan reference,
  ``naive_integrate`` / ``naive_advance``) — same values, measured
  speedup;
* the m=1 façade comparison: ``simulate`` vs ``simulate_multi`` with a
  single processor, quantifying the adapter overhead of running a
  single-processor policy through the multiprocessor façade.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.capacity import TwoStateMarkovCapacity, naive_advance, naive_integrate
from repro.core import VDoverScheduler
from repro.multi import (
    GlobalEDFScheduler,
    GlobalVDoverScheduler,
    SingleProcessorAdapter,
    simulate_multi,
)
from repro.sim import simulate
from repro.workload import PoissonWorkload

from conftest import expected_jobs


class _NaiveCapacity:
    """Force the kernel's non-indexed path on a wrapped trajectory.

    ``supports_prefix_index`` is False, so the kernel computes segment
    work with ``integrate(seg_start, t)`` and completion instants with
    ``advance(t, w)`` — both routed here to the linear piece-scan
    reference implementations.  Everything else (``value``, ``lower``,
    ``upper``, trace validation hooks) delegates to the real trajectory,
    so the simulated world is physically identical.
    """

    supports_prefix_index = False

    def __init__(self, inner) -> None:
        self._inner = inner

    def integrate(self, t0: float, t1: float) -> float:
        return naive_integrate(self._inner, t0, t1)

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        return naive_advance(self._inner, t0, work, horizon)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _fleet(m: int, horizon: float, *, seed: int = 101):
    """Heterogeneous m-server fleet (bands interpolate 1→2 / 20→35)."""
    caps = []
    for p in range(m):
        frac = p / (m - 1) if m > 1 else 0.0
        caps.append(
            TwoStateMarkovCapacity(
                1.0 + frac,
                20.0 + 15.0 * frac,
                mean_sojourn=horizon / 4.0,
                rng=np.random.default_rng(seed + p),
            )
        )
    return caps


@pytest.fixture(scope="module")
def multi_instance():
    lam = 20.0
    horizon = expected_jobs(600.0) / lam
    jobs = PoissonWorkload(
        lam=lam, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    ).generate(11)
    return jobs, horizon


def _timed(fn, repeat: int = 3):
    best, out = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, (time.perf_counter() - t0) * 1e3)
    return out, best


def test_perf_multi_gedf_indexed(multi_instance, benchmark):
    """Global-EDF over the m=4 fleet, prefix-sum fast path."""
    jobs, horizon = multi_instance

    def run():
        return simulate_multi(
            jobs, _fleet(4, horizon), GlobalEDFScheduler()
        ).value

    benchmark(run)


def test_perf_multi_gvdover_indexed(multi_instance, benchmark):
    """Global-V-Dover over the m=4 fleet, prefix-sum fast path."""
    jobs, horizon = multi_instance

    def run():
        return simulate_multi(
            jobs, _fleet(4, horizon), GlobalVDoverScheduler(k=7.0)
        ).value

    benchmark(run)


@pytest.mark.perf_smoke
def test_perf_multi_artifact(multi_instance, archive):
    """Regenerate ``results/multi_engine_perf.txt``: indexed vs naive
    capacity math through the shared kernel on an m=4 fleet, plus the
    m=1 façade-overhead comparison.  Values must agree between the two
    capacity paths (the naive wrapper only changes *how* work integrals
    are computed, never the physics)."""
    jobs, horizon = multi_instance
    m = 4

    rows = []
    for name, make in (
        ("Global-EDF", lambda: GlobalEDFScheduler()),
        ("Global-V-Dover", lambda: GlobalVDoverScheduler(k=7.0)),
    ):
        fast_res, t_fast = _timed(
            lambda make=make: simulate_multi(jobs, _fleet(m, horizon), make())
        )
        naive_res, t_naive = _timed(
            lambda make=make: simulate_multi(
                jobs,
                [_NaiveCapacity(c) for c in _fleet(m, horizon)],
                make(),
            ),
            repeat=1,
        )
        assert naive_res.value == pytest.approx(fast_res.value, rel=1e-9)
        assert naive_res.completed_ids == fast_res.completed_ids
        rows.append(
            (
                name,
                t_naive,
                t_fast,
                fast_res.value,
                naive_res.value == fast_res.value,
            )
        )

    # m=1 façade comparison: the *same* policy through both engines
    # (V-Dover direct vs V-Dover behind the SingleProcessorAdapter, the
    # configuration tests/multi/test_kernel_parity.py proves bit-identical).
    single_res, t_single = _timed(
        lambda: simulate(
            jobs,
            TwoStateMarkovCapacity(
                1.0, 20.0, mean_sojourn=horizon / 4.0,
                rng=np.random.default_rng(101),
            ),
            VDoverScheduler(k=7.0),
        )
    )
    multi_res, t_multi = _timed(
        lambda: simulate_multi(
            jobs, _fleet(1, horizon), SingleProcessorAdapter(VDoverScheduler(k=7.0))
        )
    )
    assert multi_res.value == single_res.value

    lines = [
        "Multiprocessor engine: shared-kernel capacity fast path",
        "=" * 62,
        f"fleet: m={m} heterogeneous TwoStateMarkov servers (floors 1..2, "
        "peaks 20..35),",
        f"lam=20 Poisson arrivals over horizon {horizon:g} "
        f"({len(jobs)} jobs); naive column wraps every trajectory in",
        "_NaiveCapacity (pre-index linear piece-scan reference).",
        "",
        f"{'policy':24s} {'naive':>10s} {'indexed':>10s} {'speedup':>8s} {'values':>10s}",
    ]
    for name, t_naive, t_fast, value, bitwise in rows:
        lines.append(
            f"{name:24s} {t_naive:9.2f}ms {t_fast:9.2f}ms "
            f"{t_naive / t_fast:7.1f}x "
            f"{'identical' if bitwise else 'approx'}"
        )
    lines += [
        "",
        "m=1 facade overhead (same kernel, same policy, two engines):",
        f"{'simulate (V-Dover)':38s} {t_single:9.2f}ms  value={single_res.value!r}",
        f"{'simulate_multi m=1 (adapted V-Dover)':38s} {t_multi:9.2f}ms  "
        f"value={multi_res.value!r}",
        "(tests/multi/test_kernel_parity.py proves the m=1 engines",
        " bit-identical event for event; this row just prices the facade)",
        "",
        "Acceptance: indexed and naive capacity math agree on every",
        "policy's total value; the indexed path is the default for all",
        "supports_prefix_index trajectories on every processor.",
    ]
    archive("multi_engine_perf", "\n".join(lines))
    for name, t_naive, t_fast, _value, _bitwise in rows:
        assert t_fast <= t_naive, f"{name}: indexed slower than naive scan"
