"""Ingress adapters: JSON lines in, acks out.

The service's wire surface is deliberately thin: one JSON object per
line (:mod:`repro.service.messages`), answered by one JSON ack per line
— ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``.  Two
adapters feed the same :meth:`ServiceIngress.handle_line` path:

* :meth:`serve_tcp` — an asyncio TCP server (one connection per client,
  lines processed in arrival order per connection);
* :meth:`run_lines` — an in-process driver for an iterable of lines
  (the stdin adapter and the soak harness both use it: stdin is just
  ``run_lines(sys.stdin)`` via a thread executor).

Malformed lines never kill the service: they produce an error ack and a
``service.rejected`` count.  While the service drains (SIGTERM),
submits and fault injections ack ``{"ok": false, "draining": true}`` —
clients hold the line and resubmit it (same ``request_id``) to the
restarted service.
"""

from __future__ import annotations

import asyncio
import json
import sys
from dataclasses import replace as _replace
from typing import AsyncIterator, Dict, Iterable, List, Optional

from repro import obs as _obs
from repro.errors import CircuitOpenError, DrainingError, MessageError
from repro.service.messages import InjectFault, Submit, parse_message
from repro.service.shard import TenantReport
from repro.service.supervisor import ScheduleService

__all__ = ["ServiceIngress"]


class ServiceIngress:
    """Validate, route and ack JSON-line traffic for a running service.

    With ``verify_on_close`` every ``close`` ack embeds the replay-parity
    verdict (:func:`repro.service.replay.replay_tenant`): ``parity`` is
    true iff the closed-horizon replay reproduced the tenant's journal
    and result bit-identically — the kill -9 soak's acceptance gate."""

    def __init__(
        self, service: ScheduleService, *, verify_on_close: bool = False
    ) -> None:
        self.service = service
        self.verify_on_close = bool(verify_on_close)
        self.accepted_lines = 0
        self.rejected_lines = 0
        self._server: "asyncio.AbstractServer | None" = None
        # Request-id minting: submits/faults arriving without a client
        # request_id get an ingress-scoped one (``ing-N``) so every
        # decision is correlatable (`repro obs trace`).  The prefix keeps
        # minted ids out of any client id namespace.
        self._minted = 0

    # ------------------------------------------------------------------
    async def handle_line(self, line: "str | bytes") -> Dict:
        """Process one wire line; always returns an ack dict."""
        if isinstance(line, bytes):
            line = line.decode("utf-8", errors="replace")
        line = line.strip()
        if not line:
            return {"ok": True, "noop": True}
        try:
            message = parse_message(line)
            if isinstance(message, (Submit, InjectFault)):
                if message.rid is None:
                    self._minted += 1
                    message = _replace(message, rid=f"ing-{self._minted}")
                octx = _obs.current()
                if octx is not None:
                    when = (
                        message.job.release
                        if isinstance(message, Submit)
                        else message.time
                    )
                    octx.emit(
                        "service.ingress",
                        when,
                        {
                            "rid": message.rid,
                            "tenant": message.tenant,
                            "type": (
                                "submit"
                                if isinstance(message, Submit)
                                else "fault"
                            ),
                        },
                        replay=False,
                    )
            result = await self.service.dispatch(message)
        except DrainingError as exc:
            self.rejected_lines += 1
            return {"ok": False, "error": str(exc), "draining": True}
        except (MessageError, CircuitOpenError) as exc:
            self.rejected_lines += 1
            octx = _obs.current()
            if octx is not None:
                octx.metrics.counter("service.rejected").inc()
            return {"ok": False, "error": str(exc)}
        self.accepted_lines += 1
        ack: Dict = {"ok": True}
        if isinstance(message, (Submit, InjectFault)):
            # Echo the (possibly minted) correlation id — the handle a
            # client passes to `repro obs trace <request_id>`.
            ack["request_id"] = message.rid
        if isinstance(result, TenantReport):  # a Close returns the report
            ack["closed"] = result.tenant
            ack["accepted"] = len(result.accepted)
            ack["shed"] = len(result.shed)
            ack["submitted"] = result.submitted
            ack["recoveries"] = result.recoveries
            if self.verify_on_close:
                ack.update(self._verify(result))
        elif isinstance(result, dict):  # stats / duplicate notices
            ack.update(result)
        return ack

    @staticmethod
    def _verify(report: TenantReport) -> Dict:
        from repro.service.replay import replay_tenant

        check = replay_tenant(report)
        return {
            "parity": bool(check.ok),
            "parity_failures": list(check.failures),
            "lost": sorted(report.lost_jids),
        }

    async def run_lines(
        self, lines: "Iterable[str] | AsyncIterator[str]"
    ) -> List[Dict]:
        """Drive the service from an iterable of wire lines, in order.

        Accepts both sync iterables (lists, files) and async iterators;
        returns the acks."""
        acks: List[Dict] = []
        if hasattr(lines, "__aiter__"):
            async for line in lines:  # type: ignore[union-attr]
                acks.append(await self.handle_line(line))
        else:
            for line in lines:
                acks.append(await self.handle_line(line))
        return acks

    # ------------------------------------------------------------------
    # TCP adapter
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                ack = await self.handle_line(line)
                writer.write((json.dumps(ack) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Start the JSON-line TCP listener (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server

    async def stop_tcp(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # stdin adapter
    # ------------------------------------------------------------------
    async def run_stdin(self, stream: Optional[object] = None) -> List[Dict]:
        """Drive the service from ``stdin`` (or any file-like ``stream``),
        reading lines in a thread so the event loop stays responsive."""
        stream = stream if stream is not None else sys.stdin
        loop = asyncio.get_running_loop()
        acks: List[Dict] = []
        while True:
            line = await loop.run_in_executor(None, stream.readline)
            if not line:
                break
            acks.append(await self.handle_line(line))
        return acks
