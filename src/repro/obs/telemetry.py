"""Live service telemetry: per-tenant SLO trackers and exposition.

The closed-horizon obs layer (:mod:`repro.obs.core`) answers *what
happened in one run*; this module answers the paper's rate questions
**live**, for an always-on service — deadline-miss rate, shed rate by
reason, admission queue depth, attained-value-per-unit-capacity —
without touching the deterministic replay domain.

Three pieces, all pure data / pure functions (the service wiring lives
in :mod:`repro.service`):

* :class:`WindowRing` — a fixed-size windowed time series over *virtual*
  time: observations land in ``width``-wide buckets, only the newest
  ``slots`` buckets are retained, and two rings over the same geometry
  merge **exactly** (same JSON snapshot whether observations were
  counted in one process or across a crash-resume boundary).
* :class:`SloTracker` — one tenant's SLO state: monotone decision
  counters, the window ring, a queue-depth gauge and a wall-clock fsync
  latency histogram.  ``snapshot()``/``restore()`` round-trip through
  JSON so the tracker rides the TenantStore snapshot payload and
  survives ``kill -9``; :func:`slo_parity_view` strips the fields that
  *legitimately* differ across a restart (recovery/cold-start counts,
  wall-clock latencies) so drain-vs-cold-start audits compare the rest
  for equality.
* Exposition renderers — :func:`render_prometheus` (text format 0.0.4)
  over a fleet scrape, :func:`lint_prometheus` (a strict format checker
  CI runs against live scrapes), and :func:`render_top` (the
  ``repro top`` dashboard screen).

Nothing here is in the bit-identity fingerprint domain: SLO state is
service-plane accounting, never written into replay events, and the
Figure-1 pins are unchanged with telemetry on or off.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError

__all__ = [
    "WindowRing",
    "SloTracker",
    "slo_parity_view",
    "render_prometheus",
    "lint_prometheus",
    "render_top",
    "HEALTH_STATES",
]

#: Tenant health ladder (ordered best → worst; see
#: :meth:`repro.service.supervisor.TenantSupervisor.health_state`).
HEALTH_STATES = ("ok", "degraded", "restarting", "circuit_open")


class WindowRing:
    """Fixed-size, exact-merge windowed counters over virtual time.

    Observations at virtual time ``t`` land in bucket ``floor(t /
    width)``; only the newest ``slots`` buckets are kept (older ones are
    pruned and counted in :attr:`dropped_buckets`).  Virtual time means
    the structure is deterministic: the same decision stream produces
    the same ring, whichever process (or incarnation) counted it.
    """

    __slots__ = ("width", "slots", "dropped_buckets", "_buckets")

    def __init__(self, width: float, slots: int = 16) -> None:
        if not width > 0.0:
            raise ObservabilityError(f"ring width must be > 0, got {width!r}")
        if slots < 1:
            raise ObservabilityError(f"ring slots must be >= 1, got {slots!r}")
        self.width = float(width)
        self.slots = int(slots)
        self.dropped_buckets = 0
        self._buckets: Dict[int, Dict[str, float]] = {}

    def observe(self, t: float, name: str, value: float = 1.0) -> None:
        index = int(math.floor(float(t) / self.width))
        bucket = self._buckets.get(index)
        if bucket is None:
            bucket = self._buckets[index] = {}
            self._prune()
        bucket[name] = bucket.get(name, 0.0) + float(value)

    def _prune(self) -> None:
        while len(self._buckets) > self.slots:
            oldest = min(self._buckets)
            del self._buckets[oldest]
            self.dropped_buckets += 1

    # -- queries ---------------------------------------------------------
    def buckets(self) -> List[Tuple[int, Dict[str, float]]]:
        """Retained buckets, oldest first, as ``(index, {name: value})``."""
        return [(i, dict(self._buckets[i])) for i in sorted(self._buckets)]

    def total(self, name: str) -> float:
        """Sum of ``name`` over the retained window."""
        return sum(b.get(name, 0.0) for b in self._buckets.values())

    def rate(self, hits: str, denominator: str) -> float:
        """Windowed ratio ``hits / denominator`` (0 when empty)."""
        denom = self.total(denominator)
        return self.total(hits) / denom if denom > 0.0 else 0.0

    # -- snapshot / restore / merge (exact) ------------------------------
    def snapshot(self) -> Dict[str, Any]:
        return {
            "width": self.width,
            "slots": self.slots,
            "dropped_buckets": self.dropped_buckets,
            "buckets": [
                [i, {k: self._buckets[i][k] for k in sorted(self._buckets[i])}]
                for i in sorted(self._buckets)
            ],
        }

    @classmethod
    def restore(cls, doc: Mapping[str, Any]) -> "WindowRing":
        ring = cls(float(doc["width"]), int(doc["slots"]))
        ring.dropped_buckets = int(doc.get("dropped_buckets", 0))
        for index, values in doc.get("buckets", ()):
            ring._buckets[int(index)] = {
                str(k): float(v) for k, v in values.items()
            }
        ring._prune()
        return ring

    def merge(self, other: "WindowRing") -> None:
        """Fold ``other`` in exactly (same geometry required): bucket
        values add, then the union is pruned to the newest ``slots``.

        Exactness covers the *retained buckets*: a stream counted whole
        and the same stream counted in two halves then merged agree on
        every retained bucket.  ``dropped_buckets`` is diagnostic only —
        a bucket pruned in both halves is counted twice (the halves
        cannot know they overlapped)."""
        if (self.width, self.slots) != (other.width, other.slots):
            raise ObservabilityError(
                "cannot merge rings with different geometry: "
                f"({self.width}, {self.slots}) vs "
                f"({other.width}, {other.slots})"
            )
        for index, values in other._buckets.items():
            bucket = self._buckets.setdefault(index, {})
            for name, value in values.items():
                bucket[name] = bucket.get(name, 0.0) + value
        self.dropped_buckets += other.dropped_buckets
        self._prune()


#: SLO counters that legitimately differ across a restart boundary —
#: a cold start *is* one more recovery — and are therefore excluded
#: from the drain/cold-start parity comparison.
_NON_PARITY_COUNTERS = ("recoveries", "cold_starts")


class SloTracker:
    """One tenant's service-level accounting, durable and mergeable.

    Decision-plane state only: the tracker counts what the *service*
    decided (submissions, admissions, sheds by reason, injected faults,
    crashes survived).  Kernel-derived SLO facts (completions, deadline
    misses, attained value) are **not** tracked incrementally — they are
    a pure function of the kernel trace and are computed on demand at
    scrape time (:meth:`repro.service.shard.TenantShard.slo_view`), so a
    snapshot restore can never double-count them.
    """

    SCHEMA = 1

    def __init__(self, tenant: str, horizon: float, slots: int = 16) -> None:
        self.tenant = tenant
        self.counters: Dict[str, float] = {}
        self.ring = WindowRing(max(float(horizon), 1e-9) / slots, slots)
        self.depth_last = 0
        self.depth_hwm = 0
        # Wall-clock fsync latency (seconds): op-log + WAL durability
        # points.  Excluded from parity — wall time is not replayable.
        self.fsync = {"count": 0, "sum": 0.0, "min": None, "max": None}

    # -- feeding ---------------------------------------------------------
    def count(self, name: str, n: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + n

    def observe(self, t: float, name: str, n: float = 1.0) -> None:
        """Count ``name`` and land it in the window ring at time ``t``."""
        self.count(name, n)
        self.ring.observe(t, name, n)

    def set_depth(self, depth: int) -> None:
        self.depth_last = int(depth)
        if depth > self.depth_hwm:
            self.depth_hwm = int(depth)

    def observe_fsync(self, seconds: float) -> None:
        h = self.fsync
        h["count"] += 1
        h["sum"] += float(seconds)
        h["min"] = seconds if h["min"] is None else min(h["min"], seconds)
        h["max"] = seconds if h["max"] is None else max(h["max"], seconds)

    # -- snapshot / restore / merge --------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe image (sorted keys; rides the TenantStore payload)."""
        return {
            "schema": self.SCHEMA,
            "tenant": self.tenant,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "ring": self.ring.snapshot(),
            "depth": {"last": self.depth_last, "hwm": self.depth_hwm},
            "fsync": dict(self.fsync),
        }

    @classmethod
    def restore(cls, doc: Mapping[str, Any]) -> "SloTracker":
        ring_doc = doc["ring"]
        tracker = cls.__new__(cls)
        tracker.tenant = str(doc.get("tenant", "?"))
        tracker.counters = {
            str(k): float(v) for k, v in (doc.get("counters") or {}).items()
        }
        tracker.ring = WindowRing.restore(ring_doc)
        depth = doc.get("depth") or {}
        tracker.depth_last = int(depth.get("last", 0))
        tracker.depth_hwm = int(depth.get("hwm", 0))
        fsync = doc.get("fsync") or {}
        tracker.fsync = {
            "count": int(fsync.get("count", 0)),
            "sum": float(fsync.get("sum", 0.0)),
            "min": fsync.get("min"),
            "max": fsync.get("max"),
        }
        return tracker

    def merge(self, other: "SloTracker") -> None:
        """Exact fold (streaming-aggregation style: counters add, rings
        merge bucket-wise, gauges keep the high-water mark, histograms
        pool)."""
        for name, value in other.counters.items():
            self.count(name, value)
        self.ring.merge(other.ring)
        self.depth_last = other.depth_last
        self.depth_hwm = max(self.depth_hwm, other.depth_hwm)
        o = other.fsync
        if o["count"]:
            h = self.fsync
            h["count"] += o["count"]
            h["sum"] += o["sum"]
            h["min"] = o["min"] if h["min"] is None else min(h["min"], o["min"])
            h["max"] = o["max"] if h["max"] is None else max(h["max"], o["max"])


def slo_parity_view(doc: Mapping[str, Any]) -> Dict[str, Any]:
    """The restart-invariant projection of an SLO snapshot.

    Drops wall-clock data (fsync latencies) and the counters that a cold
    start legitimately bumps (``recoveries``, ``cold_starts``); what is
    left must be *equal* across a drain → ``kill -9`` → cold-start
    boundary — the soak harness asserts exactly that.
    """
    counters = {
        k: v
        for k, v in (doc.get("counters") or {}).items()
        if k not in _NON_PARITY_COUNTERS
    }
    return {
        "counters": dict(sorted(counters.items())),
        "ring": doc.get("ring"),
        "depth": doc.get("depth"),
    }


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

#: ``metric_name{tenant="..."} value`` series derived from a tenant entry
#: (``entry["stats"]`` / ``entry["slo"]["live"]`` paths are resolved by
#: :func:`_tenant_samples`).
_EXPO_SPEC: Tuple[Tuple[str, str, str], ...] = (
    # name, type, help
    ("repro_submitted_total", "counter", "Jobs offered for admission."),
    ("repro_accepted_total", "counter", "Jobs admitted into the kernel."),
    ("repro_shed_total", "counter", "Jobs shed by admission control."),
    ("repro_recoveries_total", "counter",
     "Snapshot-restore recoveries (restarts and cold starts)."),
    ("repro_forced_crashes_total", "counter",
     "Ingress-forced kernel crashes survived."),
    ("repro_completions_total", "counter",
     "Jobs completed by their deadline."),
    ("repro_deadline_misses_total", "counter",
     "Accepted jobs that missed their deadline (failed or abandoned)."),
    ("repro_deadline_miss_rate", "gauge",
     "Misses / decided outcomes over the whole run so far."),
    ("repro_attained_value", "gauge", "Cumulative attained value."),
    ("repro_value_per_capacity", "gauge",
     "Attained value per unit of executed work."),
    ("repro_queue_depth", "gauge",
     "Live backlog: accepted jobs without a recorded outcome."),
    ("repro_queue_depth_hwm", "gauge", "High-water mark of the backlog."),
    ("repro_frontier_seconds", "gauge",
     "Virtual dispatch frontier of the tenant kernel."),
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: (?P<ts>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:\\.|[^"\\])*)"$'
)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value: Any) -> str:
    try:
        x = float(value)
    except (TypeError, ValueError):
        return "NaN"
    if math.isnan(x):
        return "NaN"
    if math.isinf(x):
        return "+Inf" if x > 0 else "-Inf"
    return repr(x)


def _tenant_samples(entry: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten one scrape entry into ``{metric_name: value}``."""
    stats = entry.get("stats") or {}
    slo = entry.get("slo") or {}
    live = slo.get("live") or {}
    counters = slo.get("counters") or {}
    depth = slo.get("depth") or {}
    return {
        "repro_submitted_total": stats.get("submitted", 0),
        "repro_accepted_total": stats.get("accepted", 0),
        "repro_shed_total": stats.get("shed", 0),
        "repro_recoveries_total": stats.get("recoveries", 0),
        "repro_forced_crashes_total": stats.get("forced_crashes", 0),
        "repro_completions_total": live.get("completions", 0),
        "repro_deadline_misses_total": live.get("deadline_misses", 0),
        "repro_deadline_miss_rate": live.get("miss_rate", 0.0),
        "repro_attained_value": live.get("attained_value", 0.0),
        "repro_value_per_capacity": live.get("value_per_capacity", 0.0),
        "repro_queue_depth": live.get(
            "depth", depth.get("last", counters.get("depth", 0))
        ),
        "repro_queue_depth_hwm": depth.get("hwm", 0),
        "repro_frontier_seconds": stats.get(
            "frontier", live.get("frontier", 0.0)
        ),
    }


def render_prometheus(fleet: Mapping[str, Mapping[str, Any]]) -> str:
    """Prometheus text format 0.0.4 for a fleet scrape.

    ``fleet`` maps tenant name → scrape entry (``{"health": ...,
    "stats": {...}, "slo": {...}}`` — the shape
    :meth:`repro.service.supervisor.ScheduleService.scrape` returns).
    One series per tenant per metric, plus one ``repro_tenant_health``
    series per (tenant, state) pair so a restarting tenant is visible
    as ``repro_tenant_health{tenant="t0",state="restarting"} 1``, never
    vanished.
    """
    lines: List[str] = []
    tenants = sorted(fleet)

    lines.append(
        "# HELP repro_tenant_health Tenant health state "
        "(1 for the active state, 0 otherwise)."
    )
    lines.append("# TYPE repro_tenant_health gauge")
    for tenant in tenants:
        health = str(fleet[tenant].get("health", "ok"))
        for state in HEALTH_STATES:
            lines.append(
                'repro_tenant_health{tenant="%s",state="%s"} %s'
                % (
                    _escape_label(tenant),
                    state,
                    "1" if state == health else "0",
                )
            )

    samples = {t: _tenant_samples(fleet[t]) for t in tenants}
    for name, mtype, help_text in _EXPO_SPEC:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {mtype}")
        for tenant in tenants:
            lines.append(
                '%s{tenant="%s"} %s'
                % (name, _escape_label(tenant), _fmt_value(samples[tenant][name]))
            )

    # Shed-by-reason breakdown (labelled counter, reasons from the ring).
    lines.append(
        "# HELP repro_shed_reason_total Jobs shed, by admission reason."
    )
    lines.append("# TYPE repro_shed_reason_total counter")
    for tenant in tenants:
        counters = (fleet[tenant].get("slo") or {}).get("counters") or {}
        for key in sorted(counters):
            if key.startswith("shed."):
                lines.append(
                    'repro_shed_reason_total{tenant="%s",reason="%s"} %s'
                    % (
                        _escape_label(tenant),
                        _escape_label(key[len("shed."):]),
                        _fmt_value(counters[key]),
                    )
                )

    # Journal/op-log fsync latency (wall clock; summary-style).
    lines.append(
        "# HELP repro_fsync_latency_seconds Wall-clock fsync latency of "
        "the durability points (op log + WAL)."
    )
    lines.append("# TYPE repro_fsync_latency_seconds summary")
    for tenant in tenants:
        fsync = (fleet[tenant].get("slo") or {}).get("fsync") or {}
        label = _escape_label(tenant)
        lines.append(
            'repro_fsync_latency_seconds_count{tenant="%s"} %s'
            % (label, _fmt_value(fsync.get("count", 0)))
        )
        lines.append(
            'repro_fsync_latency_seconds_sum{tenant="%s"} %s'
            % (label, _fmt_value(fsync.get("sum", 0.0)))
        )
    return "\n".join(lines) + "\n"


def lint_prometheus(text: str) -> List[str]:
    """Validate Prometheus text exposition; returns problems ([] = ok).

    Checks the format rules a real scraper enforces: metric/label name
    syntax, HELP/TYPE comment shape, known TYPE values, parseable sample
    values, counters named ``*_total`` (or summary/histogram parts), and
    no duplicate series.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    seen_series: set = set()
    valid_types = ("counter", "gauge", "histogram", "summary", "untyped")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: allowed
            if len(parts) < 3:
                problems.append(f"line {lineno}: truncated {parts[1]} comment")
                continue
            keyword, name = parts[1], parts[2]
            if not _NAME_RE.match(name):
                problems.append(
                    f"line {lineno}: invalid metric name {name!r} in {keyword}"
                )
                continue
            if keyword == "TYPE":
                if len(parts) < 4 or parts[3] not in valid_types:
                    problems.append(
                        f"line {lineno}: TYPE {name} must be one of "
                        f"{valid_types}"
                    )
                elif name in types:
                    problems.append(f"line {lineno}: duplicate TYPE for {name}")
                else:
                    types[name] = parts[3]
            continue

        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name = m.group("name")
        base = name
        for suffix in ("_count", "_sum", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        mtype = types.get(base)
        if mtype is None:
            problems.append(f"line {lineno}: sample {name} has no TYPE")
        elif mtype == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {lineno}: counter {name} should end in _total"
            )
        label_text = m.group("labels")
        label_key = ()
        if label_text:
            pairs = []
            for pair in label_text.split(","):
                pm = _LABEL_PAIR_RE.match(pair.strip())
                if pm is None:
                    problems.append(
                        f"line {lineno}: malformed label pair {pair!r}"
                    )
                    continue
                if not _LABEL_RE.match(pm.group("key")):
                    problems.append(
                        f"line {lineno}: invalid label name {pm.group('key')!r}"
                    )
                pairs.append((pm.group("key"), pm.group("val")))
            if len({k for k, _ in pairs}) != len(pairs):
                problems.append(f"line {lineno}: repeated label name")
            label_key = tuple(sorted(pairs))
        value = m.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                problems.append(
                    f"line {lineno}: non-numeric sample value {value!r}"
                )
        series = (name, label_key)
        if series in seen_series:
            problems.append(
                f"line {lineno}: duplicate series {name}{label_text or ''}"
            )
        seen_series.add(series)
    return problems


# ---------------------------------------------------------------------------
# `repro top` rendering
# ---------------------------------------------------------------------------

_TOP_COLUMNS = (
    ("TENANT", 8), ("HEALTH", 12), ("SUBM", 6), ("ACC", 6), ("SHED", 6),
    ("DEPTH", 6), ("HWM", 5), ("MISS%", 7), ("VALUE", 10), ("V/CAP", 7),
    ("RECOV", 6), ("FRONTIER", 9),
)


def render_top(
    fleet: Mapping[str, Mapping[str, Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """One ``repro top`` screen from a fleet scrape (pure; no wall clock
    unless the caller passes one in ``title``)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(f"{name:<{w}}" for name, w in _TOP_COLUMNS)
    lines.append(header)
    lines.append("-" * len(header))
    for tenant in sorted(fleet):
        entry = fleet[tenant]
        stats = entry.get("stats") or {}
        slo = entry.get("slo") or {}
        live = slo.get("live") or {}
        depth = slo.get("depth") or {}
        miss = 100.0 * float(live.get("miss_rate", 0.0))
        cells = (
            tenant,
            str(entry.get("health", "?")),
            str(stats.get("submitted", 0)),
            str(stats.get("accepted", 0)),
            str(stats.get("shed", 0)),
            str(live.get("depth", depth.get("last", 0))),
            str(depth.get("hwm", 0)),
            f"{miss:.1f}",
            f"{float(live.get('attained_value', 0.0)):.1f}",
            f"{float(live.get('value_per_capacity', 0.0)):.2f}",
            str(stats.get("recoveries", 0)),
            f"{float(stats.get('frontier', 0.0)):.2f}",
        )
        lines.append(
            "  ".join(
                f"{cell:<{w}}" for cell, (_, w) in zip(cells, _TOP_COLUMNS)
            )
        )
    totals = _fleet_totals(fleet)
    lines.append("-" * len(header))
    lines.append(
        "fleet: %d tenant(s)  submitted=%d accepted=%d shed=%d "
        "value=%.1f recoveries=%d"
        % (
            len(fleet),
            totals["submitted"],
            totals["accepted"],
            totals["shed"],
            totals["value"],
            totals["recoveries"],
        )
    )
    return "\n".join(lines)


def _fleet_totals(fleet: Mapping[str, Mapping[str, Any]]) -> Dict[str, Any]:
    out = {"submitted": 0, "accepted": 0, "shed": 0, "value": 0.0, "recoveries": 0}
    for entry in fleet.values():
        stats = entry.get("stats") or {}
        live = (entry.get("slo") or {}).get("live") or {}
        out["submitted"] += int(stats.get("submitted", 0))
        out["accepted"] += int(stats.get("accepted", 0))
        out["shed"] += int(stats.get("shed", 0))
        out["value"] += float(live.get("attained_value", 0.0))
        out["recoveries"] += int(stats.get("recoveries", 0))
    return out
