"""Cloud substrate: primary-job occupancy, secondary VMs, spot market,
servers and cluster dispatch — the motivating scenario of the paper."""

from repro.cloud.cluster import (
    BestFitDispatcher,
    ClusterResult,
    Dispatcher,
    LeastWorkDispatcher,
    RoundRobinDispatcher,
    run_cluster,
)
from repro.cloud.primary import PrimaryOccupancyModel
from repro.cloud.server import Server, ServerRun
from repro.cloud.spotmarket import SpotMarket, SpotPriceProcess
from repro.cloud.vm import VMRequest, requests_to_jobs

__all__ = [
    "BestFitDispatcher",
    "ClusterResult",
    "Dispatcher",
    "LeastWorkDispatcher",
    "RoundRobinDispatcher",
    "run_cluster",
    "PrimaryOccupancyModel",
    "Server",
    "ServerRun",
    "SpotMarket",
    "SpotPriceProcess",
    "VMRequest",
    "requests_to_jobs",
]
