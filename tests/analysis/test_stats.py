"""Unit tests for the Monte-Carlo statistics helpers."""

import numpy as np
import pytest

from repro.analysis import Summary, paired_gain_percent, summarize
from repro.errors import AnalysisError


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)
        assert s.ci_half_width == pytest.approx(1.96 / np.sqrt(3))

    def test_singleton(self):
        s = summarize([5.0])
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.ci_half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarize([])

    def test_ci_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            sample = rng.normal(10.0, 2.0, size=50)
            lo, hi = summarize(sample).ci
            hits += lo <= 10.0 <= hi
        assert hits >= 180  # ~95% coverage with slack

    def test_str(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestPairedGain:
    def test_known_gain(self):
        base = [10.0, 10.0, 10.0]
        treat = [11.0, 11.0, 11.0]
        g = paired_gain_percent(treat, base)
        assert g.mean == pytest.approx(10.0)

    def test_zero_gain(self):
        g = paired_gain_percent([5.0, 6.0], [5.0, 6.0])
        assert g.mean == pytest.approx(0.0)

    def test_pairing_tightens_ci(self):
        """Correlated noise cancels in the paired estimator."""
        rng = np.random.default_rng(1)
        noise = rng.normal(0.0, 5.0, size=100)
        base = 50.0 + noise
        treat = 55.0 + noise  # same per-instance noise
        g = paired_gain_percent(treat, base)
        assert g.mean == pytest.approx(10.0, abs=0.5)
        assert g.ci_half_width < 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            paired_gain_percent([1.0], [1.0, 2.0])

    def test_non_positive_baseline_rejected(self):
        with pytest.raises(AnalysisError):
            paired_gain_percent([1.0, 2.0], [0.0, 0.0])
