"""Batch scheduler protocol equivalence (docs/ARCHITECTURE.md).

The batch protocol (:mod:`repro.sim.batchproto`) replaces one-handler-call-
per-event dispatch with grouped ``plan()`` decisions over same-instant
interrupt batches.  The contract is *bit-identity*: for every policy, every
event-queue layout and every instrumentation combination, the batch path
must reproduce the scalar path's results, write-ahead journals and exported
observability traces byte for byte — including across a crash/restore
resume.  This suite pins that contract on a tie-heavy instance (integer
release grid: every timestamp carries a multi-event group, so the batch
path actually takes the grouped fast paths it is claiming equivalence for).

Also here:

* the :class:`~repro.sim.batchproto.ScalarAdapter` equivalence — any policy
  driven through the adapter behaves identically to the bare policy;
* cross-type snapshot hygiene — an adapter-wrapped policy's snapshot must
  not restore into the bare policy (and vice versa);
* the scan-count regression — bootstrap seeding, wind-down and the batch
  view's ready-set derivation are one vectorized pass each, not one per
  event.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.capacity import TwoStateMarkovCapacity
from repro.core import (
    AdmissionEDFScheduler,
    DoverScheduler,
    EDFScheduler,
    FCFSScheduler,
    GreedyDensityScheduler,
    LLFScheduler,
    VDoverScheduler,
)
from repro.errors import RecoveryError
from repro.faults.execution import EngineCrashPlan
from repro.sim import Job, simulate
from repro.sim.batchproto import BatchView, ScalarAdapter
from repro.sim.events import EventKind
from repro.sim.journal import EventJournal, results_bit_identical
from repro.sim.jobtable import JobTable

pytestmark = pytest.mark.batchproto_smoke

#: All seven single-processor policies, each behind a fresh-instance thunk.
POLICIES = {
    "edf": lambda: EDFScheduler(),
    "edf-ac": lambda: AdmissionEDFScheduler(),
    "llf": lambda: LLFScheduler(),
    "greedy": lambda: GreedyDensityScheduler(),
    "fcfs": lambda: FCFSScheduler(),
    "dover": lambda: DoverScheduler(k=7.0, c_hat=2.0),
    "vdover": lambda: VDoverScheduler(k=7.0),
}


def _tie_heavy_instance(seed=3, n=40):
    """Quantized release times (integer grid) force cross-job same-instant
    batches; relative deadline == p/c̲ puts every release at its zero-laxity
    instant, the paper's hardest workload shape."""
    rng = random.Random(seed)
    jobs = []
    for i in range(n):
        release = float(rng.randrange(0, 20))
        workload = rng.uniform(0.5, 3.0)
        jobs.append(
            Job(
                jid=i,
                release=release,
                workload=workload,
                deadline=release + workload,
                value=rng.uniform(1.0, 10.0) * workload,
            )
        )
    return jobs


def _capacity():
    return TwoStateMarkovCapacity(1.0, 4.0, mean_sojourn=5.0, rng=11)


def _run(make, *, protocol, event_queue="auto", crash=False, trace_path=None):
    """One traced+journaled run; returns (result, journal records, blob)."""
    jobs = _tie_heavy_instance()
    journal = EventJournal()
    kw = dict(journal=journal, event_queue=event_queue, protocol=protocol)
    if crash:
        kw.update(
            faults=[EngineCrashPlan(at_event=40)],
            snapshot_every=16,
            recover=True,
        )
    blob = None
    if trace_path is not None:
        with obs.session() as octx:
            result = simulate(jobs, _capacity(), make(), **kw)
            octx.sink.export_jsonl(trace_path, replay_only=True)
            blob = trace_path.read_bytes()
    else:
        result = simulate(jobs, _capacity(), make(), **kw)
    return result, journal.records, blob


class TestScalarBatchBitIdentity:
    """The headline contract: journals, obs exports and results invariant
    under protocol choice, for every policy and queue layout."""

    @pytest.mark.parametrize("name", sorted(POLICIES), ids=sorted(POLICIES))
    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_journal_and_trace_identical(self, tmp_path, name, queue):
        make = POLICIES[name]
        res_s, jrn_s, blob_s = _run(
            make,
            protocol="scalar",
            event_queue=queue,
            trace_path=tmp_path / "s.jsonl",
        )
        res_b, jrn_b, blob_b = _run(
            make,
            protocol="batch",
            event_queue=queue,
            trace_path=tmp_path / "b.jsonl",
        )
        assert results_bit_identical(res_s, res_b)
        assert jrn_s == jrn_b and len(jrn_s) > 0
        assert blob_s == blob_b and len(blob_s) > 0

    @pytest.mark.parametrize("name", sorted(POLICIES), ids=sorted(POLICIES))
    def test_crash_resume_identical(self, tmp_path, name):
        make = POLICIES[name]
        res_s, _, blob_s = _run(
            make, protocol="scalar", trace_path=tmp_path / "s.jsonl"
        )
        res_b, _, blob_b = _run(
            make,
            protocol="batch",
            crash=True,
            trace_path=tmp_path / "b.jsonl",
        )
        assert res_b.recoveries >= 1
        assert results_bit_identical(res_s, res_b)
        # The resumed batch run's *replay* stream is byte-for-byte the
        # uncrashed scalar run's.
        assert blob_s == blob_b and len(blob_s) > 0

    @pytest.mark.parametrize("name", sorted(POLICIES), ids=sorted(POLICIES))
    def test_untraced_results_identical(self, name):
        make = POLICIES[name]
        res_s, jrn_s, _ = _run(make, protocol="scalar")
        res_b, jrn_b, _ = _run(make, protocol="auto")
        assert results_bit_identical(res_s, res_b)
        assert jrn_s == jrn_b


class TestScalarAdapter:
    """Any policy behind :class:`ScalarAdapter` == the bare policy."""

    @pytest.mark.parametrize("name", ["edf", "edf-ac", "vdover"])
    def test_adapter_equivalence(self, tmp_path, name):
        make = POLICIES[name]
        res_bare, jrn_bare, blob_bare = _run(
            make, protocol="batch", trace_path=tmp_path / "bare.jsonl"
        )
        res_ad, jrn_ad, blob_ad = _run(
            lambda: ScalarAdapter(make()),
            protocol="batch",
            trace_path=tmp_path / "ad.jsonl",
        )
        assert results_bit_identical(res_bare, res_ad)
        assert jrn_bare == jrn_ad
        assert blob_bare == blob_ad

    def test_cross_type_restore_rejected(self):
        """A snapshot taken from an adapter-wrapped policy must not restore
        into the bare policy, nor the reverse — the adapter nests its inner
        state under its own type name precisely so mixed restores fail
        loudly instead of silently misreading queues."""
        jobs = _tie_heavy_instance(n=12)

        def _ran(sched):
            simulate(jobs, _capacity(), sched)
            return sched

        bare = _ran(EDFScheduler())
        wrapped = _ran(ScalarAdapter(EDFScheduler()))
        by_id = {j.jid: j for j in jobs}

        fresh_bare = EDFScheduler()
        with pytest.raises(RecoveryError):
            fresh_bare.set_state(wrapped.get_state(), by_id)

        fresh_wrapped = ScalarAdapter(EDFScheduler())
        with pytest.raises(RecoveryError):
            fresh_wrapped.set_state(bare.get_state(), by_id)

        # Sanity: the matched restores succeed.
        fresh = ScalarAdapter(EDFScheduler())
        fresh.bind(wrapped.ctx)
        fresh.set_state(wrapped.get_state(), by_id)


class _CountingJobTable(JobTable):
    """JobTable that counts its whole-population scans."""

    def __init__(self, jobs):
        super().__init__(jobs)
        self.counts = {"released_by": 0, "unresolved": 0, "ready": 0}

    def rows_released_by(self, horizon):
        self.counts["released_by"] += 1
        return super().rows_released_by(horizon)

    def rows_unresolved(self):
        self.counts["unresolved"] += 1
        return super().rows_unresolved()

    def rows_ready(self):
        self.counts["ready"] += 1
        return super().rows_ready()


class TestScanCounts:
    """The population scans are per-run (or per-batch), never per-event."""

    @pytest.mark.parametrize("protocol", ["scalar", "batch"])
    def test_engine_scans_once_per_run(self, monkeypatch, protocol):
        import repro.kernel.core as kernel_core

        tables = []

        def capture(jobs):
            table = _CountingJobTable(jobs)
            tables.append(table)
            return table

        monkeypatch.setattr(kernel_core, "JobTable", capture)
        simulate(
            _tie_heavy_instance(), _capacity(), EDFScheduler(),
            protocol=protocol,
        )
        (table,) = tables
        assert table.counts["released_by"] == 1  # bootstrap seeding
        assert table.counts["unresolved"] == 1  # wind-down sweep
        # The run loop itself never re-derives the ready set.
        assert table.counts["ready"] == 0

    def test_batch_view_caches_ready_rows(self):
        jobs = _tie_heavy_instance(n=8)
        table = _CountingJobTable(jobs)
        view = BatchView(1.0, EventKind.RELEASE, jobs[:3], [0, 1, 2], table)
        assert table.counts["ready"] == 0  # lazy: no scan until asked
        first = view.ready_rows
        assert table.counts["ready"] == 1
        assert view.ready_rows is first  # cached: at most one scan per batch
        assert table.counts["ready"] == 1


class TestFastPathEquivalence:
    """The uninstrumented loops (no journal, watchdog or tracing) agree
    bit-for-bit across protocols.

    This is the only route into ``_run_batch_fast``: the fast batch loop
    gathers groups with the bulk ``pop_group`` and applies one *net*
    decision per release group (via ``on_releases_fast``) instead of one
    per event, so its equivalence is pinned separately from the journaled
    suite — including the full segment list, where a wrongly-applied
    intermediate switch would show up."""

    def _slack_instance(self, seed=5, n=160):
        rng = random.Random(seed)
        jobs = []
        for i in range(n):
            release = float(rng.randrange(0, 20))
            workload = rng.uniform(0.5, 3.0)
            jobs.append(
                Job(
                    jid=i,
                    release=release,
                    workload=workload,
                    deadline=release + workload + rng.uniform(0.0, 6.0),
                    value=rng.uniform(1.0, 10.0) * workload,
                )
            )
        return jobs

    def _fingerprint(self, result):
        return (
            result.value,
            result.completed_ids,
            [(s.start, s.end, s.jid, s.work) for s in result.trace.segments],
            dict(result.trace.outcomes),
            result.trace.value_points,
        )

    @pytest.mark.parametrize("name", sorted(POLICIES), ids=sorted(POLICIES))
    @pytest.mark.parametrize(
        "instance", ["zero_laxity", "slack"], ids=["zero_laxity", "slack"]
    )
    def test_uninstrumented_runs_identical(self, name, instance):
        jobs = (
            _tie_heavy_instance(n=160)
            if instance == "zero_laxity"
            else self._slack_instance()
        )
        make = POLICIES[name]
        prints = {}
        for protocol in ("scalar", "batch"):
            result = simulate(jobs, _capacity(), make(), protocol=protocol)
            prints[protocol] = self._fingerprint(result)
        assert prints["scalar"] == prints["batch"]

    def test_adapter_uninstrumented_identical(self):
        """ScalarAdapter has no ``on_releases_fast``; the fast loop falls
        back to collapsing its ``plan()`` — same net decision."""
        jobs = self._slack_instance()
        res_bare = simulate(
            jobs, _capacity(), EDFScheduler(), protocol="scalar"
        )
        res_ad = simulate(
            jobs,
            _capacity(),
            ScalarAdapter(EDFScheduler()),
            protocol="batch",
        )
        assert self._fingerprint(res_bare) == self._fingerprint(res_ad)
