"""Scheduler abstraction and the online information interface.

The engine is clairvoyant (it owns the full capacity trajectory so it can
compute exact completion instants); schedulers are *myopic* and interact
with the world only through :class:`SchedulerContext`, which exposes exactly
the information the paper grants an online algorithm:

* the current time;
* job parameters at release (handlers receive the :class:`Job`);
* the remaining workload of any released job — legitimate online knowledge,
  since the scheduler observed when each job ran and the past capacity
  ``c(τ), τ <= now``;
* the instantaneous capacity ``c(now)`` and the declared bounds
  ``(c̲, c̄)`` of the input set.

Nothing about the *future* trajectory is reachable through the context, so
the online model is enforced at the API level.

Handlers correspond to the paper's three interrupt types (Section III-D):
job release, job completion-or-failure, and zero-conservative-laxity alarms
(generalised to arbitrary per-job alarms so Dover's ĉ-laxity and LLF's
tie-crossing timers reuse the same mechanism).  Each handler returns the
job that should occupy the processor once the interrupt is handled
(``None`` for idle); the engine performs the actual switch, completion
prediction and trace accounting.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Tuple

from repro.errors import CapacityReadError, EstimateError, RecoveryError
from repro.sim.job import Job

__all__ = ["SchedulerContext", "Scheduler"]


class SchedulerContext(abc.ABC):
    """What an online scheduler is allowed to see and do.

    Implemented by the engine; schedulers receive an instance via
    :meth:`Scheduler.bind` at the start of every run.
    """

    #: The active observability context (:class:`repro.obs.ObsContext`) or
    #: ``None`` when tracing is disabled — the default.  Engine-built
    #: contexts overwrite this with the context captured at kernel
    #: construction; schedulers guard every emission with a single
    #: ``if obs is not None`` so the disabled hot path pays one attribute
    #: check and nothing else.
    obs = None

    # -- observation ----------------------------------------------------
    @abc.abstractmethod
    def now(self) -> float:
        """Current simulation time."""

    @abc.abstractmethod
    def remaining(self, job: Job) -> float:
        """Remaining workload ``p_r(T)`` of a released, unfinished job."""

    @abc.abstractmethod
    def capacity_now(self) -> float:
        """The instantaneous capacity ``c(now)`` (observable per Sec. II-A)."""

    @property
    @abc.abstractmethod
    def bounds(self) -> Tuple[float, float]:
        """The declared capacity bounds ``(c̲, c̄)``."""

    @abc.abstractmethod
    def current_job(self) -> Optional[Job]:
        """The job currently on the processor (``None`` when idle)."""

    # -- alarms ----------------------------------------------------------
    @abc.abstractmethod
    def set_alarm(self, job: Job, time: float, tag: str = "claxity") -> None:
        """Arm (or re-arm) the single alarm slot of ``job`` to fire at
        ``time`` (clamped to ``now`` if in the past).  Firing calls
        :meth:`Scheduler.on_alarm`; alarms on completed/failed/running jobs
        are dropped silently."""

    @abc.abstractmethod
    def cancel_alarm(self, job: Job) -> None:
        """Disarm ``job``'s alarm if armed."""

    @abc.abstractmethod
    def set_timer(self, time: float, tag: str) -> None:
        """Arm a job-independent timer firing :meth:`Scheduler.on_timer`."""

    # -- derived conveniences ---------------------------------------------
    def conservative_remaining_time(self, job: Job, rate: float | None = None) -> float:
        """The paper's ``t_c(T, c̲)``: remaining processing time under the
        conservative (or supplied) rate estimate."""
        if rate is None:
            rate = self.bounds[0]
        return self.remaining(job) / rate

    def claxity(self, job: Job, rate: float | None = None) -> float:
        """Conservative laxity (Definition 5) of ``job`` right now; pass
        ``rate=ĉ`` for Dover's estimated laxity instead."""
        if rate is None:
            rate = self.bounds[0]
        return job.deadline - self.now() - self.remaining(job) / rate


class Scheduler(abc.ABC):
    """Base class for online scheduling policies.

    Subclasses implement the interrupt handlers.  A scheduler instance may
    be reused across runs: :meth:`bind` is called once per run and must
    reset all per-run state (subclasses override :meth:`reset`).
    """

    #: Human-readable policy name (used in results and tables).
    name: str = "scheduler"

    #: Batch-protocol capability flags (see :mod:`repro.sim.batchproto`).
    #: The base class is scalar-only: under ``protocol="batch"`` the kernel
    #: keeps any scheduler with ``batch_capable = False`` on per-event
    #: dispatch, so un-ported policies never see a ``plan`` call.
    batch_capable: bool = False
    #: Whether the batch handlers reproduce scalar observability emissions
    #: exactly; only consulted when ``batch_capable`` is true.
    batch_obs_exact: bool = True
    #: Whether ``on_job_end`` for a waiting job is a pure queue purge;
    #: only consulted when ``batch_capable`` is true.
    batch_pure_completions: bool = True

    def __init__(self) -> None:
        self.ctx: SchedulerContext = None  # type: ignore[assignment]
        self._sensor_last_good: float | None = None
        self._sensor_health = {"reads": 0, "dropouts": 0, "clamped": 0}

    def bind(self, ctx: SchedulerContext) -> None:
        """Attach to an engine run and reset per-run state."""
        self.ctx = ctx
        self._sensor_last_good = None
        self._sensor_health = {"reads": 0, "dropouts": 0, "clamped": 0}
        self.reset()

    def reset(self) -> None:
        """Reinitialise per-run state.  Default: nothing."""

    # ------------------------------------------------------------------
    # Robust capacity sensing (docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    @property
    def sensor_health(self) -> dict:
        """Counters of the degradation ladder taken by
        :meth:`sense_capacity` during the current run (copy on access):
        total ``reads``, ``dropouts`` (reading unavailable or garbage) and
        ``clamped`` (out-of-band readings snapped into the declared
        band)."""
        return dict(self._sensor_health)

    def sense_capacity(self) -> float:
        """Read ``ctx.capacity_now()`` with graceful degradation.

        Under fault injection (:mod:`repro.faults`) the sensor may report
        rates outside the declared band, return garbage, or raise
        :class:`~repro.errors.CapacityReadError` during a dropout.  Rather
        than silently mis-scheduling on a corrupt estimate, this helper
        applies the degradation ladder:

        1. out-of-band readings are **clamped** into the declared
           ``[c̲, c̄]`` (the band is the only contract the scheduler has);
        2. unavailable or non-finite/non-positive readings fall back to the
           **last-known-good** (clamped) reading;
        3. with no last-known-good value yet, fall back to the conservative
           bound ``c̲``;
        4. if even the declared band is unusable (non-finite or
           non-positive), raise :class:`~repro.errors.EstimateError`.
        """
        lo, hi = self.ctx.bounds
        if not (math.isfinite(lo) and math.isfinite(hi) and 0.0 < lo <= hi):
            raise EstimateError(
                f"declared capacity band ({lo!r}, {hi!r}) is unusable; "
                "no graceful fallback exists"
            )
        self._sensor_health["reads"] += 1
        try:
            reading = self.ctx.capacity_now()
        except CapacityReadError:
            reading = None
        if reading is None or not math.isfinite(reading) or reading <= 0.0:
            self._sensor_health["dropouts"] += 1
            fallback = (
                self._sensor_last_good
                if self._sensor_last_good is not None
                else lo
            )
            obs = getattr(self.ctx, "obs", None)
            if obs is not None:
                # Sensor-health transition: reading unavailable/garbage,
                # degradation ladder falls back (docs/ROBUSTNESS.md).
                obs.metrics.counter("scheduler.sensor.dropouts").inc()
                obs.emit(
                    "sensor.dropout",
                    self.ctx.now(),
                    {"policy": self.name, "fallback": fallback},
                )
            return fallback
        if reading < lo or reading > hi:
            self._sensor_health["clamped"] += 1
            obs = getattr(self.ctx, "obs", None)
            if obs is not None:
                obs.metrics.counter("scheduler.sensor.clamped").inc()
                obs.emit(
                    "sensor.clamped",
                    self.ctx.now(),
                    {"policy": self.name, "raw": reading},
                )
            reading = min(max(reading, lo), hi)
        self._sensor_last_good = reading
        return reading

    def _emit_decision(self, payload: "tuple | None") -> None:
        """Emit a ``(policy, action, jid, extra)`` decision payload.

        Factored release handlers (:mod:`repro.sim.batchproto`) *return*
        their decision record instead of emitting it; the scalar wrapper
        emits here — at the same ring position as before the refactor —
        while the batch kernel emits the payloads itself, interleaved with
        the group's release events."""
        if payload is None:
            return
        obs = self.ctx.obs
        if obs is None:
            return
        policy, action, jid, extra = payload
        if extra:
            obs.decision(policy, action, self.ctx.now(), jid, **extra)
        else:
            obs.decision(policy, action, self.ctx.now(), jid)

    # ------------------------------------------------------------------
    # Interrupt handlers: each returns the job that should run next
    # (None = leave the processor idle).
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_release(self, job: Job) -> Optional[Job]:
        """A new job arrived (the paper's job-release interrupt)."""

    @abc.abstractmethod
    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        """A job left the system: ``completed=True`` for successful
        termination, ``False`` for a deadline failure.  Called both when the
        departing job was running and when it expired while waiting (the
        scheduler must purge it from its queues in the latter case)."""

    def on_alarm(self, job: Job, tag: str) -> Optional[Job]:
        """A per-job alarm fired (e.g. zero conservative laxity).  Default:
        keep the current assignment."""
        return self.ctx.current_job()

    def on_timer(self, tag: str) -> Optional[Job]:
        """A job-independent timer fired.  Default: keep current."""
        return self.ctx.current_job()

    def on_eviction(self, job: Job) -> Optional[Job]:
        """``job`` was forcibly evicted from the processor by an execution
        fault (VM revocation, job kill with retained progress).  The engine
        has already closed the running segment and returned the job to
        READY; the scheduler must requeue it and pick a successor.

        Default: treat the evicted job like a fresh arrival — correct for
        stateless ready-queue policies whose release handler just inserts
        and re-evaluates.  Policies with admission side effects override
        this."""
        return self.on_release(job)

    # ------------------------------------------------------------------
    # Snapshot / restore (crash recovery — docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Capture the scheduler's per-run state for an engine snapshot.

        Returns a picklable dict: sensing counters from the base class plus
        the subclass's :meth:`_policy_state`.  Job references are always
        stored as jids so the restoring side can re-bind them to its own
        :class:`Job` objects."""
        return {
            "scheduler": type(self).__name__,
            "sensor_last_good": self._sensor_last_good,
            "sensor_health": dict(self._sensor_health),
            "policy": self._policy_state(),
        }

    def set_state(self, state: dict, jobs_by_id: "dict[int, Job]") -> None:
        """Restore per-run state captured by :meth:`get_state`.

        Must be called after :meth:`bind` (so queues exist, freshly reset).
        ``jobs_by_id`` maps jid to the restoring engine's job objects."""
        if state.get("scheduler") != type(self).__name__:
            raise RecoveryError(
                f"snapshot was taken from {state.get('scheduler')!r}, "
                f"cannot restore into {type(self).__name__}"
            )
        self._sensor_last_good = state["sensor_last_good"]
        self._sensor_health = dict(state["sensor_health"])
        self._restore_policy_state(state["policy"], jobs_by_id)

    def _policy_state(self) -> dict:
        """Subclass hook: capture policy-specific per-run state (queues,
        rate estimates, accumulators) as a picklable, jid-keyed dict."""
        raise RecoveryError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def _restore_policy_state(
        self, state: dict, jobs_by_id: "dict[int, Job]"
    ) -> None:
        """Subclass hook: inverse of :meth:`_policy_state`."""
        raise RecoveryError(
            f"{type(self).__name__} does not support snapshot/restore"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
