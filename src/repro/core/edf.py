"""Earliest Deadline First — optimal for underloaded systems (Theorem 2).

EDF always runs the ready job with the earliest deadline, preempting on
arrival of an earlier-deadline job.  The paper's Theorem 2 shows this
achieves competitive ratio 1 for underloaded systems *even under
time-varying capacity* (the classical constant-capacity result of Liu &
Layland / Dertouzos carries over via the time-stretch transformation).

Under overload EDF can be arbitrarily bad (Locke's observation): it
happily burns the whole horizon on a long low-value job whose deadline is
earliest, starving everything else.  The adversarial generators in
:mod:`repro.workload.instances` exhibit this; Dover/V-Dover exist to fix it.

Batch protocol: the release logic is factored into
:meth:`_on_release_from` (current job passed explicitly), so a
same-instant release burst folds through one
:meth:`~repro.sim.batchproto.BatchScheduler.plan` call — bit-identical
decisions, minus the per-event kernel dispatch overhead.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.sim.batchproto import BatchScheduler, BatchView
from repro.sim.job import Job
from repro.sim.queues import JobQueue, edf_key
from repro.sim.scheduler import Scheduler

__all__ = ["EDFScheduler"]


class EDFScheduler(BatchScheduler, Scheduler):
    """Preemptive earliest-deadline-first.

    Ties on deadline break by job id, so runs are deterministic.
    """

    name = "EDF"

    def reset(self) -> None:
        self._ready: JobQueue[Job] = JobQueue(edf_key, name="edf-ready")

    def _on_release_from(
        self, cur: Optional[Job], job: Job
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        if cur is None:
            return job, (self.name, "admit.idle", job.jid, None)
        if edf_key(job) < edf_key(cur):
            self._ready.insert(cur)
            return job, (self.name, "preempt.edf", job.jid, {"preempted": cur.jid})
        self._ready.insert(job)
        return cur, (self.name, "enqueue.ready", job.jid, None)

    def on_release(self, job: Job) -> Optional[Job]:
        cur, payload = self._on_release_from(self.ctx.current_job(), job)
        self._emit_decision(payload)
        return cur

    def on_releases_fast(self, job_view) -> Optional[Job]:
        # Only the min-key newcomer can end up on the processor, so the
        # group's net effect is one comparison plus queue inserts for the
        # losers.  Insert order differs from the scalar fold, but EDF keys
        # are unique per job, so pop order and sorted snapshots agree.
        jobs = job_view.jobs
        best = min(jobs, key=edf_key)
        cur = self.ctx.current_job()
        insert = self._ready.insert
        if cur is not None and edf_key(best) >= edf_key(cur):
            for job in jobs:
                insert(job)
            return cur
        if cur is not None:
            insert(cur)
        for job in jobs:
            if job is not best:
                insert(job)
        return best

    def on_completions(self, view: BatchView) -> None:
        # Same-instant deadline sweep of waiting jobs: the scalar
        # on_job_end with a running current is a silent queue drop.
        remove = self._ready.remove
        for job in view.jobs:
            remove(job)

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        current = self.ctx.current_job()
        if current is not None:
            # A waiting job expired; just drop it from the ready queue.
            self._ready.remove(job)
            return current
        self._ready.remove(job)  # no-op if `job` was the running one
        obs = self.ctx.obs
        if self._ready:
            chosen = self._ready.dequeue()
            if obs is not None:
                obs.decision(self.name, "resume.edf", self.ctx.now(), chosen.jid)
            return chosen
        if obs is not None:
            obs.decision(self.name, "idle", self.ctx.now())
        return None

    def on_eviction(self, job: Job) -> Optional[Job]:
        # Unlike a release, an eviction can leave the processor idle while
        # the ready queue is non-empty; re-elect over the full queue.
        self._ready.insert(job)
        chosen = self._ready.dequeue()
        obs = self.ctx.obs
        if obs is not None:
            obs.decision(
                self.name, "requeue.evicted", self.ctx.now(), chosen.jid
            )
        return chosen

    # -- snapshot / restore --------------------------------------------
    def _policy_state(self) -> dict:
        return {"ready": self._ready.live_jids()}

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        for jid in state["ready"]:
            self._ready.insert(jobs_by_id[jid])
