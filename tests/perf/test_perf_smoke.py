"""Tier-1 performance smoke (``perf_smoke`` marker).

A short indexed-vs-naive comparison that rides in the normal tier-1 flow
(well under 30 s): the O(log n) prefix-sum index must agree with the
naive linear piece-scan on a long realized Markov path and on the
periodic sinusoidal segment cache, must actually beat the scan on deep
queries, and an 8-replication Monte-Carlo pass (``REPRO_MC_RUNS=8``)
must stay value-conserving end to end on the indexed hot path.

Deselect with ``-m "not perf_smoke"`` when iterating on unrelated code.
"""

from __future__ import annotations

import time

import pytest

from repro.capacity import (
    SinusoidalCapacity,
    TwoStateMarkovCapacity,
    crosscheck_index,
    naive_advance,
    naive_integrate,
)
from repro.core import EDFScheduler, VDoverScheduler
from repro.experiments import (
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
    default_mc_runs,
)
from repro.workload import PoissonWorkload

pytestmark = pytest.mark.perf_smoke


@pytest.fixture(scope="module")
def long_markov_path():
    """A ~4k-segment realized path (materialized once for the module)."""
    cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=0.5, rng=42)
    cap.integrate(0.0, 2000.0)  # force materialization
    assert len(cap.breakpoints_materialized) >= 2000
    return cap


class TestIndexedVsNaiveAgreement:
    def test_markov_long_path(self, long_markov_path):
        cap = long_markov_path
        cap.check_index_invariants()
        assert crosscheck_index(cap, 0.0, 1800.0, n_queries=48) == 48

    def test_sinusoidal_segment_cache(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=7.3, phase=0.4)
        assert crosscheck_index(cap, 0.0, 150.0, n_queries=48) == 48


class TestIndexedBeatsNaive:
    def test_deep_advance_is_faster(self, long_markov_path):
        """Deep queries across the whole path: the bisect must clearly beat
        the linear rescan (conservative 3x bar; measured ~100-400x)."""
        cap = long_markov_path
        total = cap.integrate(0.0, 1800.0)
        works = [total * f for f in (0.3, 0.6, 0.9)] * 10

        t0 = time.perf_counter()
        fast = [cap.advance(0.0, w, horizon=2000.0) for w in works]
        t_fast = time.perf_counter() - t0

        t0 = time.perf_counter()
        slow = [naive_advance(cap, 0.0, w, horizon=2000.0) for w in works]
        t_slow = time.perf_counter() - t0

        # Same landing piece, same prefix sums; the naive reference's
        # *sequential* subtraction can differ from the index's one-shot
        # `target − W[i]` by rounding order (≤ ~1 ulp).
        for f, s in zip(fast, slow):
            assert f == pytest.approx(s, rel=1e-12)
        assert t_slow > 3.0 * t_fast, (
            f"indexed advance not faster: {t_fast:.4f}s vs naive {t_slow:.4f}s"
        )

    def test_deep_integrate_is_faster(self, long_markov_path):
        cap = long_markov_path
        spans = [(float(a), 1800.0 - float(a)) for a in range(0, 300, 10)]

        t0 = time.perf_counter()
        fast = [cap.integrate(a, b) for a, b in spans]
        t_fast = time.perf_counter() - t0

        t0 = time.perf_counter()
        slow = [naive_integrate(cap, a, b) for a, b in spans]
        t_slow = time.perf_counter() - t0

        for f, s in zip(fast, slow):
            assert f == pytest.approx(s, rel=1e-9)
        assert t_slow > 3.0 * t_fast, (
            f"indexed integrate not faster: {t_fast:.4f}s vs naive {t_slow:.4f}s"
        )


class TestMonteCarloSmoke:
    def test_eight_replications_value_conserving(self, monkeypatch):
        """REPRO_MC_RUNS=8 end-to-end pass on the indexed hot path."""
        monkeypatch.setenv("REPRO_MC_RUNS", "8")
        runs = default_mc_runs(3)
        assert runs == 8
        factory = PaperInstanceFactory(
            workload=PoissonWorkload(lam=6.0, horizon=20.0),
            sojourn=5.0,
        )
        specs = [
            SchedulerSpec("EDF", EDFScheduler),
            SchedulerSpec("V-Dover", VDoverScheduler, {"k": 7.0}),
        ]
        outcomes = MonteCarloRunner(factory, specs).run(runs, seed=1, workers=1)
        assert len(outcomes) == 8
        for out in outcomes:
            for name in ("EDF", "V-Dover"):
                # No scheduler can accrue more than the generated value.
                assert 0.0 <= out.values[name] <= out.generated_value + 1e-9
                assert 0 <= out.completed[name] <= out.n_jobs
        # Across a small ensemble someone must complete something.
        assert sum(o.completed["EDF"] for o in outcomes) > 0


class TestKernelBenchArtifact:
    """Machine-readable kernel benchmark: ``BENCH_kernel.json``.

    Runs the Figure-1 instance through EDF and V-Dover on the columnar
    kernel, checks the values are bit-identical to the seed pins, and
    writes wall-ms / events-per-second numbers where CI can upload them
    (``test-results/``) and where the repo archives them
    (``benchmarks/results/``).
    """

    # Seed pins (Figure-1 instance, PoissonWorkload(lam=6, horizon=2000/6)
    # seed 7 x TwoStateMarkovCapacity(1, 35, sojourn=horizon/4, rng=3)).
    EDF_VALUE = 5007.37367023652
    VDOVER_VALUE = 5391.145120371147

    def test_emit_bench_kernel_json(self):
        import json
        from pathlib import Path

        from repro.capacity import TwoStateMarkovCapacity
        from repro.sim import SimulationEngine

        lam, horizon = 6.0, 2000.0 / 6.0
        jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(7)

        def measure(make_sched, repeat=3):
            best_ms = float("inf")
            value = dispatches = None
            for _ in range(repeat):
                cap = TwoStateMarkovCapacity(
                    1.0, 35.0, mean_sojourn=horizon / 4, rng=3
                )
                engine = SimulationEngine(jobs, cap, make_sched())
                t0 = time.perf_counter()
                result = engine.run()
                elapsed = (time.perf_counter() - t0) * 1e3
                best_ms = min(best_ms, elapsed)
                value = result.value
                dispatches = engine.dispatch_count
            return {
                "wall_ms_min": round(best_ms, 3),
                "value": value,
                "dispatches": dispatches,
                "events_per_sec": round(dispatches / (best_ms / 1e3)),
            }

        edf = measure(EDFScheduler)
        vdover = measure(lambda: VDoverScheduler(k=7.0))

        # Acceptance: Figure-1 values bit-identical to the seed.
        assert edf["value"] == self.EDF_VALUE
        assert vdover["value"] == self.VDOVER_VALUE

        payload = {
            "schema": 1,
            "bench": "kernel_figure1",
            "instance": {
                "workload": f"PoissonWorkload(lam={lam}, horizon={horizon!r}) seed 7",
                "capacity": "TwoStateMarkovCapacity(1, 35, sojourn=horizon/4, rng=3)",
                "jobs": len(jobs),
            },
            "edf": {**edf, "bit_identical": edf["value"] == self.EDF_VALUE},
            "vdover": {
                **vdover,
                "bit_identical": vdover["value"] == self.VDOVER_VALUE,
            },
            "notes": (
                "wall_ms_min is best-of-3 on the runner; dispatches counts "
                "journaled (non-stale) events, so events_per_sec is a "
                "conservative throughput figure.  Methodology and the "
                "before/after comparison: docs/PERFORMANCE.md."
            ),
        }
        blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        repo = Path(__file__).resolve().parents[2]
        for out in (
            repo / "test-results" / "BENCH_kernel.json",
            repo / "benchmarks" / "results" / "BENCH_kernel.json",
        ):
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(blob)


class TestPolicyProtocolBenchArtifact:
    """Scalar-vs-batch protocol benchmark: ``BENCH_policyproto.json``.

    Three instances, each policy run under both protocols:

    * the **Figure-1 Poisson instance** (continuous release times → almost
      every interrupt group is a singleton) — the honest no-win case; the
      batch path must not regress it;
    * a **bursty quantized-release instance** (32 jobs per release
      instant, overloaded) — wide groups exercise the grouped release
      fold and the fast loop's single net apply per group;
    * a **feasible-burst instance** (underloaded, every burst wholly
      admissible) — the case AdmissionEDF's whole-group feasibility
      chain exists for: one O((Q+N) log) chain replaces N per-job
      O(Q log Q) chains.

    Asserted: values and dispatch counts bit-identical between protocols.
    Never asserted: wall-clock thresholds — the JSON carries the measured
    numbers (plus the PR 6 ``BENCH_kernel`` seed pins for context) and CI
    archives them.
    """

    def _bursty_instance(self, seed=13, instants=150, per_instant=32):
        """Quantized releases: ``per_instant`` jobs per integer instant
        with up to 12 time units of slack — wide same-instant groups
        under overload, long ready queues."""
        import random

        from repro.sim import Job

        rng = random.Random(seed)
        jobs = []
        for i in range(instants * per_instant):
            release = float(i % instants)
            workload = rng.uniform(0.5, 3.0)
            jobs.append(
                Job(
                    jid=i,
                    release=release,
                    workload=workload,
                    deadline=release + workload + rng.uniform(0.0, 12.0),
                    value=rng.uniform(1.0, 10.0) * workload,
                )
            )
        return jobs

    def _feasible_burst_instance(self, seed=29, instants=150, per_instant=16):
        """Underloaded bursts: tiny workloads (arrival rate ~0.75 x the
        floor rate) with generous deadlines, so every 16-job burst passes
        the admission chain *as a whole* — the workload shape
        AdmissionEDF's single-chain group handler targets.  Run against a
        low-capacity trajectory so the admitted queue stays long."""
        import random

        from repro.sim import Job

        rng = random.Random(seed)
        jobs = []
        for i in range(instants * per_instant):
            release = float(i % instants)
            workload = rng.uniform(0.02, 0.08)
            jobs.append(
                Job(
                    jid=i,
                    release=release,
                    workload=workload,
                    deadline=release + 20.0 + rng.uniform(0.0, 20.0),
                    value=rng.uniform(1.0, 10.0) * workload,
                )
            )
        return jobs

    def test_emit_bench_policyproto_json(self):
        import json
        from pathlib import Path

        from repro.capacity import TwoStateMarkovCapacity
        from repro.core import AdmissionEDFScheduler
        from repro.sim import SimulationEngine

        lam, horizon = 6.0, 2000.0 / 6.0
        poisson_jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(7)
        bursty_jobs = self._bursty_instance()
        feasible_jobs = self._feasible_burst_instance()

        instances = {
            "figure1_poisson": (
                poisson_jobs,
                lambda: TwoStateMarkovCapacity(
                    1.0, 35.0, mean_sojourn=horizon / 4, rng=3
                ),
            ),
            "bursty_quantized": (
                bursty_jobs,
                lambda: TwoStateMarkovCapacity(
                    1.0, 35.0, mean_sojourn=20.0, rng=3
                ),
            ),
            "feasible_burst": (
                feasible_jobs,
                lambda: TwoStateMarkovCapacity(
                    1.0, 2.0, mean_sojourn=20.0, rng=3
                ),
            ),
        }
        policies = {
            "edf": EDFScheduler,
            "edf-ac": AdmissionEDFScheduler,
            "vdover": lambda: VDoverScheduler(k=7.0),
        }

        def one(jobs, make_cap, make_sched, protocol):
            """One timed run, GC parked so a collection mid-run doesn't
            land on one protocol's ledger."""
            import gc

            engine = SimulationEngine(
                jobs, make_cap(), make_sched(), protocol=protocol
            )
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                result = engine.run()
                elapsed = (time.perf_counter() - t0) * 1e3
            finally:
                gc.enable()
            return elapsed, result.value, engine.dispatch_count

        def measure_pair(jobs, make_cap, make_sched, rounds=9):
            """Interleaved A/B measurement: the two protocols alternate
            within each round (order flipping round to round), so the
            runner's clock-speed drift — which dwarfs the effect being
            measured when the protocols run back to back — cancels out
            of the per-round ratios.  ``batch_speedup`` is the median of
            those pairwise ratios, the drift-robust statistic."""
            import statistics

            times = {"scalar": [], "batch": []}
            facts = {}
            ratios = []
            for i in range(rounds):
                order = (
                    ("scalar", "batch") if i % 2 == 0 else ("batch", "scalar")
                )
                for protocol in order:
                    ms, value, dispatches = one(
                        jobs, make_cap, make_sched, protocol
                    )
                    times[protocol].append(ms)
                    facts[protocol] = (value, dispatches)
                ratios.append(times["scalar"][-1] / times["batch"][-1])
            out = {}
            for protocol in ("scalar", "batch"):
                best_ms = min(times[protocol])
                value, dispatches = facts[protocol]
                out[protocol] = {
                    "wall_ms_min": round(best_ms, 3),
                    "value": value,
                    "dispatches": dispatches,
                    "dispatches_per_sec": round(
                        dispatches / (best_ms / 1e3)
                    ),
                }
            return out, round(statistics.median(ratios), 3)

        results: dict = {}
        for iname, (jobs, make_cap) in instances.items():
            results[iname] = {}
            for pname, make_sched in policies.items():
                pair, speedup = measure_pair(jobs, make_cap, make_sched)
                scalar, batch = pair["scalar"], pair["batch"]
                # Hard equivalence gates (never wall-clock):
                assert batch["value"] == scalar["value"], (pname, iname)
                assert batch["dispatches"] == scalar["dispatches"], (
                    pname,
                    iname,
                )
                results[iname][pname] = {
                    "scalar": scalar,
                    "batch": batch,
                    "batch_speedup": speedup,
                }

        payload = {
            "schema": 1,
            "bench": "policy_protocol",
            "instances": {
                "figure1_poisson": (
                    f"PoissonWorkload(lam={lam}, horizon={horizon!r}) seed 7 "
                    "x TwoStateMarkovCapacity(1, 35, sojourn=horizon/4, "
                    "rng=3) — continuous releases, singleton groups"
                ),
                "bursty_quantized": (
                    "150 integer release instants x 32 jobs each, slack "
                    "uniform(0, 12) x "
                    "TwoStateMarkovCapacity(1, 35, sojourn=20, rng=3) — "
                    "every release instant is one 32-job group, overloaded"
                ),
                "feasible_burst": (
                    "150 integer release instants x 16 jobs each, "
                    "workloads uniform(0.02, 0.08), deadlines 20-40 out x "
                    "TwoStateMarkovCapacity(1, 2, sojourn=20, rng=3) — "
                    "underloaded; every burst passes the admission chain "
                    "whole, so one group chain replaces 16 per-job chains"
                ),
            },
            "results": results,
            "baseline_pr6": {
                "note": (
                    "BENCH_kernel seed pins from the columnar-kernel PR "
                    "(scalar protocol, Figure-1 instance)"
                ),
                "edf_value": TestKernelBenchArtifact.EDF_VALUE,
                "vdover_value": TestKernelBenchArtifact.VDOVER_VALUE,
            },
            "notes": (
                "batch_speedup is the median of 9 interleaved-round "
                "pairwise ratios (GC parked), the drift-robust statistic "
                "on a noisy runner; wall_ms_min is best-of-9 per "
                "protocol.  Equivalence (values and dispatch counts "
                "bit-identical between protocols) is asserted, "
                "wall-clock never is.  See docs/PERFORMANCE.md, 'Batch "
                "policy protocol'."
            ),
        }
        # Figure-1 values stay pinned to the seed under both protocols.
        f1 = results["figure1_poisson"]
        assert f1["edf"]["batch"]["value"] == TestKernelBenchArtifact.EDF_VALUE
        assert (
            f1["vdover"]["batch"]["value"]
            == TestKernelBenchArtifact.VDOVER_VALUE
        )

        blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        repo = Path(__file__).resolve().parents[2]
        for out in (
            repo / "test-results" / "BENCH_policyproto.json",
            repo / "benchmarks" / "results" / "BENCH_policyproto.json",
        ):
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(blob)


class TestTelemetryBenchArtifact:
    """Telemetry-plane overhead benchmark: ``BENCH_telemetry.json``.

    The same deterministic rid'd wire stream (submits, advances, a few
    injected kills, queue-budget sheds) is driven through a store-less
    ``TenantShard`` with the SLO tracker **enabled** vs **disabled**, so
    the measured difference is exactly the telemetry accounting on the
    decision path — no disk, no asyncio scheduling in the ledger.

    Asserted: the two arms are bit-identical on every decision-plane
    fact (``submitted``/``accepted``/``shed``/``accepted_crc``/
    ``frontier``) — telemetry must observe, never steer.  Never
    asserted: wall-clock thresholds; the JSON carries the measured
    ``overhead_ratio`` and CI archives it (the hard zero-overhead gate
    for the *disabled* path lives in benchmarks/test_obs_overhead.py).
    """

    def _messages(self, n_submits=600, advance_every=10):
        """One deterministic tenant timeline, rebuilt per run (handle()
        takes ownership of the Job objects) — same seed, same stream."""
        import random

        from repro.service import Advance, InjectFault, Submit
        from repro.sim import Job

        rng = random.Random(2011)
        msgs = []
        t = 0.0
        for i in range(n_submits):
            t += rng.expovariate(4.0)
            workload = rng.uniform(0.2, 1.2)
            msgs.append(
                Submit(
                    "t0",
                    Job(
                        jid=i,
                        release=t,
                        workload=workload,
                        deadline=t + workload + rng.uniform(0.5, 6.0),
                        value=rng.uniform(1.0, 10.0),
                    ),
                    rid=f"bench-{i}",
                )
            )
            if i % 97 == 41:
                msgs.append(
                    InjectFault("t0", "kill", time=t + 0.1, rid=f"kill-{i}")
                )
            if i % advance_every == advance_every - 1:
                msgs.append(Advance("t0", t))
        return msgs

    def test_emit_bench_telemetry_json(self):
        import gc
        import json
        import statistics
        from pathlib import Path

        from repro.service import CapacitySpec, TenantShard, TenantSpec

        def spec():
            return TenantSpec(
                tenant="t0",
                horizon=1e9,
                scheduler="edf",
                capacity=CapacitySpec("constant", {"rate": 2.0}),
                queue_budget=8,
            )

        def one(telemetry):
            """One timed run, GC parked so a collection mid-run doesn't
            land on one arm's ledger.  Message build is outside t0."""
            msgs = self._messages()
            shard = TenantShard(spec(), telemetry=telemetry)
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                for msg in msgs:
                    shard.handle(msg)
                elapsed = (time.perf_counter() - t0) * 1e3
            finally:
                gc.enable()
            stats = shard.stats()
            shard.close()
            return elapsed, stats, len(msgs)

        # Interleaved A/B rounds with order flipping: runner clock drift
        # cancels out of the per-round ratios; the median is the
        # drift-robust statistic.
        rounds = 9
        times = {"enabled": [], "disabled": []}
        facts = {}
        ratios = []
        n_msgs = 0
        for i in range(rounds):
            order = (
                ("enabled", "disabled") if i % 2 == 0 else
                ("disabled", "enabled")
            )
            for arm in order:
                ms, stats, n_msgs = one(telemetry=(arm == "enabled"))
                times[arm].append(ms)
                facts[arm] = stats
            ratios.append(times["enabled"][-1] / times["disabled"][-1])
        overhead_ratio = round(statistics.median(ratios), 3)

        # Hard equivalence gates (never wall-clock): telemetry observes,
        # it never steers a decision.
        on, off = facts["enabled"], facts["disabled"]
        for key in (
            "submitted", "accepted", "shed", "accepted_crc", "frontier",
        ):
            assert on[key] == off[key], key
        assert on["shed"] > 0, "stream never shed — overhead not exercised"
        assert "slo" in on and "slo" not in off
        assert on["slo"]["counters"]["admitted"] == on["accepted"]

        results = {}
        for arm in ("enabled", "disabled"):
            best_ms = min(times[arm])
            results[arm] = {
                "wall_ms_min": round(best_ms, 3),
                "messages": n_msgs,
                "messages_per_sec": round(n_msgs / (best_ms / 1e3)),
                "accepted": facts[arm]["accepted"],
                "shed": facts[arm]["shed"],
                "accepted_crc": facts[arm]["accepted_crc"],
            }

        payload = {
            "schema": 1,
            "bench": "telemetry",
            "workload": (
                "600 rid'd Poisson submits (expovariate(4), seed 2011) + "
                "periodic advances + 7 injected kills through a store-less "
                "edf TenantShard, queue_budget 8 (sheds exercised) — the "
                "decision path with zero disk in the ledger"
            ),
            "results": results,
            "overhead_ratio": overhead_ratio,
            "notes": (
                "overhead_ratio is the median of 9 interleaved-round "
                "enabled/disabled wall-time ratios (GC parked, order "
                "flipped each round), the drift-robust statistic; "
                "wall_ms_min is best-of-9 per arm.  Equivalence "
                "(submitted/accepted/shed/accepted_crc/frontier "
                "bit-identical between arms) is asserted, wall-clock "
                "never is — the hard zero-overhead gate for the "
                "telemetry-off path is benchmarks/test_obs_overhead.py.  "
                "See docs/OBSERVABILITY.md, 'Live service telemetry'."
            ),
        }
        blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        repo = Path(__file__).resolve().parents[2]
        for out in (
            repo / "test-results" / "BENCH_telemetry.json",
            repo / "benchmarks" / "results" / "BENCH_telemetry.json",
        ):
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(blob)
