"""Unit tests for the single-server cloud composition."""

import pytest

from repro.cloud import PrimaryOccupancyModel, Server, SpotMarket, SpotPriceProcess
from repro.core import VDoverScheduler
from repro.sim import Job


@pytest.fixture
def primary():
    return PrimaryOccupancyModel(
        total_capacity=8.0,
        floor=1.0,
        arrival_rate=1.0,
        mean_holding=3.0,
        vm_size=1.0,
    )


class TestServer:
    def test_runs_jobs_on_residual(self, primary):
        server = Server(primary, VDoverScheduler(k=7.0))
        jobs = [Job(i, float(i), 1.0, float(i) + 2.0, 1.0) for i in range(10)]
        run = server.run_jobs(jobs, horizon=20.0, rng=0, validate=True)
        assert 0 <= run.revenue <= 10.0
        assert run.result.n_completed + run.result.n_failed == 10
        assert primary.floor <= run.mean_residual <= primary.total_capacity

    def test_nonintrusiveness_by_validation(self, primary):
        """The trace validator proves secondary work never exceeded the
        residual capacity integral (work conservation)."""
        server = Server(primary, VDoverScheduler(k=7.0))
        jobs = [Job(i, float(i) * 0.5, 2.0, float(i) * 0.5 + 2.5, 2.0) for i in range(20)]
        run = server.run_jobs(jobs, horizon=15.0, rng=1, validate=True)
        assert run.result.executed_work <= run.residual_capacity.integrate(
            0.0, run.result.horizon
        ) + 1e-6

    def test_deterministic_given_seed(self, primary):
        jobs = [Job(i, float(i), 1.0, float(i) + 2.0, 1.0) for i in range(5)]
        r1 = Server(primary, VDoverScheduler(k=7.0)).run_jobs(jobs, 10.0, rng=5)
        r2 = Server(primary, VDoverScheduler(k=7.0)).run_jobs(jobs, 10.0, rng=5)
        assert r1.revenue == r2.revenue

    def test_run_requests_end_to_end(self, primary):
        market = SpotMarket(
            SpotPriceProcess(), request_rate=2.0, floor_capacity=primary.floor
        )
        requests, _, _ = market.generate_requests(30.0, rng=3)
        server = Server(primary, VDoverScheduler(k=SpotPriceProcess().importance_ratio_bound))
        run = server.run_requests(requests, horizon=30.0, rng=4, validate=True)
        assert run.revenue >= 0.0
        assert run.revenue_per_offered <= 1.0 + 1e-12
