"""Integration tests: the paper's claims, end-to-end, at test scale.

Each test maps to a numbered claim (see DESIGN.md's experiment index):

* Theorem 2  — EDF captures *all* value on underloaded varying-capacity
  instances (competitive ratio 1);
* Theorem 3(2) premise — V-Dover on admissible overloaded workloads stays
  above the theoretical worst-case ratio (sanity: the guarantee is a lower
  bound, average performance is far higher);
* Theorem 3(3) — the inadmissible trap family drives the ratio to ~0;
* Section IV — V-Dover beats the best Dover(ĉ) on the paper's workload.
"""

import numpy as np
import pytest

from repro.analysis import vdover_competitive_ratio
from repro.capacity import TwoStateMarkovCapacity
from repro.core import (
    DoverScheduler,
    EDFScheduler,
    VDoverScheduler,
    greedy_admission,
    optimal_offline_value,
)
from repro.sim import simulate, total_value
from repro.workload import PoissonWorkload, feasible_instance, inadmissible_trap


class TestTheorem2:
    """EDF is 1-competitive on underloaded systems, varying capacity."""

    @pytest.mark.parametrize("seed", range(8))
    def test_edf_captures_all_value_on_feasible_instances(self, seed):
        capacity = TwoStateMarkovCapacity(1.0, 8.0, mean_sojourn=7.0, rng=seed)
        jobs = feasible_instance(capacity, n=12, horizon=50.0, rng=seed + 1000)
        result = simulate(jobs, capacity, EDFScheduler(), validate=True)
        assert result.n_completed == len(jobs)
        assert result.value == pytest.approx(total_value(jobs))

    @pytest.mark.parametrize("seed", range(4))
    def test_edf_matches_exact_optimum_when_underloaded(self, seed):
        capacity = TwoStateMarkovCapacity(1.0, 5.0, mean_sojourn=9.0, rng=seed)
        jobs = feasible_instance(capacity, n=8, horizon=30.0, rng=seed + 77)
        online = simulate(jobs, capacity, EDFScheduler())
        offline = optimal_offline_value(jobs, capacity)
        assert online.value == pytest.approx(offline)


class TestTheorem3Positive:
    def test_vdover_far_exceeds_worst_case_guarantee(self):
        """The competitive ratio is a worst-case floor; on the paper's
        stochastic workload the measured ratio (even against the generous
        total-generated-value reference) clears it by an order of
        magnitude."""
        k, delta = 7.0, 35.0
        guarantee = vdover_competitive_ratio(k, delta)
        lam, H = 8.0, 60.0
        wl = PoissonWorkload(lam=lam, horizon=H)
        ratios = []
        for seed in range(5):
            jobs = wl.generate(seed)
            capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=H / 4, rng=seed)
            result = simulate(jobs, capacity, VDoverScheduler(k=k))
            ratios.append(result.normalized_value)
        assert min(ratios) > guarantee
        assert np.mean(ratios) > 10 * guarantee


class TestTheorem3Negative:
    def test_ratio_vanishes_without_admissibility(self):
        ratios = []
        for n in (4, 8, 16, 32):
            jobs, capacity = inadmissible_trap(n)
            online = simulate(jobs, capacity, VDoverScheduler(k=float(n * n)))
            offline, _ = greedy_admission(jobs, capacity)
            ratios.append(online.value / offline)
        # Strictly decaying, roughly like 1/n.
        assert all(a > b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] < 0.07
        assert ratios[-1] < ratios[0] / 4


class TestSectionIVComparison:
    def test_vdover_beats_every_dover_on_average(self):
        """Paired comparison on the paper's workload at reduced scale."""
        lam, H, k = 6.0, 80.0, 7.0
        wl = PoissonWorkload(lam=lam, horizon=H)
        sums = {"vdover": 0.0, 1.0: 0.0, 10.5: 0.0, 24.5: 0.0, 35.0: 0.0}
        for seed in range(12):
            jobs = wl.generate(seed)
            capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=H / 4, rng=seed + 500)
            sums["vdover"] += simulate(jobs, capacity, VDoverScheduler(k=k)).value
            for c_hat in (1.0, 10.5, 24.5, 35.0):
                sums[c_hat] += simulate(
                    jobs, capacity, DoverScheduler(k=k, c_hat=c_hat)
                ).value
        best_dover = max(v for key, v in sums.items() if key != "vdover")
        assert sums["vdover"] > best_dover

    def test_vdover_beats_edf_under_overload(self):
        lam, H, k = 10.0, 60.0, 7.0
        wl = PoissonWorkload(lam=lam, horizon=H)
        vd = edf = 0.0
        for seed in range(10):
            jobs = wl.generate(seed)
            capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=H / 4, rng=seed + 900)
            vd += simulate(jobs, capacity, VDoverScheduler(k=k)).value
            edf += simulate(jobs, capacity, EDFScheduler()).value
        assert vd > edf
