"""Cached prefix-sum capacity index: O(log n) ``integrate``/``advance``.

Every paper artifact funnels through :meth:`CapacityFunction.advance` /
:meth:`~CapacityFunction.integrate` — the engine calls them on *every*
dispatch to predict completion instants exactly.  The naive base-class
implementations rescan the piecewise-constant trajectory linearly, which
makes a paper-scale run (~2000 jobs × a long Markov capacity path)
quadratic-ish.  This module supplies the shared index that makes both
queries logarithmic:

* each trajectory materialises a cumulative-work array
  ``W[i] = ∫₀^{bp[i]} c(τ) dτ`` alongside its breakpoint array ``bp``;
* ``integrate(a, b)`` becomes two :func:`bisect.bisect_right` lookups plus
  linear interpolation: ``cumulative(b) − cumulative(a)``;
* ``advance(t, w)`` becomes a :func:`bisect.bisect_left` (searchsorted) on
  ``W`` for the target cumulative work, then one division.

Incremental-extension contract
------------------------------
Stochastic generators (e.g. :class:`repro.capacity.markov.
MarkovModulatedCapacity`) extend their realized path lazily.  Such models
override :meth:`PrefixIndexedCapacity._materialize`, which must guarantee,
on return, that ``bp``/``W`` (and the model's notion of the final
segment's validity) cover time ``t``.  The arrays are **append-only**:
entries, once observed, never change — this is what makes repeated queries
consistent within a run and results reproducible across query orders.

Exactness contract
------------------
The index performs *the same arithmetic* as the historical linear
implementations of the shipped piecewise models (identical prefix sums,
identical ``target − 1e-15`` slack when locating the completion piece,
identical ``max(t0, ·)`` one-ulp guard), so simulation results are
bit-identical to the pre-index code.  ``docs/PERFORMANCE.md`` records the
invariants consumers rely on; :func:`crosscheck_index` verifies
indexed-vs-naive agreement at runtime and is exercised by the
``perf_smoke`` tier-1 marker.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import List, Sequence

from repro.capacity.base import CapacityFunction, ensure_band
from repro.errors import CapacityError

__all__ = [
    "PrefixIndexedCapacity",
    "build_prefix",
    "naive_integrate",
    "naive_advance",
    "crosscheck_index",
]

#: Slack used when locating the piece in which a target cumulative work is
#: reached.  Matches the historical linear implementations exactly — do
#: not change without re-baselining bit-identity (docs/PERFORMANCE.md).
ADVANCE_SLACK = 1e-15


def build_prefix(breakpoints: Sequence[float], rates: Sequence[float]) -> List[float]:
    """Return the cumulative-work array ``W[i] = ∫₀^{bp[i]} c`` for a
    piecewise-constant trajectory (``rates[i]`` holds on
    ``[bp[i], bp[i+1])``).  ``W[0]`` is always ``0.0``."""
    cum = [0.0]
    for i in range(1, len(breakpoints)):
        cum.append(cum[-1] + (breakpoints[i] - breakpoints[i - 1]) * rates[i - 1])
    return cum


class PrefixIndexedCapacity(CapacityFunction):
    """Mixin base for piecewise-backed models sharing the prefix-sum index.

    Subclass contract
    -----------------
    * ``self._bp`` — sorted breakpoints, ``_bp[0] == 0.0``;
    * ``self._cum`` — same length, ``_cum[i] = ∫₀^{bp[i]} c`` (use
      :func:`build_prefix`, or append increments for lazy paths);
    * :meth:`_rate_at` — the constant rate on ``[bp[i], bp[i+1])`` (and past
      ``bp[-1]`` for ``i == len(bp) − 1``, within the materialized window);
    * :meth:`_materialize` — extend the arrays to cover time ``t``
      (default: no-op, for fully materialized models).

    Given that, :meth:`cumulative`, :meth:`integrate`, :meth:`advance` and
    :meth:`next_change` are all O(log n).
    """

    supports_prefix_index = True

    _bp: List[float]
    _cum: List[float]

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _rate_at(self, i: int) -> float:
        """Rate on the ``i``-th segment.  Subclasses must override."""
        raise NotImplementedError  # pragma: no cover - abstract hook

    def _materialize(self, t: float) -> None:
        """Ensure the index covers time ``t`` (append-only extension).

        No-op by default; lazy stochastic models override (see module
        docstring for the incremental-extension contract)."""

    # ------------------------------------------------------------------
    # Indexed queries
    # ------------------------------------------------------------------
    def segment_index(self, t: float) -> int:
        """Index of the segment containing ``t`` (segments close on the
        left), materializing the path as needed."""
        self._materialize(t)
        return max(0, bisect_right(self._bp, t) - 1)

    def cumulative(self, t: float) -> float:
        """Exact prefix integral ``∫₀^t c`` from the index: one bisect plus
        linear interpolation inside the containing segment."""
        if t < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t!r}")
        i = self.segment_index(t)
        return self._cum[i] + (t - self._bp[i]) * self._rate_at(i)

    def integrate(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise CapacityError(f"reversed interval: [{t0}, {t1}]")
        return self.cumulative(t1) - self.cumulative(t0)

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        if work == 0.0:
            return t0
        # c >= lower > 0 bounds the completion instant, so lazy models can
        # materialize exactly as far as the search can reach.
        limit = t0 + work / self._lower
        if horizon < limit:
            limit = horizon
        self._materialize(limit)
        target = self.cumulative(t0) + work
        i0 = max(0, bisect_right(self._bp, t0) - 1)
        # searchsorted on W: first segment whose *start* cumulative work
        # reaches the target (with the historical slack), minus one.
        i = bisect_left(self._cum, target - ADVANCE_SLACK, i0 + 1) - 1
        # max() guards against one-ulp drift below t0 when `work` is tiny
        # relative to the prefix integral (division rounding).
        t = max(t0, self._bp[i] + (target - self._cum[i]) / self._rate_at(i))
        return t if t <= horizon else math.inf

    def advance_from(
        self, t0: float, cum0: float, work: float, horizon: float = math.inf
    ) -> float:
        """:meth:`advance` with a caller-supplied anchor ``cum0``.

        ``cum0`` must be exactly ``self.cumulative(t0)`` — the kernel
        already holds that value for the running segment's start, so
        passing it here skips recomputing the prefix integral.  Apart from
        reusing the anchor, the arithmetic is identical to
        :meth:`advance`, hence bit-identical results (the index is
        append-only, so a ``cumulative(t0)`` computed earlier never goes
        stale)."""
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        if work == 0.0:
            return t0
        limit = t0 + work / self._lower
        if horizon < limit:
            limit = horizon
        self._materialize(limit)
        target = cum0 + work
        i0 = max(0, bisect_right(self._bp, t0) - 1)
        i = bisect_left(self._cum, target - ADVANCE_SLACK, i0 + 1) - 1
        t = max(t0, self._bp[i] + (target - self._cum[i]) / self._rate_at(i))
        return t if t <= horizon else math.inf

    def next_change(self, t: float, horizon: float) -> float:
        if math.isfinite(horizon):
            self._materialize(horizon)
        else:
            self._materialize(t)
        i = bisect_right(self._bp, t)
        if i < len(self._bp) and self._bp[i] < horizon:
            return self._bp[i]
        return horizon

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_index_invariants(self) -> None:
        """Validate the index structure; raises :class:`CapacityError` on
        violation.  Cheap enough for tests; the engine relies on exactly
        these properties (see docs/PERFORMANCE.md):

        * ``bp``/``cum`` have equal length, ``bp`` strictly increasing
          from ``0.0``, ``cum[0] == 0.0``;
        * ``cum`` increments are *exactly* ``(bp[i+1] − bp[i]) ·
          rate_at(i)`` (the same arithmetic the naive scan performs);
        * every segment rate lies in the declared band (tolerantly).
        """
        bp, cum = self._bp, self._cum
        if len(bp) != len(cum):
            raise CapacityError(
                f"index arrays out of sync: {len(bp)} breakpoints, "
                f"{len(cum)} prefix sums"
            )
        if not bp or bp[0] != 0.0 or cum[0] != 0.0:
            raise CapacityError("index must start at (bp=0.0, W=0.0)")
        for i in range(len(bp) - 1):
            if bp[i + 1] <= bp[i]:
                raise CapacityError(
                    f"breakpoints not strictly increasing at {i}: "
                    f"{bp[i]} -> {bp[i + 1]}"
                )
            expected = cum[i] + (bp[i + 1] - bp[i]) * self._rate_at(i)
            if cum[i + 1] != expected:
                raise CapacityError(
                    f"prefix sum mismatch at {i}: {cum[i + 1]!r} != {expected!r}"
                )
        rates = [self._rate_at(i) for i in range(len(bp))]
        ensure_band(
            self._lower, self._upper, min(rates), max(rates),
            what="indexed segment rates",
        )


# ----------------------------------------------------------------------
# Naive reference implementations (linear scans over `pieces`)
# ----------------------------------------------------------------------
def naive_integrate(capacity: CapacityFunction, t0: float, t1: float) -> float:
    """The pre-index linear-scan ``integrate`` — the reference semantics
    every indexed implementation is cross-checked against."""
    return CapacityFunction.integrate(capacity, t0, t1)


def naive_advance(
    capacity: CapacityFunction, t0: float, work: float, horizon: float = math.inf
) -> float:
    """The pre-index linear-scan ``advance`` (reference semantics)."""
    return CapacityFunction.advance(capacity, t0, work, horizon)


def crosscheck_index(
    capacity: CapacityFunction,
    t0: float,
    t1: float,
    *,
    n_queries: int = 64,
    rel_tol: float = 1e-9,
) -> int:
    """Verify indexed ``integrate``/``advance`` against the naive linear
    scans on a grid of sub-intervals of ``[t0, t1]``.

    Returns the number of (integrate, advance) query pairs checked; raises
    :class:`CapacityError` on the first disagreement beyond ``rel_tol``
    (relative, with a matching absolute floor).  Used by the ``perf_smoke``
    tier-1 check and the property suite.
    """
    if not (0.0 <= t0 < t1):
        raise CapacityError(f"need 0 <= t0 < t1, got [{t0}, {t1}]")
    span = t1 - t0
    checked = 0
    for k in range(n_queries):
        a = t0 + span * k / n_queries
        b = t0 + span * (k + 1) / n_queries
        fast = capacity.integrate(a, b)
        slow = naive_integrate(capacity, a, b)
        if not math.isclose(fast, slow, rel_tol=rel_tol, abs_tol=rel_tol):
            raise CapacityError(
                f"indexed integrate([{a}, {b}]) = {fast!r} disagrees with "
                f"naive scan {slow!r}"
            )
        if slow > 0.0:
            fast_t = capacity.advance(a, slow)
            slow_t = naive_advance(capacity, a, slow)
            if not math.isclose(fast_t, slow_t, rel_tol=rel_tol, abs_tol=rel_tol):
                raise CapacityError(
                    f"indexed advance({a}, {slow}) = {fast_t!r} disagrees "
                    f"with naive scan {slow_t!r}"
                )
        checked += 1
    return checked
