"""Unit tests for empirical competitive-ratio estimation."""

import pytest

from repro.analysis import empirical_ratio, worst_case_ratio
from repro.capacity import ConstantCapacity
from repro.core import EDFScheduler, VDoverScheduler
from repro.errors import AnalysisError
from repro.sim import Job


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


FEASIBLE = [J(0, 0.0, 1.0, 3.0, v=2.0), J(1, 1.0, 1.0, 4.0, v=3.0)]


class TestEmpiricalRatio:
    def test_feasible_instance_ratio_one(self):
        est = empirical_ratio(
            FEASIBLE, ConstantCapacity(1.0), EDFScheduler(), reference="optimal"
        )
        assert est.ratio == pytest.approx(1.0)
        assert est.reference_kind == "optimal"

    def test_generated_reference_lower_bounds(self):
        est_gen = empirical_ratio(
            FEASIBLE, ConstantCapacity(1.0), EDFScheduler(), reference="generated"
        )
        est_opt = empirical_ratio(
            FEASIBLE, ConstantCapacity(1.0), EDFScheduler(), reference="optimal"
        )
        assert est_gen.ratio <= est_opt.ratio + 1e-12

    def test_greedy_reference(self):
        est = empirical_ratio(
            FEASIBLE, ConstantCapacity(1.0), VDoverScheduler(k=2.0), reference="greedy"
        )
        assert 0.0 <= est.ratio <= 1.0 + 1e-12

    def test_unknown_reference_rejected(self):
        with pytest.raises(AnalysisError):
            empirical_ratio(
                FEASIBLE, ConstantCapacity(1.0), EDFScheduler(), reference="magic"
            )

    def test_empty_reference_value_gives_ratio_one(self):
        est = empirical_ratio([], ConstantCapacity(1.0), EDFScheduler(), reference="generated")
        assert est.ratio == 1.0


class TestWorstCase:
    def test_min_over_family(self):
        overloaded = [J(0, 0.0, 2.0, 2.0, v=1.0), J(1, 0.0, 2.0, 2.1, v=5.0)]
        instances = [
            (FEASIBLE, ConstantCapacity(1.0)),
            (overloaded, ConstantCapacity(1.0)),
        ]
        worst = worst_case_ratio(instances, EDFScheduler(), reference="optimal")
        # On the overloaded instance EDF completes the worthless job only.
        assert worst == pytest.approx(0.2)

    def test_empty_family_rejected(self):
        with pytest.raises(AnalysisError):
            worst_case_ratio([], EDFScheduler())
