"""Filesystem fault injection: torn writes, bit rot, ENOSPC, lying fsyncs.

The storage twin of :mod:`repro.faults.spec`: a declarative, composable
:class:`StorageFaultSpec` that wraps any :class:`~repro.store.directory.
Directory` in a :class:`FaultyDirectory`.  The wrapper threads one
*global byte cursor* through every file write in the tree (subdirectory
wrappers share it), so a fault "at byte offset k" means the k-th byte
the store ever writes — which is how the property suite crashes a run
at **every** offset and asserts recovery from each.

Fault kinds:

``torn_write``
    The write that crosses global offset ``at`` persists only its
    prefix up to ``at``, then raises :class:`~repro.errors.StorageFault`
    — the process died mid-``write()``.  Every later write also raises
    (the process is dead).  Tests then call
    :meth:`~repro.store.directory.MemoryDirectory.crash` to drop
    whatever was never fsynced.

``bit_flip``
    The byte at global offset ``at`` is written with bit ``bit``
    inverted — silent media corruption.  The write *succeeds*; only the
    CRC32 framing can catch it later.

``enospc``
    The disk fills at global offset ``at``: the crossing write persists
    its prefix and raises ``OSError(ENOSPC)``, as do all later writes.

``fsync_lie``
    ``fsync`` (file and directory) silently does nothing — a misbehaving
    consumer drive.  Composed with ``torn_write`` or a crash, data the
    store believed durable is gone.

Composability mirrors the sensor faults: specs apply one at a time,
``spec_b.apply(spec_a.apply(directory))``, each wrapper counting the
bytes that reach *it*.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from repro.errors import StorageError, StorageFault
from repro.store.directory import Directory, FileHandle

__all__ = ["STORAGE_FAULT_KINDS", "StorageFaultSpec", "FaultyDirectory"]

#: The closed set of injectable storage fault kinds.
STORAGE_FAULT_KINDS = ("torn_write", "bit_flip", "enospc", "fsync_lie")


@dataclass(frozen=True)
class StorageFaultSpec:
    """A serializable recipe for one storage fault.

    ``at`` is the global byte offset (across all files, in write order)
    at which the fault fires; ``fsync_lie`` ignores it.  ``options``
    carries kind-specific extras (``bit`` for ``bit_flip``).
    """

    kind: str
    at: int = 0
    options: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in STORAGE_FAULT_KINDS:
            raise StorageError(
                f"unknown storage fault kind {self.kind!r}; expected one "
                f"of {STORAGE_FAULT_KINDS}"
            )
        if self.at < 0:
            raise StorageError(f"fault offset must be >= 0, got {self.at!r}")

    @property
    def label(self) -> str:
        if self.kind == "fsync_lie":
            return "fsync-lie"
        return f"{self.kind}@{self.at}"

    def apply(self, directory: Directory) -> "FaultyDirectory":
        return FaultyDirectory(directory, self)


class _FaultState:
    """Shared across a FaultyDirectory and all its subdir wrappers."""

    __slots__ = ("written", "fired")

    def __init__(self) -> None:
        self.written = 0  # global byte cursor
        self.fired = False


class _FaultyFile:
    def __init__(self, inner: FileHandle, spec: StorageFaultSpec,
                 state: _FaultState) -> None:
        self._inner = inner
        self._spec = spec
        self._state = state

    def write(self, data: bytes) -> None:
        spec, state = self._spec, self._state
        if spec.kind == "torn_write":
            if state.fired:
                raise StorageFault(spec.kind, spec.at)
            if state.written + len(data) > spec.at:
                keep = spec.at - state.written
                if keep > 0:
                    self._inner.write(data[:keep])
                state.written = spec.at
                state.fired = True
                raise StorageFault(spec.kind, spec.at)
            self._inner.write(data)
            state.written += len(data)
            return
        if spec.kind == "enospc":
            if state.fired:
                raise OSError(errno.ENOSPC, "no space left on device")
            if state.written + len(data) > spec.at:
                keep = spec.at - state.written
                if keep > 0:
                    self._inner.write(data[:keep])
                state.written = spec.at
                state.fired = True
                raise OSError(errno.ENOSPC, "no space left on device")
            self._inner.write(data)
            state.written += len(data)
            return
        if spec.kind == "bit_flip":
            lo, hi = state.written, state.written + len(data)
            if not state.fired and lo <= spec.at < hi:
                i = spec.at - lo
                bit = int(self._spec.options.get("bit", 0)) % 8
                mutated = bytearray(data)
                mutated[i] ^= 1 << bit
                data = bytes(mutated)
                state.fired = True
            self._inner.write(data)
            state.written += len(data)
            return
        # fsync_lie: writes pass through untouched.
        self._inner.write(data)
        state.written += len(data)

    def flush(self) -> None:
        self._inner.flush()

    def fsync(self) -> None:
        if self._spec.kind == "fsync_lie":
            return  # claims success, persists nothing
        self._inner.fsync()

    def close(self) -> None:
        self._inner.close()

    def tell(self) -> int:
        return self._inner.tell()


class FaultyDirectory:
    """A :class:`Directory` decorator that injects one storage fault.

    All byte-offset accounting is global across the directory tree:
    ``subdir`` returns a wrapper over the inner subdirectory *sharing*
    this wrapper's cursor, so "crash at byte k" is well-defined for a
    multi-directory store layout.
    """

    def __init__(
        self,
        inner: Directory,
        spec: StorageFaultSpec,
        _state: Optional[_FaultState] = None,
    ) -> None:
        self._inner = inner
        self._spec = spec
        self._state = _state if _state is not None else _FaultState()

    @property
    def path(self):
        return self._inner.path

    @property
    def fired(self) -> bool:
        """True once the fault has been triggered."""
        return self._state.fired

    @property
    def bytes_written(self) -> int:
        """Global bytes written through this wrapper tree so far."""
        return self._state.written

    # -- wrapped protocol -------------------------------------------------
    def create(self, name: str) -> FileHandle:
        return _FaultyFile(self._inner.create(name), self._spec, self._state)

    def open_append(self, name: str) -> FileHandle:
        return _FaultyFile(
            self._inner.open_append(name), self._spec, self._state
        )

    def read_bytes(self, name: str) -> bytes:
        return self._inner.read_bytes(name)

    def exists(self, name: str) -> bool:
        return self._inner.exists(name)

    def listdir(self) -> List[str]:
        return self._inner.listdir()

    def rename(self, old: str, new: str) -> None:
        self._inner.rename(old, new)

    def remove(self, name: str) -> None:
        self._inner.remove(name)

    def truncate(self, name: str, size: int) -> None:
        self._inner.truncate(name, size)

    def fsync_dir(self) -> None:
        if self._spec.kind == "fsync_lie":
            return
        self._inner.fsync_dir()

    def subdir(self, name: str) -> "FaultyDirectory":
        return FaultyDirectory(
            self._inner.subdir(name), self._spec, self._state
        )
