"""Dover (Koren & Shasha 1995) adapted to varying capacity via a point
estimate ``ĉ`` — the paper's comparison baseline (Section IV).

Dover is optimal for *constant* capacity (competitive ratio
``1/(1+√k)²``).  The paper evaluates it under varying capacity by giving it
an estimate ``ĉ`` of the future rate, against which it computes laxities:
``ĉ`` too low under-uses capacity spikes (jobs are abandoned that could
still finish), ``ĉ`` too high over-commits during capacity troughs (running
jobs blow their deadlines).  V-Dover dominates it by being conservative
*and* keeping a supplement queue.
"""

from __future__ import annotations

from repro.analysis.theory import dover_beta
from repro.core.dover_family import DoverFamilyScheduler
from repro.errors import SchedulingError

__all__ = ["DoverScheduler"]


class DoverScheduler(DoverFamilyScheduler):
    """Koren–Shasha Dover with a fixed future-capacity estimate.

    Parameters
    ----------
    k:
        Importance-ratio bound; sets the classic threshold ``β = 1 + √k``
        unless ``beta`` overrides it.
    c_hat:
        The capacity estimate used for laxities (the paper sweeps
        ``ĉ ∈ {1.0, 10.5, 24.5, 35.0}``), or the string ``"sensed"`` for a
        capacity-tracking Dover whose ĉ follows the instantaneous sensor —
        refreshed at every interrupt through the graceful-degradation
        ladder of docs/ROBUSTNESS.md.  The sensed variant is the fault
        sweep's sensor-consuming baseline: noise, staleness and dropout on
        the sensing channel move its decisions, while V-Dover (which only
        trusts ``c̲``) is immune by construction.
    beta:
        Explicit threshold override.
    """

    def __init__(
        self, k: float, c_hat: float | str, *, beta: float | None = None
    ) -> None:
        if k < 1.0:
            raise SchedulingError(f"importance ratio bound must be >= 1, got {k!r}")
        if isinstance(c_hat, str):
            if c_hat != "sensed":
                raise SchedulingError(
                    f"c_hat must be a positive float or 'sensed', got {c_hat!r}"
                )
        elif c_hat <= 0.0:
            raise SchedulingError(f"capacity estimate must be positive: {c_hat!r}")
        super().__init__(
            beta if beta is not None else dover_beta(k),
            rate_estimate="sensed" if c_hat == "sensed" else float(c_hat),
            supplement=False,
        )
        self._c_hat = c_hat if c_hat == "sensed" else float(c_hat)
        self.name = "Dover(sensed)" if c_hat == "sensed" else f"Dover(c={c_hat:g})"

    @property
    def c_hat(self) -> float | str:
        """The configured future-capacity estimate ``ĉ`` (or ``"sensed"``)."""
        return self._c_hat
