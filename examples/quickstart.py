"""Quickstart: schedule a handful of secondary jobs on varying capacity.

Builds a tiny instance by hand, runs four schedulers on the same capacity
trajectory and prints what each one did — a five-minute tour of the API.

Run:  python examples/quickstart.py
"""

from repro import (
    DoverScheduler,
    EDFScheduler,
    Job,
    PiecewiseConstantCapacity,
    VDoverScheduler,
    simulate,
)
from repro.analysis import render_table


def main() -> None:
    # A server whose residual capacity steps 2 -> 1 -> 4 (a primary-job
    # burst in the middle).  Declared bounds: the scheduler only knows
    # capacity stays within [1, 4].
    capacity = PiecewiseConstantCapacity(
        breakpoints=[0.0, 4.0, 10.0],
        rates=[2.0, 1.0, 4.0],
    )

    # Five secondary jobs: (id, release, workload, deadline, value).
    jobs = [
        Job(0, release=0.0, workload=6.0, deadline=8.0, value=4.0),
        Job(1, release=1.0, workload=2.0, deadline=5.0, value=6.0),
        Job(2, release=2.0, workload=4.0, deadline=16.0, value=3.0),
        Job(3, release=5.0, workload=3.0, deadline=9.0, value=9.0),
        Job(4, release=9.0, workload=8.0, deadline=13.0, value=5.0),
    ]
    offered = sum(j.value for j in jobs)
    print(f"{len(jobs)} jobs, total offered value {offered:g}\n")

    schedulers = [
        EDFScheduler(),
        VDoverScheduler(k=3.0),            # k = max/min value density bound
        DoverScheduler(k=3.0, c_hat=1.0),  # pessimistic capacity estimate
        DoverScheduler(k=3.0, c_hat=4.0),  # optimistic capacity estimate
    ]

    rows = []
    for scheduler in schedulers:
        result = simulate(jobs, capacity, scheduler, validate=True)
        rows.append(
            [
                scheduler.name,
                result.value,
                f"{100 * result.normalized_value:.1f}%",
                ",".join(map(str, result.completed_ids)) or "-",
                ",".join(map(str, result.failed_ids)) or "-",
            ]
        )
    print(
        render_table(
            ["scheduler", "value", "% of offered", "completed", "failed"],
            rows,
            float_fmt="{:.1f}",
        )
    )

    # Inspect one schedule in detail: who ran when, at what rate.
    result = simulate(jobs, capacity, VDoverScheduler(k=3.0), validate=True)
    print("\nV-Dover execution trace:")
    for seg in result.trace.segments:
        print(
            f"  [{seg.start:6.2f}, {seg.end:6.2f})  job {seg.jid}  "
            f"({seg.work:.2f} units of work)"
        )


if __name__ == "__main__":
    main()
