"""Unit tests for the scheduler job queues (Qedf/Qother/Qsupp semantics)."""

import pytest

from repro.errors import SchedulingError
from repro.sim import Job, JobQueue, edf_key, latest_deadline_key


def J(jid, deadline):
    return Job(jid, 0.0, 1.0, deadline, 1.0)


class TestEdfOrder:
    def test_earliest_deadline_first(self):
        q = JobQueue(edf_key)
        q.insert(J(0, 5.0))
        q.insert(J(1, 2.0))
        q.insert(J(2, 8.0))
        assert q.dequeue().deadline == 2.0
        assert q.dequeue().deadline == 5.0
        assert q.dequeue().deadline == 8.0

    def test_tie_breaks_by_id(self):
        q = JobQueue(edf_key)
        q.insert(J(5, 3.0))
        q.insert(J(1, 3.0))
        assert q.dequeue().jid == 1

    def test_first_does_not_remove(self):
        q = JobQueue(edf_key)
        q.insert(J(0, 5.0))
        assert q.first().jid == 0
        assert len(q) == 1


class TestLatestDeadlineOrder:
    def test_latest_first(self):
        """Qsupp serves the job with the most remaining deadline room."""
        q = JobQueue(latest_deadline_key)
        q.insert(J(0, 5.0))
        q.insert(J(1, 2.0))
        q.insert(J(2, 8.0))
        assert q.dequeue().deadline == 8.0
        assert q.dequeue().deadline == 5.0


class TestRemoval:
    def test_remove_member(self):
        q = JobQueue(edf_key)
        a, b = J(0, 5.0), J(1, 2.0)
        q.insert(a)
        q.insert(b)
        assert q.remove(b) is b
        assert b not in q
        assert q.dequeue() is a

    def test_remove_absent_returns_none(self):
        q = JobQueue(edf_key)
        assert q.remove(J(9, 1.0)) is None

    def test_tombstones_are_purged(self):
        q = JobQueue(edf_key)
        jobs = [J(i, float(i + 1)) for i in range(10)]
        for job in jobs:
            q.insert(job)
        for job in jobs[:5]:
            q.remove(job)
        assert q.dequeue() is jobs[5]

    def test_reinsert_after_remove(self):
        q = JobQueue(edf_key)
        a = J(0, 5.0)
        q.insert(a)
        q.remove(a)
        q.insert(a)  # must not raise
        assert q.dequeue() is a

    def test_double_insert_raises(self):
        q = JobQueue(edf_key)
        a = J(0, 5.0)
        q.insert(a)
        with pytest.raises(SchedulingError):
            q.insert(a)


class TestEntryQueues:
    def test_tuple_entries(self):
        """Qedf stores (job, t_insert, cslack) tuples keyed by the job."""
        q = JobQueue(edf_key, entry_job=lambda e: e[0], name="Qedf")
        a, b = J(0, 5.0), J(1, 2.0)
        q.insert((a, 1.0, 3.0))
        q.insert((b, 2.0, 4.0))
        job, t_ins, cslack = q.dequeue()
        assert job is b and t_ins == 2.0 and cslack == 4.0

    def test_remove_by_job(self):
        q = JobQueue(edf_key, entry_job=lambda e: e[0])
        a = J(0, 5.0)
        q.insert((a, 1.0, 3.0))
        assert q.remove(a) == (a, 1.0, 3.0)


class TestBulk:
    def test_drain_in_order(self):
        q = JobQueue(edf_key)
        for i, d in enumerate([5.0, 2.0, 8.0, 1.0]):
            q.insert(J(i, d))
        drained = q.drain()
        assert [j.deadline for j in drained] == [1.0, 2.0, 5.0, 8.0]
        assert len(q) == 0

    def test_empty_operations_raise(self):
        q = JobQueue(edf_key)
        with pytest.raises(SchedulingError):
            q.first()
        with pytest.raises(SchedulingError):
            q.dequeue()

    def test_jobs_iteration(self):
        q = JobQueue(edf_key)
        q.insert(J(0, 5.0))
        q.insert(J(1, 2.0))
        assert {j.jid for j in q.jobs()} == {0, 1}

    def test_clear(self):
        q = JobQueue(edf_key)
        q.insert(J(0, 5.0))
        q.clear()
        assert not q
