"""Crash recovery: snapshot/restore and resume must be bit-identical.

The contract under test (docs/ROBUSTNESS.md): for any scheduler, crashing
the engine mid-run (:class:`~repro.faults.EngineCrashPlan`), restoring the
last periodic snapshot into a *fresh* engine, and replaying to the horizon
produces a :class:`~repro.sim.metrics.SimulationResult` equal — with no
float tolerance — to the run that never crashed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity import TwoStateMarkovCapacity
from repro.core import (
    AdmissionEDFScheduler,
    DoverScheduler,
    EDFScheduler,
    FCFSScheduler,
    GreedyDensityScheduler,
    LLFScheduler,
    VDoverScheduler,
)
from repro.errors import RecoveryError, SimulatedCrash
from repro.faults import EngineCrashPlan
from repro.sim import (
    EventJournal,
    SimulationEngine,
    results_bit_identical,
    simulate,
)
from repro.workload.poisson import PoissonWorkload

SCHEDULERS = [
    pytest.param(lambda: EDFScheduler(), id="edf"),
    pytest.param(lambda: LLFScheduler(), id="llf"),
    pytest.param(lambda: FCFSScheduler(), id="fcfs"),
    pytest.param(lambda: GreedyDensityScheduler(), id="greedy"),
    pytest.param(lambda: AdmissionEDFScheduler(), id="edf-ac"),
    pytest.param(lambda: DoverScheduler(k=7.0, c_hat=1.0), id="dover"),
    pytest.param(lambda: VDoverScheduler(k=7.0), id="vdover"),
]


def _instance(seed: int = 5, horizon: float = 12.0):
    workload = PoissonWorkload(
        lam=6.0, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )
    rng = np.random.default_rng(seed)
    jobs = workload.generate(rng)
    capacity = TwoStateMarkovCapacity(
        1.0, 35.0, mean_sojourn=horizon / 4.0, rng=np.random.default_rng(seed + 1)
    )
    return jobs, capacity


@pytest.mark.parametrize("make_scheduler", SCHEDULERS)
@pytest.mark.parametrize("crash_at", [1, 17, 60])
def test_crash_resume_bit_identical(make_scheduler, crash_at):
    jobs, capacity = _instance()
    reference = simulate(jobs, capacity, make_scheduler())

    journal = EventJournal()
    recovered = simulate(
        jobs,
        capacity,
        make_scheduler(),
        faults=[EngineCrashPlan(at_event=crash_at)],
        journal=journal,
        snapshot_every=8,
        recover=True,
    )
    assert recovered.recoveries == 1
    assert results_bit_identical(reference, recovered), (
        f"resume diverged for {reference.scheduler_name}"
    )
    # The journal covers every dispatched event of the recovered run.
    assert len(journal) > crash_at


@pytest.mark.parametrize("make_scheduler", SCHEDULERS)
def test_snapshot_survives_pickling(make_scheduler):
    """Restoring from a pickle round-tripped snapshot (what a real process
    boundary does) is just as exact as restoring the live object."""
    jobs, capacity = _instance(seed=9)
    reference = simulate(jobs, capacity, make_scheduler())

    engine = SimulationEngine(
        jobs,
        capacity,
        make_scheduler(),
        faults=[EngineCrashPlan(at_event=25)],
        snapshot_every=10,
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot.roundtrip()

    fresh = SimulationEngine(jobs, capacity, make_scheduler())
    fresh.restore(snapshot)
    resumed = fresh.run()
    assert results_bit_identical(reference, resumed)


def test_time_based_crash_plan_resumes():
    jobs, capacity = _instance(seed=11)
    reference = simulate(jobs, capacity, EDFScheduler())
    recovered = simulate(
        jobs,
        capacity,
        EDFScheduler(),
        faults=[EngineCrashPlan(at_time=4.0)],
        snapshot_every=8,
        recover=True,
    )
    assert recovered.recoveries == 1
    assert results_bit_identical(reference, recovered)


def test_multiple_crash_plans_all_survived():
    jobs, capacity = _instance(seed=13)
    reference = simulate(jobs, capacity, VDoverScheduler(k=7.0))
    recovered = simulate(
        jobs,
        capacity,
        VDoverScheduler(k=7.0),
        faults=[
            EngineCrashPlan(at_event=10),
            EngineCrashPlan(at_time=6.0),
            EngineCrashPlan(at_event=55),
        ],
        snapshot_every=4,
        recover=True,
    )
    assert recovered.recoveries == 3
    assert results_bit_identical(reference, recovered)


def test_crash_without_snapshotting_is_unrecoverable():
    jobs, capacity = _instance(seed=5)
    engine = SimulationEngine(
        jobs, capacity, EDFScheduler(), faults=[EngineCrashPlan(at_event=5)]
    )
    # snapshot_every defaults on for crash plans; disable the periodic
    # snapshot path by crashing before the first cadence *and* stripping
    # the bootstrap snapshot to simulate a recovery-blind caller.
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    assert excinfo.value.snapshot is not None  # default cadence kicked in

    # recover=False re-raises instead of recovering.
    with pytest.raises(SimulatedCrash):
        simulate(
            jobs,
            capacity,
            EDFScheduler(),
            faults=[EngineCrashPlan(at_event=5)],
        )


def test_restore_rejects_wrong_scheduler():
    jobs, capacity = _instance(seed=5)
    engine = SimulationEngine(
        jobs, capacity, EDFScheduler(), faults=[EngineCrashPlan(at_event=9)]
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot

    other = SimulationEngine(jobs, capacity, VDoverScheduler(k=7.0))
    with pytest.raises(RecoveryError):
        other.restore(snapshot)


def test_restore_rejects_started_engine():
    jobs, capacity = _instance(seed=5)
    engine = SimulationEngine(
        jobs, capacity, EDFScheduler(), faults=[EngineCrashPlan(at_event=9)]
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot

    ran = SimulationEngine(jobs, capacity, EDFScheduler())
    ran.run()
    with pytest.raises(RecoveryError):
        ran.restore(snapshot)


def test_restore_rejects_unknown_jobs():
    jobs, capacity = _instance(seed=5)
    engine = SimulationEngine(
        jobs, capacity, EDFScheduler(), faults=[EngineCrashPlan(at_event=9)]
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot

    fresh = SimulationEngine(jobs[: len(jobs) // 2], capacity, EDFScheduler())
    with pytest.raises(RecoveryError):
        fresh.restore(snapshot)


def test_journal_replay_detects_divergence():
    """Tampering with a journaled record past the snapshot makes the
    resumed engine's replay verification fail loudly."""
    jobs, capacity = _instance(seed=7)
    journal = EventJournal()
    engine = SimulationEngine(
        jobs,
        capacity,
        EDFScheduler(),
        faults=[EngineCrashPlan(at_event=20)],
        journal=journal,
        snapshot_every=8,
    )
    with pytest.raises(SimulatedCrash) as excinfo:
        engine.run()
    snapshot = excinfo.value.snapshot
    assert snapshot.dispatch_count < len(journal)

    # Corrupt one record between the snapshot and the crash point.
    victim = snapshot.dispatch_count
    original = journal._records[victim]
    journal._records[victim] = type(original)(
        index=original.index,
        time=original.time,
        kind=original.kind,
        key="jid:999999",
        version=original.version,
    )

    fresh = SimulationEngine(jobs, capacity, EDFScheduler(), journal=journal)
    fresh.restore(snapshot)
    with pytest.raises(RecoveryError, match="diverged"):
        fresh.run()
