"""Live-daemon telemetry smoke — the telemetry_smoke CI gate.

Spawns a real ``python -m repro serve`` child, drives wire traffic at
it, scrapes the HTTP exposition under load, lints the Prometheus text,
exercises ``repro top`` and ``repro obs trace`` against the live daemon
and its store, then SIGTERM-drains.  Exposition samples are written
under ``test-results/telemetry/`` so CI ships them as artifacts."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.obs.telemetry import lint_prometheus

pytestmark = pytest.mark.telemetry_smoke

REPO = Path(__file__).resolve().parents[2]
ARTIFACT_DIR = REPO / "test-results" / "telemetry"


def _specs_doc():
    return {
        "tenants": [
            {
                "tenant": tenant,
                "horizon": 30.0,
                "scheduler": "edf",
                "capacity": {"kind": "constant", "params": {"rate": 1.0}},
                "queue_budget": 8,
                "snapshot_every": 4,
                "flush_every": 2,
            }
            for tenant in ("t0", "t1")
        ]
    }


def _spawn(store_dir, specs_file, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            str(store_dir),
            "--specs",
            str(specs_file),
            "--no-fsync",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    hello = json.loads(proc.stdout.readline())
    assert hello["event"] == "serving"
    return proc, hello


def _send(port, lines):
    acks = []
    with socket.create_connection(("127.0.0.1", port), timeout=60.0) as sock:
        fh = sock.makefile("rw", encoding="utf-8", newline="\n")
        for line in lines:
            fh.write(line + "\n")
            fh.flush()
            acks.append(json.loads(fh.readline()))
    return acks


def _http(port, path):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=10
    ) as resp:
        return resp.status, resp.headers, resp.read().decode("utf-8")


def _submit(tenant, jid, release, rid=None):
    doc = {
        "type": "submit",
        "tenant": tenant,
        "job": {
            "jid": jid,
            "release": release,
            "workload": 1.0,
            "deadline": release + 5.0,
            "value": 1.0 + jid,
        },
    }
    if rid:
        doc["request_id"] = rid
    return json.dumps(doc)


class TestTelemetrySmoke:
    def test_live_daemon_scrape_top_and_trace(self, tmp_path):
        ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
        store = tmp_path / "store"
        specs = tmp_path / "specs.json"
        specs.write_text(json.dumps(_specs_doc()))
        proc, hello = _spawn(store, specs)
        try:
            port = hello["port"]
            tport = hello["telemetry_port"]
            assert tport, "daemon hello did not announce a telemetry port"

            lines = [
                _submit("t0", jid, 1.0 + 0.5 * jid, rid=f"smoke-{jid}")
                for jid in range(6)
            ]
            lines += [_submit("t1", jid, 1.0 + 0.5 * jid) for jid in range(4)]
            lines.append(
                json.dumps(
                    {"type": "fault", "tenant": "t0", "op": "crash",
                     "time": 2.0, "request_id": "smoke-crash"}
                )
            )
            acks = _send(port, lines)
            assert all(a["ok"] for a in acks), acks
            # ingress minted ids for the rid-less t1 submits
            minted = [a["request_id"] for a in acks[6:10]]
            assert all(r.startswith("ing-") for r in minted)

            # --- HTTP exposition under live traffic -----------------
            status, headers, prom = _http(tport, "/metrics")
            assert status == 200
            assert "version=0.0.4" in headers["Content-Type"]
            problems = lint_prometheus(prom)
            assert problems == [], problems
            assert 'repro_submitted_total{tenant="t0"} 6.0' in prom
            (ARTIFACT_DIR / "metrics.prom").write_text(prom)

            status, _, body = _http(tport, "/metrics.json")
            assert status == 200
            fleet = json.loads(body)["tenants"]
            assert set(fleet) == {"t0", "t1"}
            assert fleet["t0"]["stats"]["forced_crashes"] == 1
            assert fleet["t0"]["slo"]["counters"]["crashes"] == 1.0
            (ARTIFACT_DIR / "metrics.json").write_text(body)

            status, _, body = _http(tport, "/health")
            assert status == 200
            health = json.loads(body)["health"]
            assert health["t0"] == "degraded"  # it crashed and recovered
            assert health["t1"] == "ok"
            (ARTIFACT_DIR / "health.json").write_text(body)

            # --- metrics/health wire messages ------------------------
            ack = _send(
                port, [json.dumps({"type": "metrics", "tenant": "*"})]
            )[0]
            assert ack["ok"] and set(ack["tenants"]) == {"t0", "t1"}

            # --- `repro top` one-shot against the live exposition ----
            top = subprocess.run(
                [
                    sys.executable, "-m", "repro", "top",
                    "--port", str(tport), "--iterations", "1", "--no-clear",
                ],
                capture_output=True,
                text=True,
                timeout=60,
                env=dict(
                    os.environ,
                    PYTHONPATH=str(REPO / "src")
                    + os.pathsep
                    + os.environ.get("PYTHONPATH", ""),
                ),
            )
            assert top.returncode == 0, top.stderr
            assert "TENANT" in top.stdout and "t0" in top.stdout
            (ARTIFACT_DIR / "top.txt").write_text(top.stdout)
        finally:
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        drained = next(
            json.loads(line)
            for line in out.splitlines()
            if json.loads(line).get("event") == "drained"
        )
        assert drained["stats"]["t0"]["slo"]["counters"]["crashes"] == 1.0

        # --- `repro obs trace` across the daemon's exit ---------------
        trace = subprocess.run(
            [
                sys.executable, "-m", "repro", "obs", "trace", "smoke-0",
                "--store", str(store),
            ],
            capture_output=True,
            text=True,
            timeout=60,
            env=dict(
                os.environ,
                PYTHONPATH=str(REPO / "src")
                + os.pathsep
                + os.environ.get("PYTHONPATH", ""),
            ),
        )
        assert trace.returncode == 0, trace.stderr
        assert "request 'smoke-0'" in trace.stdout
        assert "outcome=accepted" in trace.stdout
        (ARTIFACT_DIR / "trace.txt").write_text(trace.stdout)
