"""Hand-crafted instance families realising the paper's negative results.

* :func:`inadmissible_trap` — the Theorem 3(3) family ``I_n``: one job that
  is **not** individually admissible with a value so large that any
  admissibility-trusting online algorithm commits to it, while the realized
  capacity stays at the floor ``c̲`` and the job can never finish.  The
  clairvoyant offline scheduler harvests the stream of small jobs instead;
  the measured online/offline ratio decays like ``1/n`` — empirically
  realising "no online algorithm has positive competitive ratio without
  individual admissibility".

* :func:`locke_trap` — Locke's classical observation that EDF collapses
  under overload: a single long high-value job with the latest deadline is
  starved by a stream of short, nearly worthless, earlier-deadline jobs.
  EDF chases the deadlines and loses the big value; the Dover family
  triages by value and keeps it.

* :func:`feasible_instance` — random *underloaded* instances built by
  construction (jobs are carved out of an explicit witness schedule), used
  to exercise Theorem 2 (EDF captures all value whenever that is possible).
"""

from __future__ import annotations

import numpy as np

from repro.capacity.base import CapacityFunction
from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.errors import InvalidInstanceError
from repro.sim.job import Job
from repro.workload.base import as_generator

__all__ = ["inadmissible_trap", "locke_trap", "feasible_instance"]


def inadmissible_trap(
    n: int,
    *,
    declared_upper: float | None = None,
) -> tuple[list[Job], PiecewiseConstantCapacity]:
    """The Theorem 3(3) adversarial family ``I_n``.

    Construction (with ``c̲ = 1``):

    * the trap ``B``: released at 0, workload ``1.5 n``, deadline ``n``,
      value ``n²``.  Not individually admissible (``p/c̲ = 1.5n > n``), but
      *declared* capacity allows completion (``c̄`` is high); a scheduler
      that trusts value will run it;
    * ``n`` unit jobs: job ``i`` has release ``i``, workload 1, deadline
      ``i+1``, value 1 — individually admissible with zero laxity;
    * one rescue job at the tail (release ``n``, unit workload/value) so
      the online value is positive and the ratio is measurable;
    * realized capacity: constantly ``c̲ = 1`` (a legal member of
      ``C(1, c̄)``), so ``B`` can never finish.

    Any algorithm that commits the processor to ``B`` (V-Dover does: ``B``
    wins every zero-laxity value comparison) scores only the rescue job,
    while offline scores every unit job: ratio ``≈ 2/n → 0``.
    """
    if n < 1:
        raise InvalidInstanceError(f"n must be >= 1, got {n}")
    upper = float(declared_upper) if declared_upper is not None else 4.0 * n
    if upper <= 1.0:
        raise InvalidInstanceError(f"declared upper bound must exceed 1: {upper!r}")
    jobs = [
        Job(jid=0, release=0.0, workload=1.5 * n, deadline=float(n), value=float(n * n))
    ]
    for i in range(n):
        jobs.append(
            Job(
                jid=i + 1,
                release=float(i),
                workload=1.0,
                deadline=float(i + 1),
                value=1.0,
            )
        )
    jobs.append(
        Job(jid=n + 1, release=float(n), workload=1.0, deadline=float(n + 1), value=1.0)
    )
    capacity = PiecewiseConstantCapacity([0.0], [1.0], lower=1.0, upper=upper)
    return jobs, capacity


def locke_trap(
    n: int,
    *,
    short_value: float = 0.05,
) -> tuple[list[Job], PiecewiseConstantCapacity]:
    """EDF's overload pathology (Locke 1986; paper Section I-A).

    One long job ``A``: release 0, workload ``n``, deadline ``n`` (zero
    laxity at unit capacity), value ``n``.  A stream of short jobs with
    *earlier* deadlines and negligible value: job ``i`` releases at
    ``i + 0.05`` with workload 0.6 and deadline ``i + 0.95``.  EDF always
    favours the earlier deadline, so it keeps preempting ``A`` for shorts,
    ``A`` silently dies, and EDF banks only ``≈ 0.05·n`` of value.  The
    Dover family refuses the shorts (they fail the zero-laxity value test
    against ``A``) and keeps the big value.
    """
    if n < 2:
        raise InvalidInstanceError(f"n must be >= 2, got {n}")
    if short_value <= 0.0:
        raise InvalidInstanceError(f"short_value must be positive: {short_value!r}")
    jobs = [Job(jid=0, release=0.0, workload=float(n), deadline=float(n), value=float(n))]
    for i in range(n - 1):
        jobs.append(
            Job(
                jid=i + 1,
                release=i + 0.05,
                workload=0.6,
                deadline=i + 0.95,
                value=float(short_value),
            )
        )
    capacity = PiecewiseConstantCapacity([0.0], [1.0], lower=1.0, upper=2.0)
    return jobs, capacity


def feasible_instance(
    capacity: CapacityFunction,
    n: int,
    horizon: float,
    rng: np.random.Generator | int | None = None,
    *,
    max_release_lead: float = 2.0,
    max_deadline_slack: float = 2.0,
    density_range: tuple[float, float] = (1.0, 7.0),
) -> list[Job]:
    """Random instance that is underloaded *by construction*.

    A witness schedule is drawn first: the horizon is cut at ``n − 1``
    sorted uniform points into ``n`` execution windows, and job ``i`` is
    defined to demand exactly the work the capacity provides in window
    ``i``.  Releases may lead their window by up to ``max_release_lead``
    and deadlines trail it by up to ``max_deadline_slack``, so the witness
    schedule completes every job — the instance is underloaded and
    Theorem 2 applies (EDF must capture all of its value).
    """
    if n < 1:
        raise InvalidInstanceError(f"n must be >= 1, got {n}")
    if horizon <= 0.0:
        raise InvalidInstanceError(f"horizon must be positive: {horizon!r}")
    gen = as_generator(rng)
    cuts = np.sort(gen.uniform(0.0, horizon, size=n - 1)) if n > 1 else np.array([])
    edges = np.concatenate(([0.0], cuts, [horizon]))
    jobs: list[Job] = []
    for i in range(n):
        start, end = float(edges[i]), float(edges[i + 1])
        if end - start < 1e-9:  # degenerate sliver; skip it
            continue
        work = capacity.integrate(start, end)
        if work <= 1e-12:
            continue
        release = max(0.0, start - gen.uniform(0.0, max_release_lead))
        deadline = end + gen.uniform(0.0, max_deadline_slack)
        density = gen.uniform(*density_range)
        jobs.append(
            Job(
                jid=len(jobs),
                release=release,
                workload=work,
                deadline=deadline,
                value=density * work,
            )
        )
    return jobs
