"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.runs == 50
        assert args.lambdas is None

    def test_sweep_kinds(self):
        for kind in ("policy", "supplement", "beta", "delta"):
            args = build_parser().parse_args(["sweep", kind])
            assert args.kind == kind
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "nonsense"])

    def test_faults_kinds(self):
        for kind in ("noise", "staleness", "dropout", "bias"):
            args = build_parser().parse_args(["faults", kind])
            assert args.kind == kind
            assert args.severities is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "gamma-rays"])

    def test_recovery_kinds(self):
        for kind in ("kill", "revocation", "crash-demo"):
            args = build_parser().parse_args(["recovery", kind])
            assert args.kind == kind
            assert args.rates is None
            assert not args.allow_failures
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recovery", "gamma-rays"])

    def test_recovery_flags(self):
        args = build_parser().parse_args(
            [
                "recovery", "kill",
                "--rates", "0", "0.5",
                "--retain", "0.25",
                "--checkpoint", "/tmp/base",
                "--out", "/tmp/sweep.json",
                "--allow-failures",
            ]
        )
        assert args.rates == [0.0, 0.5]
        assert args.retain == 0.25
        assert args.checkpoint == "/tmp/base"
        assert args.out == "/tmp/sweep.json"
        assert args.allow_failures

    def test_allow_failures_on_mc_commands(self):
        for cmd in (["table1"], ["faults", "noise"], ["recovery", "kill"]):
            assert not build_parser().parse_args(cmd).allow_failures
            assert build_parser().parse_args(
                cmd + ["--allow-failures"]
            ).allow_failures

    def test_table1_resilience_flags(self):
        args = build_parser().parse_args(
            ["table1", "--checkpoint", "/tmp/ck", "--timeout", "30", "--retries", "2"]
        )
        assert args.checkpoint == "/tmp/ck"
        assert args.timeout == 30.0
        assert args.retries == 2
        defaults = build_parser().parse_args(["table1"])
        assert defaults.checkpoint is None and defaults.retries == 0


class TestCommands:
    def test_theory(self, capsys):
        assert main(["theory", "--k", "7", "--delta", "35"]) == 0
        out = capsys.readouterr().out
        assert "f(k, δ)" in out
        assert "upper bound" in out

    def test_adversary(self, capsys):
        assert main(["adversary", "--n", "4", "8"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        lines = [l for l in out.splitlines() if l.strip() and l.lstrip()[0].isdigit()]
        ratios = [float(l.split("|")[-1]) for l in lines]
        assert ratios[0] > ratios[1]  # decaying ratio visible from the CLI

    def test_table1_small(self, capsys):
        code = main(
            [
                "table1",
                "--runs", "2",
                "--lambdas", "6",
                "--jobs", "60",
                "--workers", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "V-Dover" in out

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--lam", "6", "--jobs", "60", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out  # now rendered as charts

    def test_sweep_beta_small(self, capsys):
        assert main(["sweep", "beta", "--runs", "2", "--workers", "1"]) == 0
        assert "beta" in capsys.readouterr().out

    def test_faults_small(self, capsys):
        code = main(
            [
                "faults", "noise",
                "--severities", "0", "0.5",
                "--runs", "2",
                "--jobs", "60",
                "--workers", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "noise severity" in out
        assert "Dover(sensed)" in out

    def test_table1_checkpoint_resumes(self, tmp_path, capsys):
        argv = [
            "table1",
            "--runs", "2",
            "--lambdas", "6",
            "--jobs", "60",
            "--workers", "1",
            "--checkpoint", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "table1_lam6.ckpt.jsonl").exists()
        assert main(argv) == 0  # resumes from the checkpoint
        assert capsys.readouterr().out == first


class TestRecoveryCommand:
    def test_crash_demo(self, capsys):
        assert main(["recovery", "crash-demo", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Crash-resume equivalence" in out
        assert "bit-identical" in out
        assert "NO" not in out  # every scheduler resumed exactly

    def test_kill_sweep_small(self, capsys, tmp_path):
        out_file = tmp_path / "recovery.json"
        code = main(
            [
                "recovery", "kill",
                "--rates", "0", "0.5",
                "--runs", "2",
                "--jobs", "40",
                "--workers", "1",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kill rate" in out
        assert "V-Dover" in out
        assert out_file.exists()
        from repro.experiments.store import load_sweep

        loaded = load_sweep(out_file)
        assert loaded.swept_values == [0.0, 0.5]

    def test_recovery_checkpoint_resumes(self, tmp_path, capsys):
        argv = [
            "recovery", "kill",
            "--rates", "0", "0.2",
            "--runs", "2",
            "--jobs", "40",
            "--workers", "1",
            "--checkpoint", str(tmp_path / "rec"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "rec.cell0").exists()
        assert (tmp_path / "rec.cell1").exists()
        assert main(argv) == 0  # resumes from the per-cell checkpoints
        assert capsys.readouterr().out == first


class TestFailureExitCodes:
    """Satellite: Monte-Carlo commands exit non-zero when replications
    failed, unless --allow-failures."""

    class _StubResult:
        def __init__(self, failures):
            self.failures = failures

        def render(self):
            return "stub table"

    def _patch_faults(self, monkeypatch, failures):
        import repro.experiments.faults_sweep as mod

        monkeypatch.setattr(
            mod,
            "run_faults_sweep",
            lambda *a, **kw: self._StubResult(failures),
        )

    def test_failures_exit_nonzero(self, monkeypatch, capsys):
        self._patch_faults(monkeypatch, [(0.5, "replication #3 failed: boom")])
        assert main(["faults", "noise", "--runs", "2"]) == 1
        err = capsys.readouterr().err
        assert "1 replication(s) failed" in err
        assert "--allow-failures" in err

    def test_allow_failures_exits_zero(self, monkeypatch, capsys):
        self._patch_faults(monkeypatch, [(0.5, "replication #3 failed: boom")])
        assert main(["faults", "noise", "--runs", "2", "--allow-failures"]) == 0
        err = capsys.readouterr().err
        assert "excluded" in err  # still loudly reported

    def test_no_failures_exit_zero(self, monkeypatch, capsys):
        self._patch_faults(monkeypatch, [])
        assert main(["faults", "noise", "--runs", "2"]) == 0
        assert capsys.readouterr().err == ""


class TestSimulateCommand:
    @pytest.fixture
    def instance_file(self, tmp_path):
        from repro.capacity import PiecewiseConstantCapacity
        from repro.sim import Job
        from repro.workload import save_instance

        path = tmp_path / "inst.json"
        jobs = [Job(0, 0.0, 3.0, 6.0, 2.0), Job(1, 1.0, 2.0, 4.0, 5.0)]
        cap = PiecewiseConstantCapacity([0.0, 5.0], [1.0, 2.0])
        save_instance(path, jobs, cap)
        return str(path)

    @pytest.mark.parametrize(
        "scheduler", ["vdover", "dover", "edf", "edf-ac", "llf", "greedy", "fcfs"]
    )
    def test_every_scheduler_choice_runs(self, instance_file, scheduler, capsys):
        assert main(["simulate", instance_file, "--scheduler", scheduler]) == 0
        out = capsys.readouterr().out
        assert "value" in out and "completed" in out

    def test_gantt_flag(self, instance_file, capsys):
        assert main(["simulate", instance_file, "--gantt"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "c(t)" in out

    def test_instance_without_capacity_errors(self, tmp_path, capsys):
        from repro.sim import Job
        from repro.workload import save_instance

        path = tmp_path / "nocap.json"
        save_instance(path, [Job(0, 0.0, 1.0, 2.0, 1.0)])
        assert main(["simulate", str(path)]) == 1

    def test_figure1_draws_charts(self, capsys):
        assert main(["figure1", "--lam", "6", "--jobs", "40", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out
        assert "V-Dover" in out


class TestMultiCommand:
    def test_multi_kinds(self):
        for kind in ("run", "crash-demo"):
            args = build_parser().parse_args(["multi", kind])
            assert args.kind == kind
            assert args.m == 4
            assert args.lam is None  # per-kind default resolved in handler
        with pytest.raises(SystemExit):
            build_parser().parse_args(["multi", "gamma-rays"])

    def test_multi_flags(self):
        args = build_parser().parse_args(
            [
                "multi", "run",
                "--m", "3",
                "--lam", "12",
                "--runs", "2",
                "--seed", "7",
                "--jobs", "80",
                "--workers", "1",
            ]
        )
        assert args.m == 3
        assert args.lam == 12.0
        assert args.runs == 2
        assert args.jobs == 80.0

    def test_multi_run_small(self, capsys):
        code = main(
            ["multi", "run", "--m", "3", "--runs", "2", "--jobs", "60"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "m=3 heterogeneous" in out
        assert "Global-V-Dover" in out
        assert "Part(LW/V-Dover)" in out

    def test_multi_crash_demo(self, capsys):
        assert main(["multi", "crash-demo", "--m", "3", "--jobs", "60"]) == 0
        out = capsys.readouterr().out
        assert "Multiprocessor crash-resume equivalence" in out
        assert "bit-identical" in out
        assert "NO" not in out  # every policy resumed exactly
