"""Direct tests of the CapacityFunction base-class contract and defaults."""

import math
from typing import Iterator

import pytest

from repro.capacity import CapacityFunction
from repro.capacity.base import Piece
from repro.errors import CapacityError


class TwoPhase(CapacityFunction):
    """Minimal subclass implementing only the abstract methods, so the
    default integrate/advance/next_change/mean implementations get
    exercised directly."""

    def __init__(self):
        super().__init__(1.0, 3.0)

    def value(self, t: float) -> float:
        return 1.0 if t < 10.0 else 3.0

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        if t0 < 10.0:
            yield (t0, min(10.0, t1), 1.0)
        if t1 > 10.0:
            yield (max(t0, 10.0), t1, 3.0)


@pytest.fixture
def cap():
    return TwoPhase()


class TestBounds:
    def test_properties(self, cap):
        assert cap.lower == 1.0
        assert cap.upper == 3.0
        assert cap.delta == 3.0

    @pytest.mark.parametrize("lo,hi", [(0.0, 1.0), (-1.0, 1.0), (2.0, 1.0)])
    def test_invalid_bounds_rejected(self, lo, hi):
        class Bad(TwoPhase):
            def __init__(self):
                CapacityFunction.__init__(self, lo, hi)

        with pytest.raises(CapacityError):
            Bad()


class TestDefaultImplementations:
    def test_integrate_via_pieces(self, cap):
        assert cap.integrate(5.0, 15.0) == pytest.approx(5.0 + 15.0)

    def test_integrate_reversed_rejected(self, cap):
        with pytest.raises(CapacityError):
            cap.integrate(2.0, 1.0)

    def test_advance_within_first_phase(self, cap):
        assert cap.advance(0.0, 4.0) == pytest.approx(4.0)

    def test_advance_across_phase(self, cap):
        # 10 units of work in phase 1 takes until t=10; 6 more at rate 3.
        assert cap.advance(0.0, 16.0) == pytest.approx(12.0)

    def test_advance_zero_and_negative(self, cap):
        assert cap.advance(3.0, 0.0) == 3.0
        with pytest.raises(CapacityError):
            cap.advance(3.0, -1.0)

    def test_advance_horizon(self, cap):
        assert cap.advance(0.0, 100.0, horizon=5.0) == math.inf

    def test_advance_at_floor_never_spuriously_inf(self):
        """Regression: with c(t) == lower across the whole search window
        the piece sum can land one ulp short of ``work``; since any finite
        workload completes by ``t0 + work / lower``, advance must snap to
        that limit rather than report ``inf`` (which would make the engine
        skip a guaranteed completion event and over-execute the job)."""

        class Floor(CapacityFunction):
            def __init__(self):
                super().__init__(4.0 / 3.0, 20.0)

            def value(self, t: float) -> float:
                return 4.0 / 3.0

            def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
                if t1 > t0:
                    yield (t0, t1, 4.0 / 3.0)

        cap = Floor()
        t0, work = 9.958980469194795, 0.3457169679285823
        finish = cap.advance(t0, work)
        assert finish == t0 + work / cap.lower  # not inf
        assert cap.integrate(t0, finish) == pytest.approx(work, rel=1e-12)

    def test_advance_inverse_property(self, cap):
        t = cap.advance(7.0, 20.0)
        assert cap.integrate(7.0, t) == pytest.approx(20.0)

    def test_mean(self, cap):
        assert cap.mean(0.0, 20.0) == pytest.approx((10.0 + 30.0) / 20.0)
        with pytest.raises(CapacityError):
            cap.mean(5.0, 5.0)

    def test_next_change_default(self, cap):
        assert cap.next_change(0.0, 50.0) == 10.0
        assert cap.next_change(10.0, 50.0) == 50.0
        assert cap.next_change(2.0, 5.0) == 5.0
