"""The discrete-event simulation engine.

The engine owns the ground truth of a run: job remaining workloads, the
processor assignment, the event heap and the trace.  Schedulers only decide
*which* job should occupy the processor after each interrupt; the engine
performs the mechanics:

* **exact completion prediction** — when a job starts (or resumes) at time
  ``t`` with remaining workload ``w``, its completion instant is
  ``capacity.advance(t, w)``, computed exactly on the piecewise-constant
  trajectory.  For prefix-indexed capacities (``supports_prefix_index``,
  see :mod:`repro.capacity.prefix`) this is an O(log n) searchsorted on the
  cumulative-work array, and the engine additionally anchors each running
  segment at ``W(seg_start)`` so progress queries cost one index lookup —
  with values bit-identical to the naive linear scan.  A preemption
  invalidates the in-flight completion event via a per-job version token
  (lazy deletion on the heap);
* **deadline policing** — firm deadlines fire as events; a completion at
  exactly the deadline wins the tie (succeeds);
* **alarm plumbing** — schedulers arm per-job alarms (zero-conservative-
  laxity interrupts) and global timers through the context; stale alarms are
  version-dropped;
* **trace recording** — every maximal run segment is logged with the work
  performed (the capacity integral over the segment), so the resulting
  schedule can be re-validated independently.

Determinism: for a fixed instance and scheduler the run is bit-for-bit
reproducible — ties in the event heap break by (kind priority, insertion
sequence) and nothing consults a clock or RNG.

Crash recovery (docs/ROBUSTNESS.md): the engine can image its complete
mid-run state into an :class:`~repro.sim.journal.EngineSnapshot`
(:meth:`SimulationEngine.snapshot`) and a fresh engine can resume from one
(:meth:`SimulationEngine.restore`).  With a write-ahead
:class:`~repro.sim.journal.EventJournal` attached, every dispatched event
is logged *before* its effects apply; a resumed run re-verifies its
dispatches against the journal (any divergence raises
:class:`~repro.errors.RecoveryError`), so "last snapshot + journal replay"
reproduces the uncrashed run bit-identically.  Execution faults
(:mod:`repro.faults.execution`) inject ``FAULT`` events — mid-run job
kills, VM revocations and scheduled process crashes
(:class:`~repro.errors.SimulatedCrash`) — and an optional invariant
watchdog (:mod:`repro.sim.invariants`) observes every dispatch.
"""

from __future__ import annotations

import logging
import math
import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.capacity.base import CapacityFunction
from repro.errors import (
    RecoveryError,
    SchedulingError,
    SimulatedCrash,
    SimulationError,
)
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.job import Job, JobStatus, validate_jobs
from repro.sim.journal import (
    EngineSnapshot,
    EventJournal,
    JournalRecord,
    describe_payload,
)
from repro.sim.metrics import SimulationResult
from repro.sim.scheduler import Scheduler, SchedulerContext
from repro.sim.trace import RunSegment, ScheduleTrace

__all__ = ["SimulationEngine", "simulate"]

logger = logging.getLogger(__name__)

_EPS = 1e-9

#: Statuses from which a job never returns (their queued events are dead).
_TERMINAL = (JobStatus.COMPLETED, JobStatus.FAILED, JobStatus.ABANDONED)

#: Default snapshot cadence (events) when crash plans are present but the
#: caller did not pick one.
_DEFAULT_SNAPSHOT_EVERY = 64


class _EngineContext(SchedulerContext):
    """The engine-backed implementation of the online information model."""

    def __init__(self, engine: "SimulationEngine") -> None:
        self._engine = engine

    def now(self) -> float:
        return self._engine._now

    def remaining(self, job: Job) -> float:
        return self._engine._remaining_of(job)

    def capacity_now(self) -> float:
        return self._engine._capacity.value(self._engine._now)

    @property
    def bounds(self) -> Tuple[float, float]:
        cap = self._engine._capacity
        return (cap.lower, cap.upper)

    def current_job(self) -> Optional[Job]:
        return self._engine._current

    def set_alarm(self, job: Job, time: float, tag: str = "claxity") -> None:
        self._engine._set_alarm(job, time, tag)

    def cancel_alarm(self, job: Job) -> None:
        self._engine._cancel_alarm(job)

    def set_timer(self, time: float, tag: str) -> None:
        self._engine._set_timer(time, tag)


class SimulationEngine:
    """Run one scheduler over one instance (jobs + capacity trajectory).

    Parameters
    ----------
    jobs:
        The instance's job set (ids must be unique).
    capacity:
        The realized capacity trajectory.  The engine may query its future
        (it is the physics of the world); the scheduler cannot.
    scheduler:
        The online policy under test.  ``bind`` is called on it, so a fresh
        run starts from clean per-run state.
    horizon:
        End of simulated time.  Defaults to just past the latest deadline so
        every job resolves.  Jobs unresolved at the horizon are recorded as
        failed.
    validate:
        When true, the produced trace is re-validated against the capacity
        (work conservation, no overlap, deadline legality) before returning;
        a violation raises :class:`SimulationError`.  Cheap enough to leave
        on in tests; off by default for Monte-Carlo throughput.
    faults:
        Execution faults (:mod:`repro.faults.execution`) to arm on this
        run: job kills, revocation evictions, scheduled crashes.
    watchdog:
        Optional :class:`~repro.sim.invariants.InvariantWatchdog`; observes
        every dispatched event (strictly read-only).
    journal:
        Optional :class:`~repro.sim.journal.EventJournal` written ahead of
        every dispatch (and verified against during post-restore replay).
    snapshot_every:
        Take an :class:`~repro.sim.journal.EngineSnapshot` every N
        dispatched events (kept as ``last_snapshot``).  Defaults to 64
        when a crash plan is armed, else off.
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        capacity: CapacityFunction,
        scheduler: Scheduler,
        *,
        horizon: float | None = None,
        validate: bool = False,
        faults: Sequence[object] = (),
        watchdog: "object | None" = None,
        journal: "EventJournal | None" = None,
        snapshot_every: int | None = None,
    ) -> None:
        validate_jobs(jobs)
        self._jobs = list(jobs)
        self._by_id: Dict[int, Job] = {j.jid: j for j in jobs}
        self._capacity = capacity
        self._scheduler = scheduler
        if horizon is None:
            horizon = max((j.deadline for j in jobs), default=0.0) + 1.0
        if not math.isfinite(horizon) or horizon < 0.0:
            raise SimulationError(f"invalid horizon: {horizon!r}")
        self._horizon = float(horizon)
        self._validate = bool(validate)

        # Ground-truth run state.
        self._now = 0.0
        self._remaining: Dict[int, float] = {}
        self._status: Dict[int, JobStatus] = {}
        self._current: Optional[Job] = None
        self._seg_start = 0.0
        self._seg_remaining0 = 0.0  # remaining workload at seg_start
        # Prefix-sum index fast path (repro.capacity.prefix): anchor the
        # running segment at its cumulative work W(seg_start) so progress
        # queries are one O(log n) lookup, W(now) − anchor — bit-identical
        # to integrate(seg_start, now), which indexed models define as
        # exactly that difference.
        self._indexed = bool(getattr(capacity, "supports_prefix_index", False))
        self._seg_cum0 = 0.0  # W(seg_start) anchor (indexed models only)

        # Event bookkeeping.
        self._events = EventQueue(stale=self._event_is_stale)
        self._completion_version: Dict[int, int] = {}
        self._alarm_version: Dict[int, int] = {}
        self._trace = ScheduleTrace()

        # Fault / recovery / monitoring plumbing.
        self._faults = list(faults)
        self._watchdog = watchdog
        self._journal = journal
        if snapshot_every is None and any(
            getattr(f, "is_crash_plan", False) for f in self._faults
        ):
            snapshot_every = _DEFAULT_SNAPSHOT_EVERY
        if snapshot_every is not None and snapshot_every < 1:
            raise SimulationError(
                f"snapshot_every must be >= 1, got {snapshot_every!r}"
            )
        self._snapshot_every = snapshot_every
        self._event_crashes: List[Tuple[int, int]] = []  # (at_event, fault idx)
        self._dispatch_count = 0
        self._verify_until = 0
        self._last_snapshot: Optional[EngineSnapshot] = None
        self._started = False

    # ------------------------------------------------------------------
    # Read-only accessors (used by the invariant watchdog and recovery)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def horizon(self) -> float:
        return self._horizon

    @property
    def capacity(self) -> CapacityFunction:
        return self._capacity

    @property
    def trace(self) -> ScheduleTrace:
        return self._trace

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @property
    def jobs_by_id(self) -> Dict[int, Job]:
        return dict(self._by_id)

    @property
    def dispatch_count(self) -> int:
        """Events dispatched so far (journal index of the next dispatch)."""
        return self._dispatch_count

    @property
    def last_snapshot(self) -> Optional[EngineSnapshot]:
        return self._last_snapshot

    @property
    def event_queue_size(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # Lazy-deletion hygiene: which queued events are provably dead
    # ------------------------------------------------------------------
    def _event_is_stale(self, event: Event) -> bool:
        """True iff dispatching ``event`` would be a guaranteed no-op.

        Conservative: alarms/completions with bumped version tokens, and
        job events for jobs in a terminal state.  Alarms of RUNNING jobs
        are *not* stale (the job may return to READY before they fire)."""
        kind = event.kind
        if kind is EventKind.ALARM:
            job = event.payload[0]
            if self._alarm_version.get(job.jid, 0) != event.version:
                return True
            return self._status.get(job.jid) in _TERMINAL
        if kind is EventKind.COMPLETION:
            job = event.payload
            if self._completion_version.get(job.jid, 0) != event.version:
                return True
            return self._status.get(job.jid) in _TERMINAL
        if kind is EventKind.DEADLINE:
            return self._status.get(event.payload.jid) in _TERMINAL
        return False

    # ------------------------------------------------------------------
    # Execution-fault plumbing (used by repro.faults.execution at arm time)
    # ------------------------------------------------------------------
    def push_fault_event(self, time: float, payload: tuple) -> None:
        """Queue a FAULT event (payload: ``("kill", i, retain)``,
        ``("evict", i)`` or ``("crash", i)``)."""
        if 0.0 <= time <= self._horizon:
            self._events.push(Event(time, EventKind.FAULT, tuple(payload)))

    def register_event_crash(self, fault_index: int, at_event: int) -> None:
        """Arrange for crash plan ``fault_index`` to fire just before the
        ``at_event``-th event dispatch."""
        self._event_crashes.append((int(at_event), int(fault_index)))

    # ------------------------------------------------------------------
    # State queries used by the context
    # ------------------------------------------------------------------
    def _seg_work(self, t: float) -> float:
        """Work performed by the running segment up to ``t`` — via the
        capacity's prefix-sum index when available, else the naive
        integral (identical values either way; see class docstring)."""
        if self._indexed:
            return self._capacity.cumulative(t) - self._seg_cum0
        return self._capacity.integrate(self._seg_start, t)

    def _remaining_of(self, job: Job) -> float:
        status = self._status.get(job.jid)
        if status is None or status is JobStatus.PENDING:
            raise SchedulingError(
                f"remaining() queried for unreleased job {job.jid}"
            )
        if job is self._current:
            done = self._seg_work(self._now)
            return max(0.0, self._seg_remaining0 - done)
        return self._remaining[job.jid]

    # ------------------------------------------------------------------
    # Alarm / timer plumbing
    # ------------------------------------------------------------------
    def _set_alarm(self, job: Job, time: float, tag: str) -> None:
        if job.jid not in self._status:
            raise SchedulingError(f"alarm for unknown job {job.jid}")
        when = max(time, self._now)
        version = self._alarm_version.get(job.jid, 0) + 1
        self._alarm_version[job.jid] = version
        if version > 1:
            # A previous alarm for this job may still sit in the heap.
            self._events.note_stale()
        self._events.push(Event(when, EventKind.ALARM, (job, tag), version))

    def _cancel_alarm(self, job: Job) -> None:
        # Bumping the version orphans any in-flight alarm event.
        self._alarm_version[job.jid] = self._alarm_version.get(job.jid, 0) + 1
        self._events.note_stale()

    def _set_timer(self, time: float, tag: str) -> None:
        self._events.push(Event(max(time, self._now), EventKind.TIMER, tag))

    # ------------------------------------------------------------------
    # Processor mechanics
    # ------------------------------------------------------------------
    def _close_segment(self, t: float) -> None:
        """Stop the running job at ``t``, folding its progress into the
        ground truth and the trace.  Leaves the processor empty."""
        job = self._current
        if job is None:
            return
        work = self._seg_work(t)
        new_remaining = self._seg_remaining0 - work
        if new_remaining < -1e-6 * max(1.0, job.workload):
            raise SimulationError(
                f"job {job.jid} over-executed: remaining {new_remaining}"
            )
        self._remaining[job.jid] = max(0.0, new_remaining)
        self._trace.add_segment(self._seg_start, t, job.jid, work)
        self._status[job.jid] = JobStatus.READY
        # Orphan the in-flight completion event.
        self._completion_version[job.jid] = (
            self._completion_version.get(job.jid, 0) + 1
        )
        self._events.note_stale()
        self._current = None

    def _start_job(self, job: Job, t: float) -> None:
        status = self._status.get(job.jid)
        if status is not JobStatus.READY:
            raise SchedulingError(
                f"scheduler tried to run job {job.jid} in state {status}"
            )
        self._current = job
        self._status[job.jid] = JobStatus.RUNNING
        self._seg_start = t
        self._seg_remaining0 = self._remaining[job.jid]
        if self._indexed:
            self._seg_cum0 = self._capacity.cumulative(t)
        finish = self._capacity.advance(t, self._seg_remaining0)
        version = self._completion_version.get(job.jid, 0) + 1
        self._completion_version[job.jid] = version
        if finish <= self._horizon:
            self._events.push(Event(finish, EventKind.COMPLETION, job, version))

    def _apply_decision(self, desired: Optional[Job], t: float) -> None:
        """Switch the processor to ``desired`` (no-op if unchanged)."""
        if desired is self._current:
            return
        self._close_segment(t)
        if desired is not None:
            self._start_job(desired, t)

    def _complete_current(self, job: Job, t: float) -> None:
        """Fold the running job's final segment and record its success."""
        work = self._seg_work(t)
        self._trace.add_segment(self._seg_start, t, job.jid, work)
        self._remaining[job.jid] = 0.0
        self._status[job.jid] = JobStatus.COMPLETED
        self._current = None
        self._completion_version[job.jid] = (
            self._completion_version.get(job.jid, 0) + 1
        )
        self._events.note_stale()
        self._trace.record_outcome(job, JobStatus.COMPLETED, t)
        desired = self._scheduler.on_job_end(job, completed=True)
        self._apply_decision(desired, t)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        t = event.time
        kind = event.kind

        if kind is EventKind.RELEASE:
            job: Job = event.payload
            self._status[job.jid] = JobStatus.READY
            self._remaining[job.jid] = job.workload
            desired = self._scheduler.on_release(job)
            self._apply_decision(desired, t)
            return

        if kind is EventKind.COMPLETION:
            job = event.payload
            if self._completion_version.get(job.jid, 0) != event.version:
                return  # stale: the job was preempted since this was armed
            if job is not self._current:  # pragma: no cover - defensive
                return
            self._complete_current(job, t)
            return

        if kind is EventKind.DEADLINE:
            job = event.payload
            status = self._status.get(job.jid)
            if status in (
                JobStatus.COMPLETED,
                JobStatus.FAILED,
                JobStatus.ABANDONED,
            ):
                return
            if job is self._current:
                # Jobs with zero laxity finish *exactly* at their deadline;
                # the predicted completion instant can land one ulp past it.
                # A running job whose remaining workload is within float
                # tolerance has completed, not failed.
                done = self._seg_work(t)
                left = self._seg_remaining0 - done
                if left <= 1e-9 * max(1.0, job.workload):
                    self._complete_current(job, t)
                    return
                self._close_segment(t)
            self._status[job.jid] = JobStatus.FAILED
            self._trace.record_outcome(job, JobStatus.FAILED, t)
            desired = self._scheduler.on_job_end(job, completed=False)
            self._apply_decision(desired, t)
            return

        if kind is EventKind.ALARM:
            job, tag = event.payload
            if self._alarm_version.get(job.jid, 0) != event.version:
                return  # re-armed or cancelled since
            if self._status.get(job.jid) is not JobStatus.READY:
                return  # running/finished jobs do not take alarms
            desired = self._scheduler.on_alarm(job, tag)
            self._apply_decision(desired, t)
            return

        if kind is EventKind.TIMER:
            desired = self._scheduler.on_timer(event.payload)
            self._apply_decision(desired, t)
            return

        if kind is EventKind.FAULT:
            self._dispatch_fault(event.payload, t)
            return

        raise SimulationError(f"unhandled event kind: {kind!r}")  # pragma: no cover

    def _dispatch_fault(self, payload: tuple, t: float) -> None:
        """Apply an execution fault (see :mod:`repro.faults.execution`)."""
        op = payload[0]

        if op == "crash":
            idx = int(payload[1])
            fault = self._faults[idx]
            if getattr(fault, "fired", False):
                return  # already crashed once (journal replay after resume)
            fault.fired = True
            self._raise_crash(t, at_event=None, fault_index=idx)

        elif op in ("kill", "evict"):
            job = self._current
            if job is None:
                return  # the fault hit an idle processor: nothing to lose
            # Fold the progress made so far, return the job to READY.
            self._close_segment(t)
            if op == "kill":
                retain = float(payload[2])
                old_remaining = self._remaining[job.jid]
                progress = job.workload - old_remaining
                if progress > 0.0 and retain < 1.0:
                    # The kill destroys (1 − retain) of the progress; the
                    # destroyed work *was* executed, so the trace budgets
                    # for it (validator: workload + lost_work).
                    new_remaining = job.workload - retain * progress
                    self._trace.record_lost_work(
                        job.jid, new_remaining - old_remaining
                    )
                    self._remaining[job.jid] = new_remaining
            desired = self._scheduler.on_eviction(job)
            self._apply_decision(desired, t)

        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown fault payload: {payload!r}")

    def _raise_crash(self, t: float, at_event: int | None, fault_index: int) -> None:
        """Die like a crashed process: attach the *last periodic* snapshot
        (not a fresh one — resuming must genuinely replay the journal) and
        mark the plan fired in it so the resumed run does not re-crash."""
        snapshot = self._last_snapshot
        if snapshot is not None:
            fired = set(snapshot.fired_faults)
            fired.update(
                i
                for i, f in enumerate(self._faults)
                if getattr(f, "fired", False)
            )
            snapshot.fired_faults = tuple(sorted(fired))
        raise SimulatedCrash(
            time=t,
            at_event=at_event,
            fault_index=fault_index,
            snapshot=snapshot,
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _bootstrap(self) -> None:
        """First-run initialisation: bind the scheduler, seed the event
        queue, arm faults, take snapshot zero."""
        ctx = _EngineContext(self)
        self._scheduler.bind(ctx)

        for job in self._jobs:
            self._status[job.jid] = JobStatus.PENDING
            if job.release <= self._horizon:
                self._events.push(Event(job.release, EventKind.RELEASE, job))
                self._events.push(Event(job.deadline, EventKind.DEADLINE, job))
        self._events.push(Event(self._horizon, EventKind.END))

        for i, fault in enumerate(self._faults):
            fault.arm(self, i)
        if self._watchdog is not None:
            self._watchdog.start(self)
        self._started = True
        if self._snapshot_every is not None:
            self._last_snapshot = self.snapshot()

    def _maybe_crash_at_event(self) -> None:
        """Fire any event-indexed crash plan scheduled for the *next*
        dispatch (checked before the event is popped, so the snapshot keeps
        it pending)."""
        for at_event, idx in self._event_crashes:
            if at_event == self._dispatch_count:
                fault = self._faults[idx]
                if getattr(fault, "fired", False):
                    continue
                fault.fired = True
                self._raise_crash(self._now, at_event=at_event, fault_index=idx)

    def run(self) -> SimulationResult:
        """Execute (or, after :meth:`restore`, resume) the simulation."""
        if not self._started:
            self._bootstrap()

        while len(self._events):
            if self._event_crashes:
                self._maybe_crash_at_event()
            event = self._events.pop()
            if event.time < self._now - _EPS:
                raise SimulationError(
                    f"time went backwards: {event.time} < {self._now}"
                )
            if event.kind is EventKind.END:
                self._now = event.time
                break
            if event.time > self._horizon:
                self._now = self._horizon
                break
            self._now = event.time

            if self._journal is not None:
                record = JournalRecord(
                    index=self._dispatch_count,
                    time=event.time,
                    kind=int(event.kind),
                    key=describe_payload(int(event.kind), event.payload),
                    version=event.version,
                )
                if self._dispatch_count < self._verify_until:
                    expected = self._journal.get(self._dispatch_count)
                    if record != expected:
                        raise RecoveryError(
                            f"journal replay diverged at dispatch "
                            f"#{self._dispatch_count}: live {record} != "
                            f"journaled {expected}"
                        )
                else:
                    self._journal.append(record)

            self._dispatch_count += 1
            self._dispatch(event)
            if self._watchdog is not None:
                self._watchdog.after_event(self, event)
            if (
                self._snapshot_every is not None
                and self._dispatch_count % self._snapshot_every == 0
            ):
                self._last_snapshot = self.snapshot()

        # Wind down: close the running segment and mark unresolved jobs.
        self._close_segment(self._now)
        for job in self._jobs:
            if self._status.get(job.jid) in (JobStatus.READY, JobStatus.RUNNING):
                self._status[job.jid] = JobStatus.FAILED
                self._trace.record_outcome(job, JobStatus.FAILED, self._now)

        if self._validate:
            self._trace.validate(self._jobs, self._capacity)

        result = SimulationResult(
            scheduler_name=self._scheduler.name,
            jobs=self._jobs,
            horizon=self._horizon,
            trace=self._trace,
        )
        if self._watchdog is not None:
            self._watchdog.after_run(self, result)
        return result

    # ------------------------------------------------------------------
    # Snapshot / restore (crash recovery)
    # ------------------------------------------------------------------
    def _encode_payload(self, kind: EventKind, payload) -> tuple:
        if kind in (EventKind.RELEASE, EventKind.COMPLETION, EventKind.DEADLINE):
            return ("job", payload.jid)
        if kind is EventKind.ALARM:
            return ("alarm", payload[0].jid, payload[1])
        if kind is EventKind.TIMER:
            return ("timer", payload)
        if kind is EventKind.END:
            return ("end",)
        if kind is EventKind.FAULT:
            return ("fault",) + tuple(payload)
        raise SimulationError(f"cannot snapshot event kind {kind!r}")  # pragma: no cover

    def _decode_payload(self, kind: EventKind, desc: tuple):
        tag = desc[0]
        try:
            if tag == "job":
                return self._by_id[desc[1]]
            if tag == "alarm":
                return (self._by_id[desc[1]], desc[2])
        except KeyError:
            raise RecoveryError(
                f"snapshot references unknown job {desc[1]}"
            ) from None
        if tag == "timer":
            return desc[1]
        if tag == "end":
            return None
        if tag == "fault":
            return tuple(desc[1:])
        raise RecoveryError(f"cannot decode event payload {desc!r}")

    def snapshot(self) -> EngineSnapshot:
        """Image the complete mid-run state (picklable; jid-based)."""
        events = [
            (time, kind, seq, self._encode_payload(ev.kind, ev.payload), ev.version)
            for time, kind, seq, ev in self._events.dump()
        ]
        return EngineSnapshot(
            scheduler_name=self._scheduler.name,
            now=self._now,
            horizon=self._horizon,
            current_jid=None if self._current is None else self._current.jid,
            seg_start=self._seg_start,
            seg_remaining0=self._seg_remaining0,
            seg_cum0=self._seg_cum0,
            remaining=dict(self._remaining),
            status={jid: st.name for jid, st in self._status.items()},
            completion_version=dict(self._completion_version),
            alarm_version=dict(self._alarm_version),
            events=events,
            next_seq=self._events.next_seq,
            stale_hint=self._events.stale_hint,
            dispatch_count=self._dispatch_count,
            trace_segments=[
                (s.start, s.end, s.jid, s.work) for s in self._trace.segments
            ],
            trace_outcomes={
                jid: st.name for jid, st in self._trace.outcomes.items()
            },
            trace_completion_times=dict(self._trace.completion_times),
            trace_value_points=list(self._trace.value_points),
            trace_lost_work=dict(self._trace.lost_work),
            scheduler_state=self._scheduler.get_state(),
            capacity_blob=pickle.dumps(self._capacity),
            fired_faults=tuple(
                i
                for i, f in enumerate(self._faults)
                if getattr(f, "fired", False)
            ),
        )

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Load a snapshot into this (fresh, never-run) engine.

        After restoring, :meth:`run` resumes from the snapshot instant; if
        the engine also holds a journal extending past the snapshot, the
        resumed dispatches are verified against it (deterministic replay).
        """
        if self._started:
            raise RecoveryError("restore() requires a fresh engine")
        if snapshot.scheduler_name != self._scheduler.name:
            raise RecoveryError(
                f"snapshot is for scheduler {snapshot.scheduler_name!r}, "
                f"engine runs {self._scheduler.name!r}"
            )
        for jid in snapshot.remaining:
            if jid not in self._by_id:
                raise RecoveryError(f"snapshot references unknown job {jid}")

        # World physics first (the scheduler's bind() reads its bounds).
        self._capacity = pickle.loads(snapshot.capacity_blob)
        self._indexed = bool(
            getattr(self._capacity, "supports_prefix_index", False)
        )
        self._horizon = snapshot.horizon
        self._now = snapshot.now

        # Ground truth.
        self._remaining = dict(snapshot.remaining)
        self._status = {
            jid: JobStatus[name] for jid, name in snapshot.status.items()
        }
        self._current = (
            None
            if snapshot.current_jid is None
            else self._by_id[snapshot.current_jid]
        )
        self._seg_start = snapshot.seg_start
        self._seg_remaining0 = snapshot.seg_remaining0
        self._seg_cum0 = snapshot.seg_cum0
        self._completion_version = dict(snapshot.completion_version)
        self._alarm_version = dict(snapshot.alarm_version)

        # Event queue (sequence counter included: post-restore pushes must
        # get the same tie-breaking numbers the original run would have).
        entries = []
        for time, kind, seq, desc, version in snapshot.events:
            k = EventKind(kind)
            entries.append(
                (time, kind, seq, Event(time, k, self._decode_payload(k, desc), version))
            )
        self._events.load(entries, snapshot.next_seq, snapshot.stale_hint)
        self._dispatch_count = snapshot.dispatch_count

        # Trace accumulators.
        trace = ScheduleTrace()
        trace.segments = [RunSegment(*seg) for seg in snapshot.trace_segments]
        trace.outcomes = {
            jid: JobStatus[name] for jid, name in snapshot.trace_outcomes.items()
        }
        trace.completion_times = dict(snapshot.trace_completion_times)
        trace.value_points = [tuple(p) for p in snapshot.trace_value_points]
        trace.lost_work = dict(snapshot.trace_lost_work)
        self._trace = trace

        # Scheduler: fresh bind (reset), then install the captured state.
        ctx = _EngineContext(self)
        self._scheduler.bind(ctx)
        self._scheduler.set_state(snapshot.scheduler_state, self._by_id)

        # Faults: re-mark already-fired plans, re-register event-indexed
        # crash checks (queued FAULT events travelled with the heap).
        for i in snapshot.fired_faults:
            if 0 <= i < len(self._faults):
                self._faults[i].fired = True
        for i, fault in enumerate(self._faults):
            rearm = getattr(fault, "rearm", None)
            if rearm is not None:
                rearm(self, i)

        if self._journal is not None and len(self._journal) > snapshot.dispatch_count:
            self._verify_until = len(self._journal)
        if self._watchdog is not None:
            self._watchdog.start(self)
        self._last_snapshot = snapshot
        self._started = True


def simulate(
    jobs: Sequence[Job],
    capacity: CapacityFunction,
    scheduler: Scheduler,
    *,
    horizon: float | None = None,
    validate: bool = False,
    faults: Sequence[object] = (),
    watchdog: "object | None" = None,
    journal: "EventJournal | None" = None,
    snapshot_every: int | None = None,
    recover: bool = False,
    max_recoveries: int = 8,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SimulationEngine` and run it.

    With ``recover=True`` a :class:`~repro.errors.SimulatedCrash` raised by
    an armed :class:`~repro.faults.EngineCrashPlan` is survived: a fresh
    engine restores the crash's snapshot, replays the journal (when one is
    attached) and continues to the horizon.  The returned result's
    ``recoveries`` attribute counts the crashes survived.
    """

    def _build() -> SimulationEngine:
        return SimulationEngine(
            jobs,
            capacity,
            scheduler,
            horizon=horizon,
            validate=validate,
            faults=faults,
            watchdog=watchdog,
            journal=journal,
            snapshot_every=snapshot_every,
        )

    engine = _build()
    recoveries = 0
    while True:
        try:
            result = engine.run()
            result.recoveries = recoveries
            return result
        except SimulatedCrash as crash:
            if not recover:
                raise
            if crash.snapshot is None:
                raise RecoveryError(
                    "cannot recover: the crash carries no snapshot "
                    "(snapshotting disabled?)"
                ) from crash
            recoveries += 1
            if recoveries > max_recoveries:
                raise RecoveryError(
                    f"gave up after {max_recoveries} crash recoveries"
                ) from crash
            logger.info(
                "recovering from simulated crash at t=%g (recovery #%d)",
                crash.time,
                recoveries,
            )
            engine = _build()
            engine.restore(crash.snapshot)
