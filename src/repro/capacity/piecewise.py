"""Piecewise-constant capacity defined by explicit breakpoints.

This is the workhorse representation: the CTMC model of the paper's
Section IV, trace-driven models, and the residual capacity left by primary
cloud jobs all reduce to a sorted list of ``(breakpoint, rate)`` pairs.
Lookups use binary search (:func:`bisect.bisect_right`), so a query is
``O(log n)`` in the number of breakpoints and iteration over ``pieces`` is
``O(k)`` in the number of pieces returned.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator, Sequence, Tuple

from repro.capacity.base import CapacityFunction, Piece
from repro.errors import CapacityError

__all__ = ["PiecewiseConstantCapacity"]


class PiecewiseConstantCapacity(CapacityFunction):
    """Capacity that is constant between sorted breakpoints.

    Parameters
    ----------
    breakpoints:
        Strictly increasing times ``b_0 < b_1 < ...`` with ``b_0 == 0.0``.
        The rate on ``[b_i, b_{i+1})`` is ``rates[i]``; past the last
        breakpoint the rate is ``rates[-1]`` forever.
    rates:
        One rate per breakpoint; all must be positive.
    lower, upper:
        Declared bounds of the capacity input set.  Default to the min/max
        of ``rates``.  The declared bounds may be wider than the realized
        trajectory (the scheduler only ever learns the declaration) but must
        contain every rate.
    """

    def __init__(
        self,
        breakpoints: Sequence[float],
        rates: Sequence[float],
        *,
        lower: float | None = None,
        upper: float | None = None,
    ) -> None:
        if len(breakpoints) != len(rates):
            raise CapacityError(
                f"{len(breakpoints)} breakpoints but {len(rates)} rates"
            )
        if not breakpoints:
            raise CapacityError("at least one (breakpoint, rate) pair required")
        if breakpoints[0] != 0.0:
            raise CapacityError(
                f"first breakpoint must be 0.0, got {breakpoints[0]!r}"
            )
        bp = [float(b) for b in breakpoints]
        for a, b in zip(bp, bp[1:]):
            if b <= a:
                raise CapacityError(f"breakpoints not strictly increasing: {a} -> {b}")
        rt = [float(r) for r in rates]
        for r in rt:
            if r <= 0.0:
                raise CapacityError(f"non-positive rate: {r!r}")
        lo = min(rt) if lower is None else float(lower)
        hi = max(rt) if upper is None else float(upper)
        if lo > min(rt) or hi < max(rt):
            raise CapacityError(
                f"declared bounds [{lo}, {hi}] do not contain realized rates "
                f"[{min(rt)}, {max(rt)}]"
            )
        super().__init__(lo, hi)
        self._bp = bp
        self._rates = rt
        # Prefix integrals: cum[i] = ∫_0^{bp[i]} c.
        cum = [0.0]
        for i in range(1, len(bp)):
            cum.append(cum[-1] + (bp[i] - bp[i - 1]) * rt[i - 1])
        self._cum = cum

    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple[float, ...]:
        return tuple(self._bp)

    @property
    def rates(self) -> Tuple[float, ...]:
        return tuple(self._rates)

    def _index(self, t: float) -> int:
        """Index of the piece containing ``t`` (pieces close on the left)."""
        return max(0, bisect_right(self._bp, t) - 1)

    # ------------------------------------------------------------------
    def value(self, t: float) -> float:
        if t < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t!r}")
        return self._rates[self._index(t)]

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        if t0 < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t0!r}")
        i = self._index(t0)
        start = t0
        n = len(self._bp)
        while start < t1:
            end = self._bp[i + 1] if i + 1 < n else math.inf
            if end > t1:
                end = t1
            yield (start, end, self._rates[i])
            start = end
            i += 1

    def cumulative(self, t: float) -> float:
        """Exact prefix integral ``∫_0^t c`` using the precomputed table."""
        if t < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t!r}")
        i = self._index(t)
        return self._cum[i] + (t - self._bp[i]) * self._rates[i]

    def integrate(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise CapacityError(f"reversed interval: [{t0}, {t1}]")
        return self.cumulative(t1) - self.cumulative(t0)

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        if work == 0.0:
            return t0
        target = self.cumulative(t0) + work
        # Find the piece in which the cumulative integral reaches `target`.
        i = self._index(t0)
        n = len(self._bp)
        while i + 1 < n and self._cum[i + 1] < target - 1e-15:
            i += 1
        # max() guards against t drifting one ulp below t0 when `work` is
        # tiny relative to the prefix integral (division rounding).
        t = max(t0, self._bp[i] + (target - self._cum[i]) / self._rates[i])
        return t if t <= horizon else math.inf

    def next_change(self, t: float, horizon: float) -> float:
        i = bisect_right(self._bp, t)
        if i < len(self._bp) and self._bp[i] < horizon:
            return self._bp[i]
        return horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PiecewiseConstantCapacity(n_pieces={len(self._bp)}, "
            f"lower={self.lower:g}, upper={self.upper:g})"
        )
