"""Experiment E17: the chaos soak — an always-on service under fire.

Every robustness mechanism in this repository gets exercised somewhere;
the soak exercises them all *at once*, through the real service stack:
N tenants of Poisson traffic are encoded as JSON wire lines and driven
through :class:`~repro.service.ingress.ServiceIngress` into a live
:class:`~repro.service.supervisor.ScheduleService` while

* **sensor faults** corrupt what each tenant's scheduler observes
  (capacity noise wrappers from :mod:`repro.faults.spec`),
* **job kills** and **revocation bursts** mutate the executed world
  (start faults from :mod:`repro.faults.execution`),
* **ingress fault injections** push extra recorded kills/evictions, and
* **forced kernel crashes** (≥ 5 across the fleet by default) drive the
  supervisor's snapshot-restore → WAL-replay → op-log restart ladder,
* plus a sprinkle of deliberately malformed lines that must bounce off
  the ingress without hurting anybody.

The soak *passes* iff, for every tenant: zero accepted-then-lost jobs,
every restart backoff within the policy cap, and the per-tenant replay
check (:func:`repro.service.replay.replay_tenant`) proves the surviving
journal re-runs **bit-identically** through the closed-horizon engine —
shed accounting included.  See docs/EXPERIMENTS.md §E17.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.faults.execution import ExecutionFaultSpec
from repro.obs.telemetry import slo_parity_view
from repro.faults.spec import FaultSpec
from repro.service.ingress import ServiceIngress
from repro.service.messages import InjectFault, Submit, encode_message
from repro.service.replay import ReplayCheck, replay_tenant
from repro.service.shard import CapacitySpec, TenantReport, TenantSpec
from repro.service.supervisor import RestartPolicy, ScheduleService
from repro.workload.poisson import PoissonWorkload

__all__ = [
    "SoakConfig",
    "SoakReport",
    "TenantSoakOutcome",
    "run_soak",
    "Kill9Config",
    "Kill9Report",
    "run_kill9",
]

#: Garbage lines fed alongside real traffic — all must ack ``ok: false``.
_MALFORMED_LINES = (
    "not json at all",
    '{"type": "submit"}',
    '{"type": "warp", "tenant": "t0"}',
    '{"type": "submit", "tenant": "t0", "job": {"jid": 1}}',
    '{"type": "fault", "tenant": "t0", "op": "kill", "time": "soon"}',
)


@dataclass(frozen=True)
class SoakConfig:
    """Knobs for one soak run (defaults: the full acceptance soak)."""

    tenants: int = 3  #: number of tenant shards (>= 3 for the full soak)
    lam: float = 3.0  #: per-tenant Poisson arrival rate
    horizon: float = 40.0  #: per-tenant virtual horizon
    seed: int = 2011
    forced_crashes: int = 5  #: ingress-forced kernel crashes, fleet-wide
    ingress_faults_per_tenant: int = 2  #: extra recorded kills/evictions
    kill_rate: float = 0.05  #: start-fault Poisson kill rate
    revocation_rate: float = 0.02  #: start-fault revocation-onset rate
    sensor_noise: float = 0.1  #: capacity-sensor noise severity
    queue_budget: int = 64
    snapshot_every: int = 16
    flush_every: int = 4
    policy: RestartPolicy = field(default_factory=RestartPolicy)
    journal_dir: Optional[str] = None  #: persist per-tenant journals here
    telemetry: bool = True  #: per-tenant SLO trackers on the shards
    #: JSON-lines health timeline (one fleet scrape row per traffic
    #: chunk) — the machine-readable artifact CI uploads.
    timeline_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ExperimentError(f"need >= 1 tenant, got {self.tenants}")
        if self.forced_crashes < 0:
            raise ExperimentError("forced_crashes must be >= 0")


@dataclass
class TenantSoakOutcome:
    """One tenant's soak verdict: the report plus its replay check."""

    report: TenantReport
    check: ReplayCheck
    backoffs_within_cap: bool

    @property
    def ok(self) -> bool:
        return (
            self.check.ok
            and not self.report.lost_jids
            and self.backoffs_within_cap
        )


@dataclass
class SoakReport:
    """Fleet-wide soak outcome (what the CLI prints and CI gates on)."""

    config: SoakConfig
    outcomes: Dict[str, TenantSoakOutcome]
    submitted: int
    accepted: int
    shed: int
    recoveries: int
    forced_crashes: int
    rejected_lines: int
    malformed_rejected: bool
    timeline_path: Optional[str] = None  #: health timeline JSONL, if written

    @property
    def ok(self) -> bool:
        return self.malformed_rejected and all(
            o.ok for o in self.outcomes.values()
        )

    def failures(self) -> List[str]:
        out: List[str] = []
        if not self.malformed_rejected:
            out.append("a malformed line was not rejected by the ingress")
        for tenant, o in sorted(self.outcomes.items()):
            if o.report.lost_jids:
                out.append(
                    f"{tenant}: accepted-then-lost jobs "
                    f"{sorted(o.report.lost_jids)}"
                )
            if not o.backoffs_within_cap:
                out.append(f"{tenant}: a restart backoff exceeded the cap")
            out.extend(f"{tenant}: {f}" for f in o.check.failures)
        return out

    def summary_lines(self) -> List[str]:
        lines = [
            f"soak: {len(self.outcomes)} tenants, "
            f"{self.submitted} submitted, {self.accepted} accepted, "
            f"{self.shed} shed, {self.forced_crashes} forced crashes, "
            f"{self.recoveries} recoveries, "
            f"{self.rejected_lines} lines rejected",
        ]
        if self.timeline_path:
            lines.append(f"  health timeline: {self.timeline_path}")
        for tenant, o in sorted(self.outcomes.items()):
            lines.append(
                "  " + o.check.summary()
                + f" restarts={o.report.restarts}"
                + ("" if o.ok else " [TENANT FAIL]")
            )
        lines.append("soak verdict: " + ("PASS" if self.ok else "FAIL"))
        return lines


def _tenant_specs(config: SoakConfig) -> List[TenantSpec]:
    """Deterministic per-tenant worlds — varied schedulers and physics."""
    schedulers = ("vdover", "edf", "dover", "llf", "greedy")
    specs: List[TenantSpec] = []
    for i in range(config.tenants):
        start_faults: Tuple[ExecutionFaultSpec, ...] = tuple(
            spec
            for spec in (
                ExecutionFaultSpec(
                    "kill", config.kill_rate, {"retain": 0.25}
                )
                if config.kill_rate > 0.0
                else None,
                ExecutionFaultSpec(
                    "revocation", config.revocation_rate, {"mean_down": 1.0}
                )
                if config.revocation_rate > 0.0
                else None,
            )
            if spec is not None
        )
        sensor: Tuple[FaultSpec, ...] = (
            (FaultSpec("noise", config.sensor_noise),)
            if config.sensor_noise > 0.0
            else ()
        )
        specs.append(
            TenantSpec(
                tenant=f"t{i}",
                horizon=config.horizon,
                scheduler=schedulers[i % len(schedulers)],
                capacity=CapacitySpec(
                    "markov2",
                    {"low": 1.0, "high": 8.0, "mean_sojourn": 4.0},
                    seed=config.seed + 7 * i,
                ),
                sensor_faults=sensor,
                start_faults=start_faults,
                fault_seed=config.seed + 1000 * i,
                queue_budget=config.queue_budget,
                snapshot_every=config.snapshot_every,
                flush_every=config.flush_every,
            )
        )
    return specs


def _tenant_timeline(
    spec: TenantSpec,
    config: SoakConfig,
    crash_times: Sequence[float],
    rng: np.random.Generator,
    *,
    with_rids: bool = False,
) -> List[Tuple[float, str]]:
    """One tenant's (time, wire line) stream, time-ordered.

    Submissions arrive at their release instants; fault injections are
    interleaved at their own times.  Fault times land on the midpoints
    between neighbouring distinct releases so the stream stays
    time-coherent no matter how the kernel's frontier advances.  With
    ``with_rids`` every message carries a deterministic ``request_id``
    so the whole stream can be resent verbatim after a restart — the
    kill -9 soak's idempotency exercise."""
    tenant = spec.tenant
    workload = PoissonWorkload(
        lam=config.lam,
        horizon=config.horizon,
        density_range=(1.0, 7.0),
        c_lower=1.0,
        deadline_slack=1.5,
    )
    jobs = workload.generate(rng)
    # jids are per-tenant namespaces: each shard checks duplicates only
    # against its own accepted set, so overlap across tenants is fine.
    entries: List[Tuple[float, str]] = [
        (
            job.release,
            encode_message(
                Submit(
                    tenant,
                    job,
                    rid=f"{tenant}/s{job.jid}" if with_rids else None,
                )
            ),
        )
        for job in jobs
    ]
    for c, t in enumerate(crash_times):
        entries.append(
            (
                float(t),
                encode_message(
                    InjectFault(
                        tenant,
                        "crash",
                        float(t),
                        rid=f"{tenant}/c{c}" if with_rids else None,
                    )
                ),
            )
        )
    ops = ("kill", "evict")
    for j in range(config.ingress_faults_per_tenant):
        t = config.horizon * (j + 1) / (config.ingress_faults_per_tenant + 1)
        op = ops[j % len(ops)]
        entries.append(
            (
                float(t),
                encode_message(
                    InjectFault(
                        tenant,
                        op,
                        float(t),
                        retain=0.5 if op == "kill" else 0.0,
                        rid=f"{tenant}/f{j}" if with_rids else None,
                    )
                ),
            )
        )
    entries.sort(key=lambda e: e[0])
    return entries


def _build_lines(config: SoakConfig, *, with_rids: bool = False) -> List[str]:
    """The full fleet's wire stream: per-tenant timelines merged in time
    order, with malformed lines sprinkled deterministically."""
    specs = _tenant_specs(config)
    # Spread the forced crashes round-robin over tenants, at staggered
    # fractions of the horizon.
    crash_times: Dict[str, List[float]] = {spec.tenant: [] for spec in specs}
    for c in range(config.forced_crashes):
        spec = specs[c % len(specs)]
        frac = (c + 1) / (config.forced_crashes + 1)
        crash_times[spec.tenant].append(config.horizon * frac)
    merged: List[Tuple[float, int, str]] = []
    for i, spec in enumerate(specs):
        rng = np.random.default_rng(config.seed + 31 * i)
        for order, (t, line) in enumerate(
            _tenant_timeline(
                spec,
                config,
                crash_times[spec.tenant],
                rng,
                with_rids=with_rids,
            )
        ):
            merged.append((t, order, line))
    merged.sort(key=lambda e: (e[0], e[1]))
    lines = [line for _, _, line in merged]
    # Malformed traffic lands at deterministic positions mid-stream.
    step = max(1, len(lines) // (len(_MALFORMED_LINES) + 1))
    for j, bad in enumerate(_MALFORMED_LINES):
        lines.insert(min(len(lines), (j + 1) * step + j), bad)
    return lines


async def _soak(config: SoakConfig) -> SoakReport:
    specs = _tenant_specs(config)
    service = ScheduleService(
        specs,
        policy=config.policy,
        journal_dir=config.journal_dir,
        telemetry=config.telemetry,
    )
    await service.start()
    ingress = ServiceIngress(service)
    lines = _build_lines(config)
    acks: List[Dict] = []
    if config.timeline_path is None:
        acks = await ingress.run_lines(lines)
    else:
        # Health timeline: the stream is driven in chunks and the fleet
        # is scraped between them — one JSONL row per chunk, so the
        # timeline shows SLOs and health states *while* crashes and
        # restarts happen, not just the postmortem.
        timeline = Path(config.timeline_path)
        timeline.parent.mkdir(parents=True, exist_ok=True)
        chunk = max(1, len(lines) // 16)
        with timeline.open("w", encoding="utf-8") as fh:
            for i in range(0, len(lines), chunk):
                acks.extend(await ingress.run_lines(lines[i : i + chunk]))
                row = {
                    "event": "scrape",
                    "lines_sent": min(i + chunk, len(lines)),
                    "health": service.health(),
                    "fleet": service.scrape(),
                }
                fh.write(json.dumps(row) + "\n")
    reports = await service.close()

    bad_acks = [
        ack
        for line, ack in zip(lines, acks)
        if line in _MALFORMED_LINES and ack.get("ok")
    ]
    outcomes: Dict[str, TenantSoakOutcome] = {}
    for tenant, report in reports.items():
        check = replay_tenant(report)
        within = all(
            b <= config.policy.backoff_cap + 1e-12 for b in report.backoffs
        )
        outcomes[tenant] = TenantSoakOutcome(
            report=report, check=check, backoffs_within_cap=within
        )
    return SoakReport(
        config=config,
        outcomes=outcomes,
        submitted=sum(r.submitted for r in reports.values()),
        accepted=sum(len(r.accepted) for r in reports.values()),
        shed=sum(len(r.shed) for r in reports.values()),
        recoveries=sum(r.recoveries for r in reports.values()),
        forced_crashes=sum(r.forced_crashes for r in reports.values()),
        rejected_lines=ingress.rejected_lines,
        malformed_rejected=not bad_acks,
        timeline_path=config.timeline_path,
    )


def run_soak(config: Optional[SoakConfig] = None) -> SoakReport:
    """Run one chaos soak to completion and verify every invariant."""
    return asyncio.run(_soak(config or SoakConfig()))


# ---------------------------------------------------------------------------
# kill -9 soak: a real child service process, SIGKILLed mid-traffic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Kill9Config:
    """Knobs for the kill -9 soak (``repro soak --kill9``).

    Each kill SIGKILLs a real ``python -m repro serve`` child process
    mid-traffic; the next incarnation cold-starts from the store and the
    *entire* stream is resent verbatim (same ``request_id``s), so every
    already-decided line must come back as a duplicate ack.  After the
    traffic completes, a SIGTERM drain must exit 0 and a final cold
    start must report bit-identical counters and replay parity."""

    tenants: int = 2
    lam: float = 2.0
    horizon: float = 30.0
    seed: int = 2011
    kills: int = 3  #: SIGKILLs delivered mid-traffic
    forced_crashes: int = 2  #: in-process kernel crashes, on top of kills
    ingress_faults_per_tenant: int = 2
    kill_rate: float = 0.05
    revocation_rate: float = 0.02
    sensor_noise: float = 0.1
    queue_budget: int = 64
    snapshot_every: int = 8
    flush_every: int = 4
    store_dir: Optional[str] = None  #: default: a fresh temp directory
    store_fsync: bool = True
    spawn_timeout: float = 60.0  #: seconds to wait for hello / exit
    #: health timeline JSONL (default: <store_dir>/health_timeline.jsonl)
    timeline_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kills < 1:
            raise ExperimentError(f"need >= 1 kill, got {self.kills}")
        if self.tenants < 1:
            raise ExperimentError(f"need >= 1 tenant, got {self.tenants}")

    def soak_config(self) -> SoakConfig:
        """The equivalent in-process soak knobs (spec/timeline reuse)."""
        return SoakConfig(
            tenants=self.tenants,
            lam=self.lam,
            horizon=self.horizon,
            seed=self.seed,
            forced_crashes=self.forced_crashes,
            ingress_faults_per_tenant=self.ingress_faults_per_tenant,
            kill_rate=self.kill_rate,
            revocation_rate=self.revocation_rate,
            sensor_noise=self.sensor_noise,
            queue_budget=self.queue_budget,
            snapshot_every=self.snapshot_every,
            flush_every=self.flush_every,
        )


@dataclass
class Kill9Report:
    """What the kill -9 soak proves (or fails to)."""

    config: Kill9Config
    store_dir: str
    kills_delivered: int
    incarnations: int
    duplicate_acks: int
    parity_per_kill: Dict[int, Dict[str, bool]]  #: kill index -> tenant -> ok
    drain_stats: Dict[str, Dict]
    cold_stats: Dict[str, Dict]
    close_acks: Dict[str, Dict]
    drain_exit_code: Optional[int]
    problems: List[str] = field(default_factory=list)
    timeline_path: Optional[str] = None  #: health timeline JSONL

    @property
    def ok(self) -> bool:
        return not self.failures()

    def failures(self) -> List[str]:
        out = list(self.problems)
        if self.kills_delivered < self.config.kills:
            out.append(
                f"only {self.kills_delivered}/{self.config.kills} kills "
                "were delivered"
            )
        if self.drain_exit_code != 0:
            out.append(
                f"drain (SIGTERM) exited {self.drain_exit_code}, expected 0"
            )
        for k, per_tenant in sorted(self.parity_per_kill.items()):
            for tenant, ok in sorted(per_tenant.items()):
                if not ok:
                    out.append(
                        f"kill {k}: {tenant} failed replay parity after "
                        "cold start"
                    )
        for tenant in sorted(self.drain_stats):
            a, b = self.drain_stats[tenant], self.cold_stats.get(tenant)
            if b is None:
                out.append(f"{tenant}: missing after the post-drain cold start")
                continue
            for key in ("submitted", "accepted", "shed", "accepted_crc"):
                if a.get(key) != b.get(key):
                    out.append(
                        f"{tenant}: {key} diverged across the drain "
                        f"boundary ({a.get(key)} -> {b.get(key)})"
                    )
            # SLO parity: the windowed tracker must round-trip the
            # drain → kill -9 → cold-start boundary exactly (modulo the
            # counters a cold start legitimately bumps and wall-clock
            # fsync latencies — slo_parity_view strips those).
            slo_a, slo_b = a.get("slo"), b.get("slo")
            if slo_a and slo_b:
                if slo_parity_view(slo_a) != slo_parity_view(slo_b):
                    out.append(
                        f"{tenant}: SLO snapshot diverged across the "
                        "drain/cold-start boundary"
                    )
            elif slo_a or slo_b:
                out.append(
                    f"{tenant}: SLO snapshot present on only one side "
                    "of the drain boundary"
                )
        for tenant, ack in sorted(self.close_acks.items()):
            if not ack.get("ok"):
                out.append(f"{tenant}: close failed ({ack.get('error')})")
                continue
            if not ack.get("parity"):
                out.append(
                    f"{tenant}: final replay parity failed "
                    f"({ack.get('parity_failures')})"
                )
            if ack.get("lost"):
                out.append(f"{tenant}: accepted-then-lost jobs {ack['lost']}")
            if ack.get("submitted") != ack.get("accepted", 0) + ack.get(
                "shed", 0
            ):
                out.append(
                    f"{tenant}: shed accounting broken "
                    f"(submitted {ack.get('submitted')} != accepted "
                    f"{ack.get('accepted')} + shed {ack.get('shed')})"
                )
        return out

    def summary_lines(self) -> List[str]:
        lines = [
            f"kill9 soak: {self.config.tenants} tenants, "
            f"{self.kills_delivered} SIGKILLs, {self.incarnations} "
            f"incarnations, {self.duplicate_acks} duplicate acks, "
            f"store {self.store_dir}",
        ]
        if self.timeline_path:
            lines.append(f"  health timeline: {self.timeline_path}")
        for tenant, ack in sorted(self.close_acks.items()):
            lines.append(
                f"  {tenant}: submitted={ack.get('submitted')} "
                f"accepted={ack.get('accepted')} shed={ack.get('shed')} "
                f"recoveries={ack.get('recoveries')} "
                f"parity={'PASS' if ack.get('parity') else 'FAIL'}"
            )
        lines.append(
            "kill9 verdict: " + ("PASS" if self.ok else "FAIL")
        )
        return lines


def _spawn_service(config: Kill9Config, store_dir, specs_file):
    """Launch one ``repro serve`` child; returns (proc, hello dict)."""
    import os
    import subprocess
    import sys as _sys

    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        _sys.executable,
        "-m",
        "repro",
        "serve",
        "--store",
        str(store_dir),
        "--specs",
        str(specs_file),
    ]
    if not config.store_fsync:
        cmd.append("--no-fsync")
    stderr_path = Path(store_dir) / "serve.stderr.log"
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=stderr_path.open("a", encoding="utf-8"),
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    if not line:
        proc.wait(timeout=config.spawn_timeout)
        raise ExperimentError(
            f"service child died before hello (exit {proc.returncode}); "
            f"see {stderr_path}"
        )
    hello = json.loads(line)
    if hello.get("event") != "serving":
        raise ExperimentError(f"unexpected hello line: {hello!r}")
    return proc, hello


def _send_lines(port: int, lines: Sequence[str]) -> List[Dict]:
    """Blocking JSON-line client: one ack awaited per line sent."""
    import socket

    acks: List[Dict] = []
    with socket.create_connection(("127.0.0.1", port), timeout=120.0) as sock:
        fh = sock.makefile("rw", encoding="utf-8", newline="\n")
        for line in lines:
            fh.write(line.rstrip("\n") + "\n")
            fh.flush()
            raw = fh.readline()
            if not raw:
                raise ExperimentError(
                    "service connection closed mid-traffic (no ack)"
                )
            acks.append(json.loads(raw))
    return acks


def _offline_parity(
    config: Kill9Config, store_dir, specs: Sequence[TenantSpec]
) -> Dict[str, bool]:
    """Prove bit-identical replay parity of the on-disk state *right
    now*: cold-start every tenant from a copy of the store (the copy
    keeps the real store untouched — closing a shard runs its kernel to
    the horizon), close it, and replay-check the result."""
    import shutil
    import tempfile

    from repro.service.shard import TenantShard
    from repro.store.tenant import TenantStore

    verdicts: Dict[str, bool] = {}
    with tempfile.TemporaryDirectory(prefix="kill9-parity-") as scratch:
        copy = Path(scratch) / "store"
        shutil.copytree(store_dir, copy)
        for spec in specs:
            store = TenantStore(
                copy / spec.tenant, fsync=config.store_fsync
            )
            try:
                shard = TenantShard(spec, store=store, resume=True)
                report = shard.close()
                verdicts[spec.tenant] = bool(
                    replay_tenant(report).ok and not report.lost_jids
                )
            except Exception:  # noqa: BLE001 - a verdict, not a crash
                verdicts[spec.tenant] = False
            finally:
                store.close()
    return verdicts


def run_kill9(config: Optional[Kill9Config] = None) -> Kill9Report:
    """Run the kill -9 soak: SIGKILL a live service child N times
    mid-traffic, prove disk-state replay parity after every kill, then
    SIGTERM-drain, cold-start and audit zero accepted-job loss."""
    import signal as _signal
    import tempfile

    config = config or Kill9Config()
    soak_cfg = config.soak_config()
    specs = _tenant_specs(soak_cfg)
    store_dir = Path(
        config.store_dir or tempfile.mkdtemp(prefix="repro-kill9-")
    )
    store_dir.mkdir(parents=True, exist_ok=True)
    from repro.service.shard import tenant_spec_to_dict

    specs_file = store_dir / "specs.json"
    specs_file.write_text(
        json.dumps(
            {"tenants": [tenant_spec_to_dict(spec) for spec in specs]},
            indent=2,
        ),
        encoding="utf-8",
    )

    lines = _build_lines(soak_cfg, with_rids=True)
    kill_points = [
        max(1, (k + 1) * len(lines) // (config.kills + 1))
        for k in range(config.kills)
    ]

    problems: List[str] = []
    parity_per_kill: Dict[int, Dict[str, bool]] = {}
    duplicate_acks = 0
    kills_delivered = 0
    incarnations = 0

    # Machine-readable health timeline: one fleet scrape (the ``metrics``
    # wire message, tenant ``*``) per incarnation, after its traffic and
    # before the SIGKILL lands — so the JSONL shows per-tenant SLO
    # snapshots and health states straddling every crash boundary.
    timeline_file = Path(
        config.timeline_path
        if config.timeline_path
        else store_dir / "health_timeline.jsonl"
    )
    timeline_file.parent.mkdir(parents=True, exist_ok=True)
    timeline_fh = timeline_file.open("w", encoding="utf-8")

    def _scrape(port: int, incarnation: int, event: str) -> None:
        row: Dict = {"incarnation": incarnation, "event": event}
        try:
            ack = _send_lines(
                port, [json.dumps({"type": "metrics", "tenant": "*"})]
            )[0]
        except Exception as exc:  # noqa: BLE001 - timeline is best-effort
            row["error"] = str(exc)
        else:
            if ack.get("ok"):
                row["fleet"] = ack.get("tenants", {})
            else:
                row["error"] = ack.get("error", "metrics query failed")
        timeline_fh.write(json.dumps(row, sort_keys=True) + "\n")
        timeline_fh.flush()

    # --- kill incarnations: partial traffic, then SIGKILL ---------------
    for k, point in enumerate(kill_points):
        proc, hello = _spawn_service(config, store_dir, specs_file)
        incarnations += 1
        if k > 0 and not hello.get("cold_start"):
            problems.append(
                f"incarnation {k} did not cold-start from the store"
            )
        try:
            acks = _send_lines(hello["port"], lines[:point])
            duplicate_acks += sum(1 for a in acks if a.get("duplicate"))
            _scrape(hello["port"], incarnations, "pre_kill")
        finally:
            proc.kill()  # SIGKILL — no drain, no flush, no mercy
            proc.wait(timeout=config.spawn_timeout)
        kills_delivered += 1
        parity_per_kill[k] = _offline_parity(config, store_dir, specs)

    # --- final traffic incarnation: full stream, then SIGTERM drain -----
    proc, hello = _spawn_service(config, store_dir, specs_file)
    incarnations += 1
    if not hello.get("cold_start"):
        problems.append("final traffic incarnation did not cold-start")
    acks = _send_lines(hello["port"], lines)
    duplicate_acks += sum(1 for a in acks if a.get("duplicate"))
    _scrape(hello["port"], incarnations, "pre_drain")
    proc.send_signal(_signal.SIGTERM)
    drained: Dict = {}
    for raw in proc.stdout:
        try:
            event = json.loads(raw)
        except ValueError:
            continue
        if event.get("event") == "drained":
            drained = event
            break
    drain_exit = proc.wait(timeout=config.spawn_timeout)
    drain_stats = dict(drained.get("stats", {}))
    if not drain_stats:
        problems.append("no drained event (stats) from the SIGTERM exit")

    # --- audit incarnation: cold start, stat, close (parity acks) -------
    proc, hello = _spawn_service(config, store_dir, specs_file)
    incarnations += 1
    if not hello.get("cold_start"):
        problems.append("audit incarnation did not cold-start")
    _scrape(hello["port"], incarnations, "post_cold_start")
    stat_lines = [
        json.dumps({"type": "stat", "tenant": spec.tenant})
        for spec in specs
    ]
    close_lines = [
        json.dumps({"type": "close", "tenant": spec.tenant})
        for spec in specs
    ]
    audit_acks = _send_lines(hello["port"], stat_lines + close_lines)
    cold_stats = {
        ack["tenant"]: ack
        for ack in audit_acks[: len(specs)]
        if ack.get("ok") and "tenant" in ack
    }
    close_acks = {
        spec.tenant: ack
        for spec, ack in zip(specs, audit_acks[len(specs):])
    }
    proc.send_signal(_signal.SIGTERM)
    proc.wait(timeout=config.spawn_timeout)
    timeline_fh.close()

    return Kill9Report(
        config=config,
        store_dir=str(store_dir),
        kills_delivered=kills_delivered,
        incarnations=incarnations,
        duplicate_acks=duplicate_acks,
        parity_per_kill=parity_per_kill,
        drain_stats=drain_stats,
        cold_stats=cold_stats,
        close_acks=close_acks,
        drain_exit_code=drain_exit,
        problems=problems,
        timeline_path=str(timeline_file),
    )
