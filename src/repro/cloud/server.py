"""A cloud server hosting primary VMs plus a secondary-job scheduler.

Ties the substrate together: the primary occupancy model produces the
residual capacity; the secondary scheduler (V-Dover by default) runs the
secondary jobs on it; non-intrusiveness holds by construction (secondary
work is bounded by the residual integral — re-checked by the trace
validator when ``validate=True``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.cloud.primary import PrimaryOccupancyModel
from repro.cloud.vm import VMRequest, requests_to_jobs
from repro.errors import InvalidInstanceError
from repro.sim.engine import simulate
from repro.sim.job import Job
from repro.sim.metrics import SimulationResult
from repro.sim.scheduler import Scheduler
from repro.workload.base import as_generator

__all__ = ["Server", "ServerRun"]


@dataclass
class ServerRun:
    """Outcome of one server simulation."""

    result: SimulationResult
    residual_capacity: PiecewiseConstantCapacity

    @property
    def revenue(self) -> float:
        """Secondary revenue earned (completed-by-deadline value)."""
        return self.result.value

    @property
    def revenue_per_offered(self) -> float:
        return self.result.normalized_value

    @property
    def mean_residual(self) -> float:
        return self.residual_capacity.mean(0.0, self.result.horizon)


class Server:
    """One server: primary occupancy + secondary scheduling.

    Parameters
    ----------
    primary:
        Model of the contracted primary load (defines ``c̲`` and ``c̄``).
    scheduler:
        Secondary-job policy (any :class:`~repro.sim.scheduler.Scheduler`).
    """

    def __init__(self, primary: PrimaryOccupancyModel, scheduler: Scheduler) -> None:
        self.primary = primary
        self.scheduler = scheduler

    def run_jobs(
        self,
        jobs: Sequence[Job],
        horizon: float,
        rng: np.random.Generator | int | None = None,
        *,
        validate: bool = False,
    ) -> ServerRun:
        """Sample a primary occupancy path and schedule the jobs on the
        residual capacity."""
        if horizon <= 0.0:
            raise InvalidInstanceError(f"horizon must be positive: {horizon!r}")
        gen = as_generator(rng)
        # Residual capacity must cover the sim horizon incl. late deadlines.
        max_deadline = max((j.deadline for j in jobs), default=horizon)
        residual = self.primary.sample_residual(max(horizon, max_deadline) + 1.0, gen)
        result = simulate(jobs, residual, self.scheduler, validate=validate)
        return ServerRun(result=result, residual_capacity=residual)

    def run_requests(
        self,
        requests: Sequence[VMRequest],
        horizon: float,
        rng: np.random.Generator | int | None = None,
        *,
        validate: bool = False,
    ) -> ServerRun:
        """Convenience: convert VM requests to jobs and schedule them."""
        return self.run_jobs(requests_to_jobs(requests), horizon, rng, validate=validate)
