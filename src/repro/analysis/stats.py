"""Monte-Carlo aggregation: means, confidence intervals, paired gains.

The paper's Table I reports percentages averaged over 800 Monte-Carlo runs.
This module provides the small statistics layer the experiment harness uses
on top of raw per-run metrics: summary statistics with normal-approximation
confidence intervals, and *paired* comparisons (the V-Dover-vs-best-Dover
"Gain" column compares the two algorithms on identical instances, so the
paired estimator is the right one and much tighter than unpaired).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import AnalysisError

__all__ = ["Summary", "summarize", "paired_gain_percent"]


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a Monte-Carlo sample."""

    n: int
    mean: float
    std: float
    ci_half_width: float  # 95% normal-approximation half width

    @property
    def ci(self) -> tuple[float, float]:
        return (self.mean - self.ci_half_width, self.mean + self.ci_half_width)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4f} ± {self.ci_half_width:.4f} (n={self.n})"


def summarize(samples: Sequence[float]) -> Summary:
    """Mean, standard deviation and a 95% CI half-width for a sample."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise AnalysisError("cannot summarize an empty sample")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    half = 1.96 * std / math.sqrt(arr.size) if arr.size > 1 else 0.0
    return Summary(n=int(arr.size), mean=mean, std=std, ci_half_width=half)


def paired_gain_percent(
    treatment: Sequence[float], baseline: Sequence[float]
) -> Summary:
    """Relative gain of treatment over baseline, in percent, computed on
    the *mean* levels with a CI from the per-run paired differences.

    Matches the paper's "Gain (%)" column:
    ``100 · (mean(treatment) − mean(baseline)) / mean(baseline)``.
    """
    t = np.asarray(treatment, dtype=float)
    b = np.asarray(baseline, dtype=float)
    if t.size != b.size or t.size == 0:
        raise AnalysisError(
            f"paired samples must be equal-length and non-empty "
            f"(got {t.size} and {b.size})"
        )
    base_mean = float(b.mean())
    if base_mean <= 0.0:
        raise AnalysisError("baseline mean must be positive for a relative gain")
    diffs = 100.0 * (t - b) / base_mean
    return summarize(diffs)
