"""Abstract interface for time-varying processor capacity functions.

The paper models the processor available to secondary jobs as an integrable
function ``c(t)`` bounded between ``c_lower`` (the paper's ``c̲``) and
``c_upper`` (``c̄``)::

    C(c̲, c̄) = { c(t) | c(t) integrable, c̲ <= c(t) <= c̄ }

The workload that can be finished in ``[t1, t2]`` is ``∫ c(τ) dτ`` over that
interval.  Everything the simulation engine and the offline algorithms need
from a capacity model is captured by four queries:

* :meth:`CapacityFunction.value` — the instantaneous rate ``c(t)``;
* :meth:`CapacityFunction.integrate` — workload processable over an interval;
* :meth:`CapacityFunction.advance` — the inverse integral: the first instant
  by which a given amount of work completes (used to predict completions);
* :meth:`CapacityFunction.pieces` — an iterator of piecewise-constant
  segments covering an interval (used by the engine and by the time-stretch
  transformation of Section III-A).

All shipped models are piecewise-constant, which makes ``integrate`` and
``advance`` exact.  A genuinely continuous model can participate by
discretising itself in :meth:`pieces` (see :class:`repro.capacity.trace.
TraceCapacity` which does exactly this for sampled traces).

The default :meth:`CapacityFunction.integrate` / :meth:`CapacityFunction.
advance` implementations scan :meth:`pieces` linearly — they are the
*naive reference semantics* against which the O(log n) prefix-sum index in
:mod:`repro.capacity.prefix` is cross-checked.  Piecewise-backed models
override them with the indexed versions; see ``docs/PERFORMANCE.md``.

Bound-tolerance semantics
-------------------------
Declared bounds are routinely *derived* floats (``total − k·vm_size``,
``factor · upper``, …) and can drift from the realized rates by ~1 ulp.
All band-membership validation therefore goes through :func:`ensure_band` /
:func:`within_band`, which accept violations within a relative tolerance of
``1e-12`` (and absolute ``1e-12`` near zero).  Genuine violations still
raise :class:`~repro.errors.CapacityError`.
"""

from __future__ import annotations

import abc
import math
from typing import Iterator, Tuple

from repro.errors import CapacityError

__all__ = [
    "CapacityFunction",
    "Piece",
    "within_band",
    "ensure_band",
    "BAND_REL_TOL",
    "BAND_ABS_TOL",
]

#: A maximal interval of constant rate: ``(start, end, rate)``.
Piece = Tuple[float, float, float]

#: Relative tolerance for band-membership checks on derived floats.  One
#: ulp of a double is ~2.2e-16 relative; 1e-12 forgives accumulated
#: arithmetic drift (a few thousand ulps) while still catching real
#: violations, which in practice are off by whole rate quanta.
BAND_REL_TOL = 1e-12

#: Absolute tolerance companion for values near zero.
BAND_ABS_TOL = 1e-12


def within_band(
    value: float,
    lo: float,
    hi: float,
    *,
    rel_tol: float = BAND_REL_TOL,
    abs_tol: float = BAND_ABS_TOL,
) -> bool:
    """Tolerance-aware band membership: ``value ∈ [lo, hi]`` up to ulp drift.

    Exact containment passes; otherwise the value must be within
    ``math.isclose(…, rel_tol, abs_tol)`` of the violated edge.  This is the
    shared check for every constructor that compares *derived* floats
    against declared bounds (see module docstring).
    """
    if lo <= value <= hi:
        return True
    edge = lo if value < lo else hi
    return math.isclose(value, edge, rel_tol=rel_tol, abs_tol=abs_tol)


def ensure_band(
    lo: float,
    hi: float,
    realized_min: float,
    realized_max: float,
    *,
    what: str = "realized rates",
    rel_tol: float = BAND_REL_TOL,
    abs_tol: float = BAND_ABS_TOL,
) -> None:
    """Raise :class:`CapacityError` unless ``[realized_min, realized_max]``
    is contained in the declared band ``[lo, hi]`` up to tolerance."""
    if not (
        within_band(realized_min, lo, hi, rel_tol=rel_tol, abs_tol=abs_tol)
        and within_band(realized_max, lo, hi, rel_tol=rel_tol, abs_tol=abs_tol)
    ):
        raise CapacityError(
            f"declared bounds [{lo}, {hi}] do not contain {what} "
            f"[{realized_min}, {realized_max}]"
        )


class CapacityFunction(abc.ABC):
    """A processor-capacity trajectory ``c(t)`` defined for all ``t >= 0``.

    Concrete subclasses must implement :meth:`value` and :meth:`pieces`;
    :meth:`integrate` and :meth:`advance` have exact default implementations
    built on :meth:`pieces` but may be overridden when a closed form is
    cheaper (e.g. :class:`repro.capacity.constant.ConstantCapacity`).

    Parameters
    ----------
    lower, upper:
        The declared bounds ``c̲`` and ``c̄`` of the capacity input set
        ``C(c̲, c̄)``.  Schedulers are only allowed to see these bounds and
        the past of the trajectory; they must never peek at future pieces.
    """

    #: True for models whose ``integrate``/``advance`` are backed by the
    #: prefix-sum index of :mod:`repro.capacity.prefix` (and hence expose a
    #: ``cumulative`` method with ``integrate(a, b) == cumulative(b) −
    #: cumulative(a)`` bit-for-bit).  Consumers such as the simulation
    #: engine and :class:`repro.core.transform.StretchTransform` use this
    #: to take the indexed fast path.
    supports_prefix_index: bool = False

    def __init__(self, lower: float, upper: float) -> None:
        lower = float(lower)
        upper = float(upper)
        # Derived bounds (sums, products of declared bounds) can land one
        # ulp out of order; snap instead of rejecting (see module docstring).
        if lower > upper and math.isclose(
            lower, upper, rel_tol=BAND_REL_TOL, abs_tol=BAND_ABS_TOL
        ):
            lower = upper
        if not (0.0 < lower <= upper):
            raise CapacityError(
                f"capacity bounds must satisfy 0 < lower <= upper, "
                f"got lower={lower!r}, upper={upper!r}"
            )
        self._lower = lower
        self._upper = upper

    # ------------------------------------------------------------------
    # Declared bounds
    # ------------------------------------------------------------------
    @property
    def lower(self) -> float:
        """The conservative bound ``c̲`` (guaranteed minimum rate)."""
        return self._lower

    @property
    def upper(self) -> float:
        """The optimistic bound ``c̄`` (guaranteed maximum rate)."""
        return self._upper

    @property
    def delta(self) -> float:
        """The maximum-variation ratio ``δ = c̄ / c̲`` (paper, Section II-A)."""
        return self._upper / self._lower

    # ------------------------------------------------------------------
    # Abstract queries
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def value(self, t: float) -> float:
        """Return the instantaneous capacity ``c(t)``.

        The returned value must lie in ``[lower, upper]`` for all ``t >= 0``.
        """

    @abc.abstractmethod
    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        """Yield constant-rate segments ``(start, end, rate)`` covering
        ``[t0, t1)`` in order, with ``start`` of the first piece equal to
        ``t0`` and ``end`` of the last equal to ``t1``.

        An empty interval (``t0 >= t1``) yields nothing.
        """

    # ------------------------------------------------------------------
    # Derived queries (exact for piecewise-constant models)
    # ------------------------------------------------------------------
    def integrate(self, t0: float, t1: float) -> float:
        """Return ``∫_{t0}^{t1} c(τ) dτ`` — the workload processable in
        ``[t0, t1]``.  Raises :class:`CapacityError` if ``t1 < t0``.

        This default is a linear front-to-back scan of :meth:`pieces` —
        the *naive reference* implementation.  Piecewise-backed models
        override it with the O(log n) prefix-sum index (see
        :mod:`repro.capacity.prefix`, which also re-exports this scan as
        :func:`~repro.capacity.prefix.naive_integrate` for cross-checks).
        """
        if t1 < t0:
            raise CapacityError(f"reversed interval: [{t0}, {t1}]")
        total = 0.0
        for start, end, rate in self.pieces(t0, t1):
            total += (end - start) * rate
        return total

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        """Return the earliest ``t >= t0`` with ``∫_{t0}^{t} c = work``.

        This is the inverse of :meth:`integrate` in its second argument and
        is what the engine uses to predict job completions exactly.  Returns
        ``math.inf`` if the work does not complete before ``horizon``.

        Parameters
        ----------
        t0:
            Start of processing.
        work:
            Non-negative amount of workload to process.
        horizon:
            Give up (return ``inf``) past this time.  Because ``c >= lower
            > 0`` everywhere, any finite workload completes by
            ``t0 + work / lower``, so the default search window is finite
            even for ``horizon=inf``.
        """
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        if work == 0.0:
            return t0
        # c(t) >= lower > 0 guarantees completion within this window.
        limit = t0 + work / self._lower
        if horizon < limit:
            limit = horizon
        remaining = work
        for start, end, rate in self.pieces(t0, limit):
            capacity_here = (end - start) * rate
            if capacity_here >= remaining - 1e-15:
                if rate <= 0.0:  # pragma: no cover - bounds forbid this
                    raise CapacityError(f"non-positive rate {rate} at t={start}")
                # max() guards against one-ulp drift below t0.
                return max(t0, start + remaining / rate)
            remaining -= capacity_here
        if remaining <= 1e-12 * max(1.0, work):
            # Float shortfall at the search limit, not infeasibility: when
            # c(t) sits exactly at ``lower`` across the whole window the
            # piece sum can land one ulp short of ``work``.  Any finite
            # workload completes by ``t0 + work / lower``, so with
            # ``horizon=inf`` returning ``inf`` here would drop a
            # completion that is mathematically guaranteed (the engine
            # would then never arm the completion event and the job would
            # over-execute).  Snap to the limit in both horizon regimes.
            return limit
        return math.inf

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def mean(self, t0: float, t1: float) -> float:
        """Average capacity over ``[t0, t1]``."""
        if t1 <= t0:
            raise CapacityError(f"empty interval: [{t0}, {t1}]")
        return self.integrate(t0, t1) / (t1 - t0)

    def next_change(self, t: float, horizon: float) -> float:
        """Return the first discontinuity strictly after ``t`` (capped by
        ``horizon``), or ``horizon`` if the rate is constant until then.

        The default implementation scans :meth:`pieces`; subclasses with
        cheap breakpoint access may override.
        """
        for start, end, _rate in self.pieces(t, horizon):
            if end < horizon:
                return end
        return horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(lower={self._lower:g}, "
            f"upper={self._upper:g})"
        )
