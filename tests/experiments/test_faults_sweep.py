"""Acceptance tests for experiment E15 (Table I under sensor faults).

The headline claims being locked in:

* no fault kind/severity crashes the sweep — failures, if any, surface as
  structured records;
* V-Dover (and fixed-ĉ Dover) are *bit-stable* across noise / staleness /
  dropout severities — they never read the sensor, so their column is flat;
* the ``bias`` fault is the one that moves V-Dover (it corrupts the
  declared band, V-Dover's only capacity input);
* ``Dover(sensed)`` stays finite and degrades without crashing.
"""

import pytest

from repro.experiments.faults_sweep import (
    FaultyInstanceFactory,
    default_fault_severities,
    run_faults_sweep,
)
from repro.errors import ExperimentError
from repro.experiments import PaperInstanceFactory
from repro.faults import FAULT_KINDS, FaultSpec
from repro.workload import PoissonWorkload

RUNS = 3
JOBS = 100.0


def tiny_sweep(kind, severities=None, **kw):
    return run_faults_sweep(
        kind,
        severities,
        n_runs=RUNS,
        expected_jobs=JOBS,
        workers=1,
        **kw,
    )


class TestMechanics:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError):
            default_fault_severities("solar-flare")

    def test_default_grids_start_fault_free(self):
        for kind in FAULT_KINDS:
            assert default_fault_severities(kind)[0] == 0.0

    def test_factory_is_picklable_and_paired(self):
        import pickle

        import numpy as np

        inner = PaperInstanceFactory(
            workload=PoissonWorkload(lam=6.0, horizon=10.0), sojourn=2.5
        )
        factory = FaultyInstanceFactory(inner=inner, spec=FaultSpec("noise", 0.3))
        clone = pickle.loads(pickle.dumps(factory))
        a_jobs, _ = factory.make(np.random.default_rng(3))
        b_jobs, _ = clone.make(np.random.default_rng(3))
        assert a_jobs == b_jobs

    def test_same_instances_across_severities(self):
        import numpy as np

        inner = PaperInstanceFactory(
            workload=PoissonWorkload(lam=6.0, horizon=10.0), sojourn=2.5
        )
        mild = FaultyInstanceFactory(inner=inner, spec=FaultSpec("noise", 0.1))
        harsh = FaultyInstanceFactory(inner=inner, spec=FaultSpec("noise", 2.0))
        jobs_a, cap_a = mild.make(np.random.default_rng(7))
        jobs_b, cap_b = harsh.make(np.random.default_rng(7))
        assert jobs_a == jobs_b  # paired comparison across the grid
        from repro.faults import unwrap_faults

        assert unwrap_faults(cap_a).integrate(0.0, 5.0) == unwrap_faults(
            cap_b
        ).integrate(0.0, 5.0)


class TestGracefulDegradation:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_no_fault_crashes_the_sweep(self, kind):
        result = tiny_sweep(kind)
        assert result.failures == []
        n_points = len(default_fault_severities(kind))
        for name, summaries in result.percents.items():
            assert len(summaries) == n_points
            for s in summaries:
                assert 0.0 <= s.mean <= 100.0, (kind, name)

    @pytest.mark.parametrize("kind", ["noise", "staleness", "dropout"])
    def test_vdover_immune_to_sensing_faults(self, kind):
        result = tiny_sweep(kind)
        for name in ("V-Dover", "Dover(c=1)"):
            means = [s.mean for s in result.percents[name]]
            assert means == [means[0]] * len(means), (kind, name)

    def test_bias_moves_vdover(self):
        result = tiny_sweep("bias", (0.0, 0.6))
        means = [s.mean for s in result.percents["V-Dover"]]
        assert means[0] != means[1]

    def test_severe_noise_does_not_help_sensed_dover(self):
        result = tiny_sweep("noise", (0.0, 2.0), seed=31)
        sensed = [s.mean for s in result.percents["Dover(sensed)"]]
        assert sensed[1] <= sensed[0] + 1e-9  # paired: same instances
