"""E6 — ablation: the supplement queue (the paper's delta (ii) vs Dover).

Re-runs the Table-I setup with V-Dover, V-Dover-without-supplements and
Dover(ĉ=c̲).  The gap between the first two isolates the supplement
mechanism; the gap between the last two isolates the conservative-estimate
delta (i).  Expected shape: supplements matter most at moderate-to-heavy
load, where demoted jobs are plentiful and capacity spikes can still
rescue them.
"""

from __future__ import annotations

import pytest

from conftest import expected_jobs
from repro.experiments import run_supplement_ablation
from repro.experiments.runner import default_mc_runs


def test_supplement_ablation(archive, benchmark):
    sweep = run_supplement_ablation(
        lambdas=(4.0, 6.0, 8.0, 12.0),
        n_runs=default_mc_runs(30),
        expected_jobs=min(500.0, expected_jobs()),
    )
    archive("ablation_supplement", sweep.render())

    for i, lam in enumerate(sweep.swept_values):
        full = sweep.percents["V-Dover"][i].mean
        ablated = sweep.percents["V-Dover(no-supp)"][i].mean
        assert full >= ablated - 0.5, (
            f"lambda={lam}: removing supplements should not help"
        )
    # Somewhere in the sweep the mechanism must contribute measurably.
    max_gap = max(
        sweep.percents["V-Dover"][i].mean - sweep.percents["V-Dover(no-supp)"][i].mean
        for i in range(len(sweep.swept_values))
    )
    assert max_gap > 0.5, "supplement queue contributed nothing anywhere"

    benchmark.pedantic(
        lambda: run_supplement_ablation(
            lambdas=(6.0,), n_runs=4, expected_jobs=200.0, workers=1
        ),
        rounds=1,
        iterations=1,
    )
