"""Unit tests for the Job model."""

import pytest

from repro.errors import InvalidInstanceError
from repro.sim import Job, importance_ratio, make_jobs, total_value, validate_jobs


class TestValidation:
    def test_valid_job(self):
        job = Job(0, 1.0, 2.0, 5.0, 3.0)
        assert job.density == pytest.approx(1.5)
        assert job.relative_deadline == pytest.approx(4.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(release=0.0, workload=0.0, deadline=1.0, value=1.0),
            dict(release=0.0, workload=-1.0, deadline=1.0, value=1.0),
            dict(release=0.0, workload=1.0, deadline=0.0, value=1.0),
            dict(release=2.0, workload=1.0, deadline=2.0, value=1.0),
            dict(release=0.0, workload=1.0, deadline=1.0, value=-0.5),
            dict(release=-1.0, workload=1.0, deadline=1.0, value=1.0),
        ],
    )
    def test_invalid_fields(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            Job(jid=0, **kwargs)

    def test_duplicate_ids_rejected(self):
        jobs = [Job(0, 0.0, 1.0, 2.0, 1.0), Job(0, 1.0, 1.0, 3.0, 1.0)]
        with pytest.raises(InvalidInstanceError):
            validate_jobs(jobs)

    def test_zero_value_allowed(self):
        Job(0, 0.0, 1.0, 2.0, 0.0)  # worthless but legal


class TestDerived:
    def test_conservative_processing_time(self):
        job = Job(0, 0.0, 6.0, 10.0, 1.0)
        assert job.conservative_processing_time(2.0) == pytest.approx(3.0)

    def test_admissibility_boundary(self):
        # d - r = p / c_lower exactly: admissible (the paper's workload).
        job = Job(0, 0.0, 4.0, 4.0, 1.0)
        assert job.is_individually_admissible(1.0)
        assert not job.is_individually_admissible(0.5)

    def test_laxity(self):
        job = Job(0, 0.0, 4.0, 10.0, 1.0)
        assert job.laxity(t=2.0, remaining=4.0, rate=1.0) == pytest.approx(4.0)
        assert job.laxity(t=2.0, remaining=2.0, rate=2.0) == pytest.approx(7.0)

    def test_ordering_is_edf(self):
        a = Job(0, 0.0, 1.0, 5.0, 1.0)
        b = Job(1, 0.0, 1.0, 3.0, 1.0)
        assert b < a
        assert sorted([a, b])[0] is b

    def test_ordering_ties_break_by_id(self):
        a = Job(0, 0.0, 1.0, 5.0, 1.0)
        b = Job(1, 0.0, 1.0, 5.0, 1.0)
        assert a < b


class TestHelpers:
    def test_make_jobs_assigns_ids(self):
        jobs = make_jobs([(0.0, 1.0, 2.0, 1.0), (1.0, 1.0, 3.0, 2.0)])
        assert [j.jid for j in jobs] == [0, 1]

    def test_total_value(self):
        jobs = make_jobs([(0.0, 1.0, 2.0, 1.5), (1.0, 1.0, 3.0, 2.5)])
        assert total_value(jobs) == pytest.approx(4.0)

    def test_importance_ratio(self):
        jobs = make_jobs([(0.0, 1.0, 2.0, 1.0), (0.0, 1.0, 2.0, 7.0)])
        assert importance_ratio(jobs) == pytest.approx(7.0)

    def test_importance_ratio_empty(self):
        with pytest.raises(InvalidInstanceError):
            importance_ratio([])

    def test_importance_ratio_zero_density(self):
        jobs = make_jobs([(0.0, 1.0, 2.0, 0.0)])
        with pytest.raises(InvalidInstanceError):
            importance_ratio(jobs)
