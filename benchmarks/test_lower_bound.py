"""E4 — Theorem 3(3): without individual admissibility, no positive ratio.

Runs the adversarial family I_n for growing n and prints the measured
online/offline ratio; the series must decay toward zero (≈ 2/n for this
construction).  EDF and Dover are run alongside V-Dover to show the
impossibility is not an artifact of one policy.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.core import (
    DoverScheduler,
    EDFScheduler,
    VDoverScheduler,
    greedy_admission,
)
from repro.sim import simulate
from repro.workload import inadmissible_trap


def test_theorem3_lower_bound(archive, benchmark):
    sizes = (4, 8, 16, 32, 64)
    rows = []
    vdover_ratios = []
    for n in sizes:
        jobs, capacity = inadmissible_trap(n)
        offline, _ = greedy_admission(jobs, capacity)
        k = float(n * n)
        vd = simulate(jobs, capacity, VDoverScheduler(k=k)).value / offline
        dv = simulate(jobs, capacity, DoverScheduler(k=k, c_hat=1.0)).value / offline
        ed = simulate(jobs, capacity, EDFScheduler()).value / offline
        vdover_ratios.append(vd)
        rows.append([n, vd, dv, ed, 2.0 / (n + 1)])

    archive(
        "theorem3_lower_bound",
        render_table(
            ["n", "V-Dover ratio", "Dover ratio", "EDF ratio", "~2/(n+1)"],
            rows,
            title=(
                "Theorem 3(3) — competitive ratio without individual "
                "admissibility (adversarial family I_n)"
            ),
        ),
    )

    assert all(a > b for a, b in zip(vdover_ratios, vdover_ratios[1:])), (
        "ratio must decay monotonically in n"
    )
    assert vdover_ratios[-1] < 0.05

    jobs, capacity = inadmissible_trap(32)
    benchmark(lambda: simulate(jobs, capacity, VDoverScheduler(k=1024.0)).value)
