"""Invariant watchdog: clean runs stay clean, broken runs get caught.

Two halves:

* the positive battery — every scheduler on realistic instances under the
  full monitor set produces **zero** violations, and attaching the
  watchdog changes nothing (it is observation-only: the watched run is
  bit-identical to the unwatched one);
* the negative battery — hand-built broken engine states trigger each
  monitor at least once, and paranoid mode raises on the first hit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity import ConstantCapacity, TwoStateMarkovCapacity
from repro.core import (
    DoverScheduler,
    EDFScheduler,
    LLFScheduler,
    VDoverScheduler,
)
from repro.errors import InvariantViolationError
from repro.sim import (
    InvariantWatchdog,
    Job,
    JobStatus,
    ScheduleTrace,
    default_monitors,
    results_bit_identical,
    simulate,
)
from repro.sim.events import Event, EventKind
from repro.sim.invariants import (
    AdmissibilityMonitor,
    CapacityBandMonitor,
    DeadlineMonitor,
    MonotoneTimeMonitor,
    ValueAccountingMonitor,
    WorkConservationMonitor,
)
from repro.workload.poisson import PoissonWorkload

SCHEDULERS = [
    pytest.param(lambda: EDFScheduler(), id="edf"),
    pytest.param(lambda: LLFScheduler(), id="llf"),
    pytest.param(lambda: DoverScheduler(k=7.0, c_hat=1.0), id="dover"),
    pytest.param(lambda: VDoverScheduler(k=7.0), id="vdover"),
]


def _instance(seed: int = 21, horizon: float = 10.0):
    workload = PoissonWorkload(
        lam=6.0, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )
    jobs = workload.generate(np.random.default_rng(seed))
    capacity = TwoStateMarkovCapacity(
        1.0, 35.0, mean_sojourn=horizon / 4.0, rng=np.random.default_rng(seed + 1)
    )
    return jobs, capacity


# ----------------------------------------------------------------------
# Positive battery: clean runs produce zero violations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_scheduler", SCHEDULERS)
def test_clean_runs_have_zero_violations(make_scheduler):
    jobs, capacity = _instance()
    watchdog = InvariantWatchdog(default_monitors(admissibility=True))
    simulate(jobs, capacity, make_scheduler(), watchdog=watchdog)
    assert watchdog.summary() == {}, watchdog.violations


@pytest.mark.parametrize("make_scheduler", SCHEDULERS)
def test_watchdog_is_observation_only(make_scheduler):
    """Determinism audit: the watched run is bit-identical to the
    unwatched one — monitors never perturb the simulation."""
    jobs, capacity = _instance(seed=33)
    bare = simulate(jobs, capacity, make_scheduler())
    watched = simulate(
        jobs,
        capacity,
        make_scheduler(),
        watchdog=InvariantWatchdog(default_monitors(admissibility=True)),
    )
    assert results_bit_identical(bare, watched)


def test_paranoid_mode_passes_clean_run():
    jobs, capacity = _instance(seed=4)
    watchdog = InvariantWatchdog(paranoid=True)
    simulate(jobs, capacity, EDFScheduler(), watchdog=watchdog)
    assert watchdog.total_violations == 0


# ----------------------------------------------------------------------
# Negative battery: every monitor fires on a broken state
# ----------------------------------------------------------------------
class _FakeEngine:
    """Duck-typed engine facade exposing exactly what monitors read."""

    def __init__(self, jobs, capacity, trace=None, now=0.0):
        self._jobs = {j.jid: j for j in jobs}
        self._capacity = capacity
        self._trace = trace if trace is not None else ScheduleTrace()
        self._now = now

    @property
    def jobs_by_id(self):
        return dict(self._jobs)

    @property
    def capacity(self):
        return self._capacity

    @property
    def trace(self):
        return self._trace

    @property
    def now(self):
        return self._now


def _job(jid=0, release=0.0, workload=1.0, deadline=10.0, value=1.0):
    return Job(jid, release, workload, deadline, value)


def test_monotone_time_monitor_fires():
    engine = _FakeEngine([_job()], ConstantCapacity(1.0), now=5.0)
    monitor = MonotoneTimeMonitor()
    monitor.start(engine)
    bad = monitor.after_event(engine, Event(1.0, EventKind.TIMER, "tick"))
    assert len(bad) == 1 and bad[0].monitor == "monotone-time"


def test_deadline_monitor_fires_on_overrun():
    job = _job(deadline=5.0)
    trace = ScheduleTrace()
    trace.add_segment(0.0, 7.0, job.jid, 7.0)  # runs 2 past the deadline
    engine = _FakeEngine([job], ConstantCapacity(1.0), trace=trace)
    monitor = DeadlineMonitor()
    monitor.start(engine)
    bad = monitor.after_event(engine, Event(7.0, EventKind.TIMER, "t"))
    assert any(v.monitor == "deadline" and v.jid == job.jid for v in bad)


def test_deadline_monitor_fires_on_early_start():
    job = _job(release=3.0, deadline=9.0)
    trace = ScheduleTrace()
    trace.add_segment(1.0, 4.0, job.jid, 3.0)  # starts before release
    engine = _FakeEngine([job], ConstantCapacity(1.0), trace=trace)
    monitor = DeadlineMonitor()
    monitor.start(engine)
    assert monitor.after_event(engine, Event(4.0, EventKind.TIMER, "t"))


def test_work_conservation_monitor_fires():
    job = _job(workload=9.0)
    trace = ScheduleTrace()
    trace.add_segment(0.0, 3.0, job.jid, 9.0)  # 9 units in 3s at capacity 1
    engine = _FakeEngine([job], ConstantCapacity(1.0), trace=trace)
    monitor = WorkConservationMonitor()
    monitor.start(engine)
    bad = monitor.after_event(engine, Event(3.0, EventKind.TIMER, "t"))
    assert any(v.monitor == "work-conservation" for v in bad)


def test_value_accounting_monitor_fires():
    job = _job(value=4.0)
    trace = ScheduleTrace()
    trace.outcomes[job.jid] = JobStatus.COMPLETED
    trace.completion_times[job.jid] = 1.0
    trace.value_points.append((1.0, 99.0))  # wrong accrual
    engine = _FakeEngine([job], ConstantCapacity(1.0), trace=trace, now=1.0)
    monitor = ValueAccountingMonitor()
    bad = monitor.after_run(engine, None)
    assert any(v.monitor == "value-accounting" for v in bad)


class _BandBreakingCapacity:
    """A capacity whose sampled value escapes its own declared band."""

    lower = 1.0
    upper = 2.0

    def value(self, t: float) -> float:
        return 5.0


def test_capacity_band_monitor_fires():
    engine = _FakeEngine([_job()], _BandBreakingCapacity())
    monitor = CapacityBandMonitor()
    bad = monitor.after_event(engine, Event(0.5, EventKind.TIMER, "t"))
    assert any(v.monitor == "capacity-band" for v in bad)


def test_admissibility_monitor_fires():
    # workload 50 > c_lower * (deadline - release) = 1 * 10
    job = _job(workload=50.0, deadline=10.0)
    engine = _FakeEngine([job], ConstantCapacity(1.0))
    monitor = AdmissibilityMonitor()
    bad = monitor.after_event(engine, Event(0.0, EventKind.RELEASE, job))
    assert any(v.monitor == "admissibility" and v.jid == job.jid for v in bad)
    # Non-release events are ignored.
    assert monitor.after_event(engine, Event(0.0, EventKind.TIMER, "t")) == []


def test_admissibility_excluded_from_defaults():
    names = {type(m).__name__ for m in default_monitors()}
    assert "AdmissibilityMonitor" not in names
    names = {type(m).__name__ for m in default_monitors(admissibility=True)}
    assert "AdmissibilityMonitor" in names


def test_watchdog_counts_and_paranoid():
    job = _job(deadline=5.0)
    trace = ScheduleTrace()
    trace.add_segment(0.0, 7.0, job.jid, 7.0)
    engine = _FakeEngine([job], ConstantCapacity(1.0), trace=trace)

    counting = InvariantWatchdog([DeadlineMonitor()])
    counting.start(engine)
    counting.after_event(engine, Event(7.0, EventKind.TIMER, "t"))
    assert counting.counts["deadline"] >= 1
    assert counting.total_violations == len(counting.violations)

    paranoid = InvariantWatchdog([DeadlineMonitor()], paranoid=True)
    paranoid.start(engine)
    with pytest.raises(InvariantViolationError):
        paranoid.after_event(engine, Event(7.0, EventKind.TIMER, "t"))
