"""The single-processor simulation engine (m = 1 façade over the kernel).

The event loop itself — exact completion prediction on the prefix-indexed
capacity, deadline policing, alarm/timer plumbing with lazy deletion,
trace recording, fault dispatch, snapshot/restore with the write-ahead
journal, and the invariant-watchdog hooks — lives in
:class:`repro.kernel.SchedulingKernel`, shared with the multiprocessor
engine.  This module instantiates the kernel at ``m = 1`` with the
paper's single-processor decision protocol (scheduler handlers return
``Optional[Job]``) and preserves the historical public API byte for byte:

* **exact completion prediction** — when a job starts (or resumes) at time
  ``t`` with remaining workload ``w``, its completion instant is
  ``capacity.advance(t, w)``, computed exactly on the piecewise-constant
  trajectory.  For prefix-indexed capacities (``supports_prefix_index``,
  see :mod:`repro.capacity.prefix`) this is an O(log n) searchsorted on the
  cumulative-work array, and the kernel additionally anchors each running
  segment at ``W(seg_start)`` so progress queries cost one index lookup —
  with values bit-identical to the naive linear scan;
* **deadline policing** — firm deadlines fire as events; a completion at
  exactly the deadline wins the tie (succeeds);
* **alarm plumbing** — schedulers arm per-job alarms (zero-conservative-
  laxity interrupts) and global timers through the context; stale alarms are
  version-dropped and the heap self-compacts;
* **trace recording** — every maximal run segment is logged with the work
  performed, so the schedule can be re-validated independently.

Determinism: for a fixed instance and scheduler the run is bit-for-bit
reproducible — ties in the event heap break by (kind priority, insertion
sequence) and nothing consults a clock or RNG.  The kernel-parity suite
(``tests/multi/test_kernel_parity.py``) pins the m = 1 kernel to the
historical engine's exact outputs.

Crash recovery (docs/ROBUSTNESS.md): the engine can image its complete
mid-run state into an :class:`~repro.sim.journal.EngineSnapshot`
(:meth:`SimulationEngine.snapshot`) and a fresh engine can resume from one
(:meth:`SimulationEngine.restore`).  With a write-ahead
:class:`~repro.sim.journal.EventJournal` attached, every dispatched event
is logged *before* its effects apply; a resumed run re-verifies its
dispatches against the journal (any divergence raises
:class:`~repro.errors.RecoveryError`), so "last snapshot + journal replay"
reproduces the uncrashed run bit-identically.  Execution faults
(:mod:`repro.faults.execution`) inject ``FAULT`` events — mid-run job
kills, VM revocations and scheduled process crashes
(:class:`~repro.errors.SimulatedCrash`) — and an optional invariant
watchdog (:mod:`repro.sim.invariants`) observes every dispatch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.capacity.base import CapacityFunction
from repro.kernel.core import SchedulingKernel
from repro.kernel.recovery import run_with_recovery
from repro.sim.job import Job
from repro.sim.journal import EngineSnapshot, EventJournal
from repro.sim.metrics import SimulationResult
from repro.sim.scheduler import Scheduler, SchedulerContext
from repro.sim.trace import ScheduleTrace

__all__ = ["SimulationEngine", "simulate"]


class _EngineContext(SchedulerContext):
    """The kernel-backed implementation of the online information model.

    Hot path: these methods fire on every scheduler decision, so they read
    the kernel's internals directly (``_now``, ``_current``) instead of
    going through its property accessors — each avoided descriptor call is
    one fewer Python frame per event.  The capacity object is immutable for
    the kernel's lifetime, so it is cached at bind time.
    """

    def __init__(self, kernel: SchedulingKernel) -> None:
        self._kernel = kernel
        self._cap = kernel.capacity  # processor 0 == the whole world
        self.obs = kernel._obs  # None when observability is disabled

    def now(self) -> float:
        return self._kernel._now

    def remaining(self, job: Job) -> float:
        return self._kernel.remaining_of(job)

    def capacity_now(self) -> float:
        return self._cap.value(self._kernel._now)

    @property
    def bounds(self) -> Tuple[float, float]:
        cap = self._cap
        return (cap.lower, cap.upper)

    def current_job(self) -> Optional[Job]:
        return self._kernel._current[0]

    def set_alarm(self, job: Job, time: float, tag: str = "claxity") -> None:
        self._kernel.set_alarm(job, time, tag)

    def cancel_alarm(self, job: Job) -> None:
        self._kernel.cancel_alarm(job)

    def set_timer(self, time: float, tag: str) -> None:
        self._kernel.set_timer(time, tag)


class SimulationEngine:
    """Run one scheduler over one instance (jobs + capacity trajectory).

    Parameters
    ----------
    jobs:
        The instance's job set (ids must be unique).
    capacity:
        The realized capacity trajectory.  The engine may query its future
        (it is the physics of the world); the scheduler cannot.
    scheduler:
        The online policy under test.  ``bind`` is called on it, so a fresh
        run starts from clean per-run state.
    horizon:
        End of simulated time.  Defaults to just past the latest deadline so
        every job resolves.  Jobs unresolved at the horizon are recorded as
        failed.
    validate:
        When true, the produced trace is re-validated against the capacity
        (work conservation, no overlap, deadline legality) before returning;
        a violation raises :class:`~repro.errors.SimulationError`.  Cheap
        enough to leave on in tests; off by default for Monte-Carlo
        throughput.
    faults:
        Execution faults (:mod:`repro.faults.execution`) to arm on this
        run: job kills, revocation evictions, scheduled crashes.
    watchdog:
        Optional :class:`~repro.sim.invariants.InvariantWatchdog`; observes
        every dispatched event (strictly read-only).
    journal:
        Optional :class:`~repro.sim.journal.EventJournal` written ahead of
        every dispatch (and verified against during post-restore replay).
    snapshot_every:
        Take an :class:`~repro.sim.journal.EngineSnapshot` every N
        dispatched events (kept as ``last_snapshot``).  Defaults to 64
        when a crash plan is armed, else off.
    event_queue:
        Event-queue layout: ``"auto"`` (default — a bucketed calendar
        queue in high-λ regimes, a binary heap otherwise), ``"heap"`` or
        ``"calendar"``.  Constant-factor only; runs are bit-identical
        under every choice (:func:`repro.sim.events.make_event_queue`).
    protocol:
        Scheduler dispatch protocol: ``"scalar"`` (default — one handler
        call per event, the historical path), ``"batch"`` / ``"auto"`` —
        feed same-instant interrupt groups through
        :meth:`~repro.sim.batchproto.BatchScheduler.plan` when the
        scheduler is ``batch_capable``.  Results, journals and exported
        traces are bit-identical under every choice
        (``tests/properties/test_property_batchproto.py``).
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        capacity: CapacityFunction,
        scheduler: Scheduler,
        *,
        horizon: float | None = None,
        validate: bool = False,
        faults: Sequence[object] = (),
        watchdog: "object | None" = None,
        journal: "EventJournal | None" = None,
        snapshot_every: int | None = None,
        event_queue: str = "auto",
        protocol: str = "scalar",
    ) -> None:
        self._validate = bool(validate)
        self._kernel = SchedulingKernel(
            jobs,
            [capacity],
            scheduler,
            make_context=_EngineContext,
            horizon=horizon,
            faults=faults,
            watchdog=watchdog,
            journal=journal,
            snapshot_every=snapshot_every,
            event_queue=event_queue,
            single=True,
            protocol=protocol,
        )
        # Faults and watchdog monitors observe *this* object (the public
        # engine), which re-exports every kernel accessor they use.
        self._kernel.owner = self

    # ------------------------------------------------------------------
    # Read-only accessors (used by the invariant watchdog and recovery)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._kernel.now

    @property
    def horizon(self) -> float:
        return self._kernel.horizon

    @property
    def capacity(self) -> CapacityFunction:
        return self._kernel.capacity

    @property
    def trace(self) -> ScheduleTrace:
        return self._kernel.trace

    @property
    def scheduler(self) -> Scheduler:
        return self._kernel.scheduler

    @property
    def jobs_by_id(self) -> Dict[int, Job]:
        return self._kernel.jobs_by_id

    @property
    def dispatch_count(self) -> int:
        """Events dispatched so far (journal index of the next dispatch)."""
        return self._kernel.dispatch_count

    @property
    def last_snapshot(self) -> Optional[EngineSnapshot]:
        return self._kernel.last_snapshot

    @property
    def event_queue_size(self) -> int:
        return self._kernel.event_queue_size

    @property
    def kernel(self) -> SchedulingKernel:
        """The shared scheduling kernel this engine instantiates at m=1."""
        return self._kernel

    # ------------------------------------------------------------------
    # Execution-fault plumbing (used by repro.faults.execution at arm time)
    # ------------------------------------------------------------------
    def push_fault_event(self, time: float, payload: tuple) -> None:
        """Queue a FAULT event (payload: ``("kill", i, retain)``,
        ``("evict", i)`` or ``("crash", i)``)."""
        self._kernel.push_fault_event(time, payload)

    def register_event_crash(self, fault_index: int, at_event: int) -> None:
        """Arrange for crash plan ``fault_index`` to fire just before the
        ``at_event``-th event dispatch."""
        self._kernel.register_event_crash(fault_index, at_event)

    # ------------------------------------------------------------------
    # Run / snapshot / restore
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute (or, after :meth:`restore`, resume) the simulation."""
        self._kernel.run_loop()

        if self._validate:
            self._kernel.trace.validate(
                self._kernel.jobs, self._kernel.capacity
            )

        result = SimulationResult(
            scheduler_name=self._kernel.scheduler.name,
            jobs=self._kernel.jobs,
            horizon=self._kernel.horizon,
            trace=self._kernel.trace,
        )
        self._kernel.after_run(result)
        return result

    def snapshot(self) -> EngineSnapshot:
        """Image the complete mid-run state (picklable; jid-based)."""
        return self._kernel.snapshot()

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Load a snapshot into this (fresh, never-run) engine.

        After restoring, :meth:`run` resumes from the snapshot instant; if
        the engine also holds a journal extending past the snapshot, the
        resumed dispatches are verified against it (deterministic replay).
        """
        self._kernel.restore(snapshot)


def simulate(
    jobs: Sequence[Job],
    capacity: CapacityFunction,
    scheduler: Scheduler,
    *,
    horizon: float | None = None,
    validate: bool = False,
    faults: Sequence[object] = (),
    watchdog: "object | None" = None,
    journal: "EventJournal | None" = None,
    snapshot_every: int | None = None,
    event_queue: str = "auto",
    protocol: str = "scalar",
    recover: bool = False,
    max_recoveries: int = 8,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`SimulationEngine` and run it.

    With ``recover=True`` a :class:`~repro.errors.SimulatedCrash` raised by
    an armed :class:`~repro.faults.EngineCrashPlan` is survived: a fresh
    engine restores the crash's snapshot, replays the journal (when one is
    attached) and continues to the horizon.  The returned result's
    ``recoveries`` attribute counts the crashes survived.
    """

    def _build() -> SimulationEngine:
        return SimulationEngine(
            jobs,
            capacity,
            scheduler,
            horizon=horizon,
            validate=validate,
            faults=faults,
            watchdog=watchdog,
            journal=journal,
            snapshot_every=snapshot_every,
            event_queue=event_queue,
            protocol=protocol,
        )

    result, recoveries = run_with_recovery(
        _build, recover=recover, max_recoveries=max_recoveries
    )
    result.recoveries = recoveries
    return result
