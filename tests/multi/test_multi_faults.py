"""Per-processor execution faults on the multiprocessor engine.

Execution faults carry a ``proc`` target: on an ``m``-server fleet a job
kill or VM revocation strikes exactly one machine while its siblings keep
running.  The sharpest check exploits the partitioned policy's exact
decomposition: with a round-robin dispatcher the per-processor job
streams are fixed at release time, so arming a fault on processor 1 must
leave processor 0's trace **bit-identical** to the fault-free run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.capacity import TwoStateMarkovCapacity
from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.cloud.cluster import RoundRobinDispatcher
from repro.core import VDoverScheduler
from repro.errors import FaultConfigError
from repro.faults import (
    ExecutionFaultSpec,
    JobKillFault,
    RevocationBurst,
    apply_fault_transforms,
)
from repro.multi import (
    GlobalEDFScheduler,
    PartitionedScheduler,
    simulate_multi,
)
from repro.sim import simulate
from repro.workload.poisson import PoissonWorkload


def _instance(seed: int = 5, horizon: float = 12.0, m: int = 2):
    workload = PoissonWorkload(
        lam=6.0, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )
    jobs = workload.generate(np.random.default_rng(seed))
    capacities = [
        TwoStateMarkovCapacity(
            1.0,
            35.0,
            mean_sojourn=horizon / 4.0,
            rng=np.random.default_rng(seed + 1 + p),
        )
        for p in range(m)
    ]
    return jobs, capacities


def _partitioned():
    return PartitionedScheduler(
        RoundRobinDispatcher(), lambda: VDoverScheduler(k=7.0)
    )


def test_kill_on_proc1_leaves_proc0_bit_identical():
    jobs, capacities = _instance()
    clean = simulate_multi(jobs, capacities, _partitioned())
    hit = simulate_multi(
        jobs,
        capacities,
        _partitioned(),
        faults=[JobKillFault(rate=0.5, seed=3, proc=1)],
    )
    # The fault must actually do something on its target machine...
    assert hit.proc_traces[1].segments != clean.proc_traces[1].segments
    # ...and nothing at all on the untargeted one.
    assert hit.proc_traces[0].segments == clean.proc_traces[0].segments


def test_kill_lost_work_attributed_to_target_machine_jobs():
    jobs, capacities = _instance(seed=9)
    clean = simulate_multi(jobs, capacities, _partitioned())
    hit = simulate_multi(
        jobs,
        capacities,
        _partitioned(),
        faults=[JobKillFault(rate=0.5, seed=3, proc=1)],
        validate=True,  # lost-work accounting must still balance
    )
    assert hit.combined.lost_work  # at least one kill landed
    proc0_jids = {seg.jid for seg in clean.proc_traces[0].segments}
    assert all(jid not in proc0_jids for jid in hit.combined.lost_work)


def test_fault_targeting_out_of_range_processor_rejected():
    jobs, capacities = _instance(m=2)
    with pytest.raises(FaultConfigError, match="processor 5"):
        simulate_multi(
            jobs,
            capacities,
            GlobalEDFScheduler(),
            faults=[JobKillFault(rate=0.5, seed=1, proc=5)],
        )
    # The single-processor engine only has processor 0.
    with pytest.raises(FaultConfigError, match="processor 1"):
        simulate(
            jobs,
            capacities[0],
            VDoverScheduler(k=7.0),
            faults=[RevocationBurst(windows=[(1.0, 2.0)], proc=1)],
        )


def test_negative_proc_rejected_at_construction():
    with pytest.raises(FaultConfigError):
        JobKillFault(rate=1.0, proc=-1)
    with pytest.raises(FaultConfigError):
        RevocationBurst(rate=0.1, proc=-2)


def test_apply_fault_transforms_targets_one_trajectory():
    flat = lambda: PiecewiseConstantCapacity(  # noqa: E731
        [0.0], [10.0], lower=2.0, upper=10.0
    )
    c0, c1 = flat(), flat()
    burst = RevocationBurst(windows=[(2.0, 4.0)], proc=1)
    out = apply_fault_transforms([c0, c1], [burst], horizon=8.0)
    assert out[0] is c0  # untargeted trajectory passes through untouched
    assert out[1] is not c1
    assert out[1].value(3.0) == 2.0  # pinned to the floor in the window
    assert out[1].value(5.0) == 10.0
    assert c1.value(3.0) == 10.0  # original object unchanged


def test_apply_fault_transforms_rejects_out_of_range_target():
    c = PiecewiseConstantCapacity([0.0], [5.0], lower=1.0, upper=5.0)
    with pytest.raises(FaultConfigError, match="processor 3"):
        apply_fault_transforms(
            [c], [RevocationBurst(windows=[(1.0, 2.0)], proc=3)], horizon=4.0
        )


def test_execution_fault_spec_builds_proc_targeted_faults():
    kill = ExecutionFaultSpec(
        kind="kill", severity=0.5, options={"proc": 2}
    ).build()
    assert isinstance(kill, JobKillFault) and kill.proc == 2
    rev = ExecutionFaultSpec(
        kind="revocation", severity=0.1, options={"proc": 1}
    ).build()
    assert isinstance(rev, RevocationBurst) and rev.proc == 1
    # Default stays 0 (single-processor behaviour unchanged).
    assert ExecutionFaultSpec(kind="kill", severity=0.5).build().proc == 0


def test_revocation_burst_on_global_policy_evicts_only_target():
    """Global policies migrate, so the cleanest observable is the
    eviction record: with one explicit window on processor 1, validation
    still passes and the run completes (eviction handled as re-release)."""
    jobs, capacities = _instance(seed=11)
    result = simulate_multi(
        jobs,
        capacities,
        GlobalEDFScheduler(),
        faults=[RevocationBurst(windows=[(3.0, 5.0)], proc=1)],
        validate=True,
    )
    assert result.value >= 0.0
