"""Always-on scheduling service: supervised tenant kernels with
admission backpressure and replay-equivalent journaling.

The layers, bottom up:

* :mod:`repro.service.messages` — typed ingress messages and their
  JSON-line wire form;
* :mod:`repro.service.admission` — deterministic admission control and
  load shedding (lowest value-density first);
* :mod:`repro.service.shard` — one live, restartable kernel per tenant,
  driven incrementally, with an op log for recovery;
* :mod:`repro.service.supervisor` — restart ladder, circuit breaker,
  per-tenant asyncio workers (:class:`ScheduleService`);
* :mod:`repro.service.ingress` — TCP/stdin/iterable JSON-line adapters;
* :mod:`repro.service.replay` — the replay-equivalence check that a
  live tenant reproduces its closed-horizon batch run bit-identically;
* :mod:`repro.service.daemon` — the durable process entry
  (``python -m repro serve``): TCP ingress over a crash-safe tenant
  store (:mod:`repro.store`), graceful SIGTERM drain, and the cold
  start the kill -9 soak relies on;
* :mod:`repro.service.exposition` — the HTTP telemetry listener
  (``/metrics`` Prometheus text, ``/metrics.json``, ``/health``) over
  the per-tenant SLO trackers (:mod:`repro.obs.telemetry`).
"""

from repro.service.admission import (
    SHED_REASONS,
    AdmissionController,
    ShedRecord,
)
from repro.service.exposition import TelemetryExposition
from repro.service.ingress import ServiceIngress
from repro.service.messages import (
    FAULT_OPS,
    Advance,
    Close,
    HealthQuery,
    InjectFault,
    Message,
    MetricsQuery,
    Stat,
    Submit,
    encode_message,
    parse_message,
)
from repro.service.replay import ReplayCheck, replay_tenant
from repro.service.shard import (
    SCHEDULER_FACTORIES,
    CapacitySpec,
    TenantReport,
    TenantShard,
    TenantSpec,
    make_scheduler,
    tenant_spec_from_dict,
    tenant_spec_to_dict,
)
from repro.service.supervisor import (
    RestartPolicy,
    ScheduleService,
    TenantSupervisor,
)

__all__ = [
    "AdmissionController",
    "Advance",
    "CapacitySpec",
    "Close",
    "FAULT_OPS",
    "HealthQuery",
    "InjectFault",
    "Message",
    "MetricsQuery",
    "ReplayCheck",
    "RestartPolicy",
    "SCHEDULER_FACTORIES",
    "SHED_REASONS",
    "ScheduleService",
    "ServiceIngress",
    "ShedRecord",
    "Stat",
    "Submit",
    "TelemetryExposition",
    "TenantReport",
    "TenantShard",
    "TenantSpec",
    "TenantSupervisor",
    "encode_message",
    "make_scheduler",
    "parse_message",
    "replay_tenant",
    "tenant_spec_from_dict",
    "tenant_spec_to_dict",
]
