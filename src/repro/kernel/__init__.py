"""The shared scheduling kernel.

One event loop for every engine in the repository: the single-processor
:class:`~repro.sim.engine.SimulationEngine` and the multiprocessor
:class:`~repro.multi.engine.MultiprocessorEngine` are both thin façades
over :class:`SchedulingKernel`, which owns the clock, the event heap and
its lazy-deletion hygiene, per-processor segment accounting (with the
prefix-sum capacity fast path), completion re-prediction, alarm and timer
plumbing, execution-fault dispatch, snapshot/restore with the write-ahead
event journal, and the invariant-watchdog hooks.

See ``docs/ARCHITECTURE.md`` for the layering diagram and migration notes.
"""

from repro.kernel.core import SchedulingKernel
from repro.kernel.recovery import CrashLoopDetector, run_with_recovery

__all__ = ["SchedulingKernel", "CrashLoopDetector", "run_with_recovery"]
