"""Regression tests for tolerance-aware capacity-band validation.

Declared capacity bounds are routinely *derived* floats (``total −
k·vm_size``, ``factor · upper``, sums of bounds, …) and can drift from the
realized rates by ~1 ulp.  The seed suite's one real bug was exactly this:
``PrimaryOccupancyModel.sample_residual`` re-derived its minimum residual
rate with arithmetic that landed one ulp below the declared floor, and
``PiecewiseConstantCapacity``'s then-strict bound check raised
``CapacityError`` on a legitimate instance.

These tests pin the tolerant semantics (relative ε ≈ 1e-12 via
``math.isclose``; see ``repro.capacity.base.ensure_band``) with
adversarial 1-ulp inputs across every constructor that validates derived
floats — and check genuine violations still raise.
"""

import math

import pytest

from repro.capacity import (
    CapacityFunction,
    MarkovModulatedCapacity,
    PiecewiseConstantCapacity,
    ScaledCapacity,
    SinusoidalCapacity,
    SummedCapacity,
    TraceCapacity,
    ensure_band,
    within_band,
)
from repro.cloud import PrimaryOccupancyModel
from repro.errors import CapacityError


def ulp_below(x: float) -> float:
    return math.nextafter(x, -math.inf)


def ulp_above(x: float) -> float:
    return math.nextafter(x, math.inf)


class TestBandHelpers:
    def test_exact_containment(self):
        assert within_band(1.0, 1.0, 2.0)
        assert within_band(2.0, 1.0, 2.0)
        assert within_band(1.5, 1.0, 2.0)

    def test_one_ulp_outside_tolerated(self):
        assert within_band(ulp_below(1.0), 1.0, 2.0)
        assert within_band(ulp_above(2.0), 1.0, 2.0)

    def test_genuine_violation_rejected(self):
        assert not within_band(0.999, 1.0, 2.0)
        assert not within_band(2.001, 1.0, 2.0)

    def test_ensure_band_raises_on_real_violation(self):
        with pytest.raises(CapacityError):
            ensure_band(1.0, 2.0, 0.5, 1.5)
        # ulp drift on both edges passes silently
        ensure_band(1.0, 2.0, ulp_below(1.0), ulp_above(2.0))


class TestPiecewiseTolerantBounds:
    def test_rate_one_ulp_below_declared_lower_accepted(self):
        lower = 1.7950974968010913  # the seed repro's floor
        cap = PiecewiseConstantCapacity(
            [0.0, 1.0], [3.0, ulp_below(lower)], lower=lower, upper=5.0
        )
        assert cap.lower == lower  # declaration wins

    def test_rate_one_ulp_above_declared_upper_accepted(self):
        upper = 18.578747174810477
        cap = PiecewiseConstantCapacity(
            [0.0, 1.0], [1.0, ulp_above(upper)], lower=0.5, upper=upper
        )
        assert cap.upper == upper

    def test_genuinely_out_of_band_still_raises(self):
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([0.0], [2.0], lower=3.0, upper=8.0)
        with pytest.raises(CapacityError):
            PiecewiseConstantCapacity([0.0], [2.0], lower=1.0, upper=1.5)


class TestBaseBoundsSnap:
    def test_lower_one_ulp_above_upper_snaps(self):
        class Degenerate(CapacityFunction):
            def __init__(self):
                super().__init__(ulp_above(2.0), 2.0)

            def value(self, t):
                return 2.0

            def pieces(self, t0, t1):
                if t1 > t0:
                    yield (t0, t1, 2.0)

        cap = Degenerate()
        assert cap.lower == cap.upper == 2.0

    def test_truly_inverted_bounds_still_raise(self):
        class Bad(CapacityFunction):
            def __init__(self):
                super().__init__(2.0, 1.0)

            def value(self, t):  # pragma: no cover
                return 1.0

            def pieces(self, t0, t1):  # pragma: no cover
                return iter(())

        with pytest.raises(CapacityError):
            Bad()


class TestMarkovDeclaredBounds:
    def test_declared_bounds_may_be_wider(self):
        cap = MarkovModulatedCapacity(
            [2.0, 5.0], [1.0, 1.0], rng=0, lower=1.0, upper=9.0
        )
        assert (cap.lower, cap.upper) == (1.0, 9.0)

    def test_one_ulp_tight_declaration_accepted(self):
        cap = MarkovModulatedCapacity(
            [2.0, 5.0], [1.0, 1.0], rng=0,
            lower=ulp_above(2.0), upper=ulp_below(5.0),
        )
        assert cap.value(0.0) == 2.0

    def test_declaration_excluding_a_state_raises(self):
        with pytest.raises(CapacityError):
            MarkovModulatedCapacity([2.0, 5.0], [1.0, 1.0], rng=0, lower=3.0)


class TestCombinatorDerivedBounds:
    def test_scaled_one_ulp_product_drift(self):
        # factor · rates and factor · bounds round independently; the
        # resulting band check must not reject the composition.
        inner = PiecewiseConstantCapacity([0.0], [3.3333333333333335])
        cap = ScaledCapacity(inner, 0.1)
        assert cap.lower == pytest.approx(cap.value(0.0))

    def test_summed_bounds_are_sums(self):
        a = PiecewiseConstantCapacity([0.0], [ulp_below(1.0)])
        b = PiecewiseConstantCapacity([0.0], [ulp_above(2.0)])
        cap = SummedCapacity([a, b])
        assert cap.lower == pytest.approx(3.0)


class TestSinusoidalStepsClamped:
    def test_steps_never_exceed_declared_band(self):
        # mid ± amp·sin(…) can drift one ulp past [low, high]; steps are
        # clamped so value() honours the declared-band contract exactly.
        for phase in (0.0, 0.25, 1.7):
            cap = SinusoidalCapacity(1.0, 5.0, period=4.0, phase=phase,
                                     steps_per_period=128)
            assert all(1.0 <= s <= 5.0 for s in cap._steps)


class TestTraceDeclaredBounds:
    def test_sample_one_ulp_outside_declared_band_accepted(self):
        cap = TraceCapacity(
            [0.0, 1.0], [2.0, ulp_below(1.0)], lower=1.0, upper=3.0
        )
        assert cap.lower == 1.0

    def test_real_spikes_still_need_clip(self):
        with pytest.raises(CapacityError):
            TraceCapacity([0.0, 1.0], [2.0, 5.0], lower=1.0, upper=3.0)
        cap = TraceCapacity(
            [0.0, 1.0], [2.0, 5.0], lower=1.0, upper=3.0, clip=True
        )
        assert cap.value(1.5) == 3.0


class TestPrimaryResidualRepro:
    """The exact Hypothesis-shrunk instance from the seed failure
    (seed 0, ``vm_size=8.391824839004693``): two primary VMs exhaust
    ``total − floor`` exactly and the re-derived minimum residual lands
    one ulp below the floor."""

    MODEL = dict(
        total_capacity=18.578747174810477,
        floor=1.7950974968010913,
        arrival_rate=1.0,
        mean_holding=1.0,
        vm_size=8.391824839004693,
    )

    def test_derived_min_rate_drifts_one_ulp(self):
        m = PrimaryOccupancyModel(**self.MODEL)
        drifted = m.total_capacity - m.max_primary_vms * m.vm_size
        assert drifted < m.floor  # the raw arithmetic really does drift
        assert m.floor - drifted == pytest.approx(math.ulp(m.floor))

    def test_sample_residual_snaps_to_exact_band(self):
        m = PrimaryOccupancyModel(**self.MODEL)
        residual = m.sample_residual(60.0, rng=0)
        assert residual.lower == m.floor
        assert residual.upper == m.total_capacity
        # Realized extremes are the *exact* declared edges, not re-derived
        # floats one ulp off them.
        assert min(residual.rates) >= m.floor
        assert max(residual.rates) <= m.total_capacity

    def test_residual_quantisation_survives_snapping(self):
        m = PrimaryOccupancyModel(**self.MODEL)
        residual = m.sample_residual(60.0, rng=0)
        for rate in residual.rates:
            occupied = (m.total_capacity - rate) / m.vm_size
            assert abs(occupied - round(occupied)) < 1e-6
