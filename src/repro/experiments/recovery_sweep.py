"""Experiment E16: value retention under execution faults + crash recovery.

Two questions about the *executed* world (as opposed to E15's corrupted
*observed* world):

1. **Graceful degradation** — when the running secondary job can be killed
   mid-flight (spot-instance revocations, primary preemption), how much of
   the generated value do EDF, Dover and V-Dover still capture?  The sweep
   replays the paper's Figure-1 configuration (λ = 6, c ∈ {1, 35}, k = 7)
   while a :class:`~repro.faults.JobKillFault` or
   :class:`~repro.faults.RevocationBurst` of increasing rate is armed on
   every run.  The headline expectation: value retention falls *smoothly*
   with the fault rate — no cliff — and V-Dover's advantage over plain EDF
   persists under fire.

2. **Crash-resume equivalence** — :func:`crash_resume_equivalence` arms an
   :class:`~repro.faults.EngineCrashPlan`, lets the engine die mid-run,
   resumes a fresh engine from the crash's snapshot with the write-ahead
   journal attached, and verifies the recovered
   :class:`~repro.sim.metrics.SimulationResult` is **bit-identical** to an
   uncrashed run of the same instance (:func:`~repro.sim.journal.
   results_bit_identical`).  This is the repository's end-to-end proof that
   "last snapshot + journal replay" loses nothing.

Both paths run through the crash-isolated Monte-Carlo harness
(:class:`~repro.experiments.runner.MonteCarloRunner`), persist to the
schema-v2 store (:func:`~repro.experiments.store.save_sweep`) and resume
from ``--checkpoint`` files like every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.stats import summarize
from repro.core.dover import DoverScheduler
from repro.core.edf import EDFScheduler
from repro.core.vdover import VDoverScheduler
from repro.errors import ExperimentError
from repro.faults.execution import EngineCrashPlan, ExecutionFaultSpec
from repro.sim.engine import simulate
from repro.sim.journal import EventJournal, results_bit_identical
from repro.experiments.runner import (
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
)
from repro.experiments.sweeps import SweepResult
from repro.workload.poisson import PoissonWorkload

__all__ = [
    "RecoveryInstanceFactory",
    "default_recovery_rates",
    "run_recovery_sweep",
    "crash_resume_equivalence",
]

#: Fault-rate grids per execution-fault kind (0 = fault-free anchor).
_DEFAULT_RATES: Mapping[str, tuple[float, ...]] = {
    "kill": (0.0, 0.05, 0.1, 0.2, 0.5),  # kill attempts per unit time
    "revocation": (0.0, 0.02, 0.05, 0.1, 0.2),  # revocation onsets per unit time
}


def default_recovery_rates(kind: str) -> tuple[float, ...]:
    """The default fault-rate grid swept for ``kind``."""
    try:
        return _DEFAULT_RATES[kind]
    except KeyError:
        raise ExperimentError(
            f"unknown execution-fault kind {kind!r} for the recovery sweep; "
            f"expected one of {tuple(_DEFAULT_RATES)}"
        ) from None


@dataclass(frozen=True)
class RecoveryInstanceFactory:
    """Wrap an instance factory so every run carries an execution fault.

    Exposes the ``make_with_faults`` protocol the Monte-Carlo worker
    understands: ``(jobs, capacity, faults)``.  The fault seed is drawn
    *after* the instance, so for a fixed replication seed the (jobs,
    true-capacity) pair is identical across fault rates — the sweep is a
    paired comparison.  Revocation faults additionally *transform* the
    capacity (their windows change the physics, not just the event stream);
    the transform uses the same horizon rule as the engine default
    (``max deadline + 1``) so armed evictions line up with the rewritten
    trajectory.
    """

    inner: PaperInstanceFactory
    spec: ExecutionFaultSpec

    def make_with_faults(self, rng: np.random.Generator):
        jobs, capacity = self.inner.make(rng)
        fault_seed = int(rng.integers(0, 2**31 - 1))
        fault = self.spec.build(seed=fault_seed)
        if fault is None:
            return jobs, capacity, ()
        horizon = max((j.deadline for j in jobs), default=0.0) + 1.0
        if isinstance(capacity, (list, tuple)):
            # Multiprocessor inner factory: transform only the fault's
            # target trajectory (repro.faults.apply_fault_transforms).
            from repro.faults import apply_fault_transforms

            capacity = apply_fault_transforms(
                list(capacity), (fault,), horizon
            )
        else:
            capacity = fault.transform(capacity, horizon)
        return jobs, capacity, (fault,)

    def make(self, rng: np.random.Generator):
        """Fault-free view (kept for fingerprinting/back-compat tools)."""
        jobs, capacity, _faults = self.make_with_faults(rng)
        return jobs, capacity


def _figure1_factory(
    lam: float, k: float, expected_jobs: float
) -> PaperInstanceFactory:
    horizon = expected_jobs / lam
    return PaperInstanceFactory(
        workload=PoissonWorkload(
            lam=lam,
            horizon=horizon,
            density_range=(1.0, k),
            c_lower=1.0,
        ),
        low=1.0,
        high=35.0,
        sojourn=horizon / 4.0,
    )


def _recovery_specs(k: float) -> list[SchedulerSpec]:
    return [
        SchedulerSpec("EDF", EDFScheduler, {}),
        SchedulerSpec("Dover(c=1)", DoverScheduler, {"k": k, "c_hat": 1.0}),
        SchedulerSpec("V-Dover", VDoverScheduler, {"k": k}),
    ]


def run_recovery_sweep(
    kind: str,
    rates: Sequence[float] | None = None,
    *,
    lam: float = 6.0,
    k: float = 7.0,
    n_runs: int = 30,
    seed: int = 31,
    workers: int | None = None,
    expected_jobs: float = 500.0,
    retain: float = 0.0,
    mean_down: float = 1.0,
    timeout: float | None = None,
    max_retries: int = 0,
    backoff: float = 0.0,
    checkpoint: str | None = None,
) -> SweepResult:
    """Sweep one execution-fault ``kind`` over a rate grid (Figure-1 setup).

    ``checkpoint`` names a *base* path; each rate cell appends its own
    JSON-lines checkpoint (``<base>.cell<i>``) so an interrupted sweep
    resumes mid-grid.  Failure records (crashes that exhausted their
    snapshot-resume budget, timeouts) land in ``SweepResult.failures``
    keyed by the fault rate.
    """
    if rates is None:
        rates = default_recovery_rates(kind)
    else:
        default_recovery_rates(kind)  # validate the kind eagerly
    base = _figure1_factory(lam, k, expected_jobs)
    specs = _recovery_specs(k)
    result = SweepResult(sweep_name=f"{kind} rate")
    for cell, rate in enumerate(rates):
        options = (
            {"retain": float(retain)}
            if kind == "kill"
            else {"mean_down": float(mean_down)}
        )
        factory = RecoveryInstanceFactory(
            inner=base,
            spec=ExecutionFaultSpec(
                kind=kind, severity=float(rate), options=options
            ),
        )
        runner = MonteCarloRunner(factory, specs)
        report = runner.run_report(
            n_runs,
            seed=seed,
            workers=workers,
            timeout=timeout,
            max_retries=max_retries,
            backoff=backoff,
            checkpoint=None if checkpoint is None else f"{checkpoint}.cell{cell}",
        )
        for failure in report.failure_records():
            result.failures.append((float(rate), failure))
        outcomes = report.survivors
        if not outcomes:
            raise ExperimentError(
                f"recovery sweep {kind!r} rate={rate:g}: every replication "
                f"failed ({report.failure_records()[0]})"
            )
        result.swept_values.append(float(rate))
        for spec in specs:
            result.percents.setdefault(spec.name, []).append(
                summarize([100.0 * o.normalized(spec.name) for o in outcomes])
            )
    return result


def crash_resume_equivalence(
    *,
    lam: float = 6.0,
    k: float = 7.0,
    seed: int = 31,
    expected_jobs: float = 120.0,
    crash_at_event: int = 40,
    snapshot_every: int = 16,
) -> dict[str, dict]:
    """Crash one run of each scheduler mid-flight and prove the resumed run
    is bit-identical to an uncrashed one.

    For each of EDF / Dover(c=1) / V-Dover on the *same* instance:

    1. run to completion fault-free → the reference result;
    2. run again with an :class:`~repro.faults.EngineCrashPlan` at event
       ``crash_at_event``, periodic snapshots every ``snapshot_every``
       events and a write-ahead :class:`~repro.sim.journal.EventJournal`;
       the crash is survived by restoring the last snapshot into a fresh
       engine (which re-verifies its dispatches against the journal);
    3. compare with :func:`~repro.sim.journal.results_bit_identical`.

    Returns ``{scheduler: {"identical": bool, "recoveries": int,
    "value": float}}``; ``identical`` must be True for every scheduler.
    """
    factory = _figure1_factory(lam, k, expected_jobs)
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    jobs, capacity = factory.make(rng)
    report: dict[str, dict] = {}
    for spec in _recovery_specs(k):
        reference = simulate(jobs, capacity, spec.build())

        plan_faults = [EngineCrashPlan(at_event=crash_at_event)]
        journal = EventJournal()  # in-memory write-ahead journal
        recovered = simulate(
            jobs,
            capacity,
            spec.build(),
            faults=plan_faults,
            journal=journal,
            snapshot_every=snapshot_every,
            recover=True,
        )
        report[spec.name] = {
            "identical": results_bit_identical(reference, recovered),
            "recoveries": recovered.recoveries,
            "value": recovered.value,
            "events_journaled": len(journal),
        }
    return report
