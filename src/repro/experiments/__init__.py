"""Experiment harnesses: one per paper artifact (see DESIGN.md's index)."""

from repro.experiments.figure1 import (
    Figure1Config,
    Figure1Panel,
    Figure1Result,
    run_figure1,
)
from repro.experiments.checkpoint import CheckpointStore, run_fingerprint
from repro.experiments.faults_sweep import (
    FaultyInstanceFactory,
    default_fault_severities,
    run_faults_grid,
    run_faults_sweep,
)
from repro.experiments.recovery_sweep import (
    RecoveryInstanceFactory,
    crash_resume_equivalence,
    default_recovery_rates,
    run_recovery_sweep,
)
from repro.experiments.runner import (
    FailedReplication,
    MonteCarloReport,
    MonteCarloRunner,
    PaperInstanceFactory,
    ReplicationOutcome,
    SchedulerSpec,
    default_mc_runs,
)
from repro.experiments.sweeps import (
    SweepResult,
    default_policy_specs,
    run_beta_sweep,
    run_delta_sweep,
    run_k_misestimation_sweep,
    run_policy_sweep,
    run_slack_sweep,
    run_supplement_ablation,
)
from repro.experiments.store import (
    diff_table1,
    load_sweep,
    load_table1,
    save_sweep,
    save_table1,
)
from repro.experiments.table1 import Table1Config, Table1Result, Table1Row, run_table1

__all__ = [
    "Figure1Config",
    "Figure1Panel",
    "Figure1Result",
    "run_figure1",
    "CheckpointStore",
    "run_fingerprint",
    "FaultyInstanceFactory",
    "default_fault_severities",
    "run_faults_grid",
    "run_faults_sweep",
    "RecoveryInstanceFactory",
    "crash_resume_equivalence",
    "default_recovery_rates",
    "run_recovery_sweep",
    "FailedReplication",
    "MonteCarloReport",
    "MonteCarloRunner",
    "PaperInstanceFactory",
    "ReplicationOutcome",
    "SchedulerSpec",
    "default_mc_runs",
    "SweepResult",
    "default_policy_specs",
    "run_beta_sweep",
    "run_delta_sweep",
    "run_k_misestimation_sweep",
    "run_slack_sweep",
    "run_policy_sweep",
    "run_supplement_ablation",
    "Table1Config",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "diff_table1",
    "load_sweep",
    "load_table1",
    "save_sweep",
    "save_table1",
]
