"""Tests for the escalation adversary (the upper-bound game)."""

import pytest

from repro.analysis.theory import dover_beta, dover_competitive_ratio
from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.errors import InvalidInstanceError
from repro.workload.adversary import EscalationAdversary


def dover_factory(k):
    return lambda: DoverScheduler(k=k, c_hat=1.0)


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(k=0.5, escalation=2.0),
            dict(k=4.0, escalation=1.0),
            dict(k=4.0, escalation=2.0, epsilon=0.0),
            dict(k=4.0, escalation=2.0, epsilon=2.0),
            dict(k=4.0, escalation=2.0, max_rounds=0),
            dict(k=4.0, escalation=2.0, max_rounds=30),
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            EscalationAdversary(dover_factory(4.0), **kwargs)


class TestGame:
    def test_all_baits_zero_laxity_and_density_capped(self):
        k = 7.0
        adv = EscalationAdversary(
            dover_factory(k), k, escalation=dover_beta(k) * 1.05
        )
        out = adv.play()
        for job in out.jobs:
            assert job.relative_deadline == pytest.approx(job.workload)
            assert 1.0 - 1e-9 <= job.density <= k + 1e-9

    def test_ratio_between_guarantee_and_one(self):
        """The measured ratio certifies both directions: below 1 (the
        adversary bites) and at or above the scheduler's guarantee (the
        guarantee is not falsified)."""
        for k in (4.0, 16.0):
            adv = EscalationAdversary(
                dover_factory(k), k, escalation=dover_beta(k) * 1.05
            )
            out = adv.play()
            assert dover_competitive_ratio(k) - 1e-9 <= out.ratio < 1.0

    def test_ratio_decreases_with_k(self):
        ratios = []
        for k in (4.0, 16.0, 49.0):
            adv = EscalationAdversary(
                dover_factory(k), k, escalation=dover_beta(k) * 1.05
            )
            ratios.append(adv.play().ratio)
        assert ratios[0] > ratios[1] > ratios[2]

    def test_vdover_matches_dover_at_constant_capacity(self):
        """Consistency with the Section-IV reduction: the game transcript
        and ratio coincide for the two algorithms at the same β."""
        k = 7.0
        beta = dover_beta(k)
        a = EscalationAdversary(
            lambda: DoverScheduler(k=k, c_hat=1.0), k, escalation=beta * 1.05
        ).play()
        b = EscalationAdversary(
            lambda: VDoverScheduler(k=k, beta=beta), k, escalation=beta * 1.05
        ).play()
        assert a.ratio == pytest.approx(b.ratio)
        assert a.jobs == b.jobs

    def test_edf_is_not_baited_by_value(self):
        """EDF ignores value, so the *value*-escalation game barely hurts
        it — its killer is the deadline trap (locke_trap).  Documents that
        Theorem 3(1)'s adversary is per-algorithm."""
        k = 16.0
        out = EscalationAdversary(
            lambda: EDFScheduler(), k, escalation=2.0
        ).play()
        assert out.ratio >= 0.5  # plateaus; never driven toward the k-bound

    def test_deterministic(self):
        k = 7.0
        adv = EscalationAdversary(dover_factory(k), k, escalation=dover_beta(k) * 1.05)
        assert adv.play() == adv.play()
