"""CrashLoopDetector + run_with_recovery livelock regression tests.

A deterministic engine that crashes at position P, restores a snapshot
that replays back to P, and crashes again will do so forever; before the
detector existed, :func:`~repro.kernel.recovery.run_with_recovery` spent
its whole ``max_recoveries`` budget on restores that could not succeed.
The contract now: the *second* consecutive crash at one position raises
:class:`~repro.errors.RecoveryError` immediately, naming the stuck spot.
"""

from __future__ import annotations

import pytest

from repro.errors import RecoveryError, SimulatedCrash
from repro.kernel import CrashLoopDetector
from repro.kernel.recovery import run_with_recovery
from repro.sim.journal import EngineSnapshot


def _crash(
    time: float = 3.0,
    at_event: "int | None" = 10,
    fault_index: int = 0,
    dispatch_count: "int | None" = 5,
) -> SimulatedCrash:
    snapshot = (
        None
        if dispatch_count is None
        else EngineSnapshot(dispatch_count=dispatch_count)
    )
    return SimulatedCrash(
        time, at_event=at_event, fault_index=fault_index, snapshot=snapshot
    )


class TestCrashLoopDetector:
    def test_single_crash_is_fine(self):
        CrashLoopDetector().observe(_crash())

    def test_second_identical_crash_raises_with_position(self):
        detector = CrashLoopDetector()
        detector.observe(_crash())
        with pytest.raises(RecoveryError, match="livelock") as exc_info:
            detector.observe(_crash())
        message = str(exc_info.value)
        assert "t=3" in message
        assert "dispatch #5" in message

    def test_progress_resets_the_signature(self):
        """Any movement — time, event, fault or snapshot — is progress."""
        detector = CrashLoopDetector()
        detector.observe(_crash())
        detector.observe(_crash(time=4.0))  # later crash
        detector.observe(_crash(time=4.0, dispatch_count=9))  # fresher anchor
        detector.observe(_crash(time=4.0, dispatch_count=9, fault_index=1))
        # ... but repeating the last position still trips.
        with pytest.raises(RecoveryError, match="livelock"):
            detector.observe(_crash(time=4.0, dispatch_count=9, fault_index=1))

    def test_alternating_positions_never_trip(self):
        detector = CrashLoopDetector()
        for _ in range(10):
            detector.observe(_crash(time=1.0))
            detector.observe(_crash(time=2.0))

    def test_reset_forgets_the_last_position(self):
        detector = CrashLoopDetector()
        detector.observe(_crash())
        detector.reset()
        detector.observe(_crash())  # same position, but forgotten


class _StuckEngine:
    """Crashes at the same position forever (the livelock shape)."""

    calls = 0

    def run(self):
        type(self).calls += 1
        raise _crash()

    def restore(self, snapshot):
        pass


class _EventuallyDoneEngine:
    """Crashes at *advancing* positions, then completes."""

    crashes = 0

    def run(self):
        if type(self).crashes < 3:
            type(self).crashes += 1
            raise _crash(time=float(type(self).crashes))
        return "done"

    def restore(self, snapshot):
        pass


class TestRunWithRecoveryLivelock:
    def test_livelock_cut_short_after_two_crashes(self):
        _StuckEngine.calls = 0
        with pytest.raises(RecoveryError, match="livelock"):
            run_with_recovery(
                _StuckEngine, recover=True, max_recoveries=50
            )
        # Two runs observed, not 51: the budget was not burned down.
        assert _StuckEngine.calls == 2

    def test_advancing_crashes_still_recover(self):
        _EventuallyDoneEngine.crashes = 0
        result, recoveries = run_with_recovery(
            _EventuallyDoneEngine, recover=True, max_recoveries=8
        )
        assert result == "done"
        assert recoveries == 3
