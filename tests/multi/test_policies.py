"""Tests for global policies and the partitioned adapter."""

import pytest

from repro.capacity import ConstantCapacity, TwoStateMarkovCapacity
from repro.cloud import LeastWorkDispatcher, RoundRobinDispatcher, run_cluster
from repro.core import VDoverScheduler
from repro.multi import (
    GlobalDensityScheduler,
    GlobalEDFScheduler,
    PartitionedScheduler,
    simulate_multi,
)
from repro.sim import Job
from repro.workload import PoissonWorkload


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class TestGlobalEDF:
    def test_runs_m_earliest_deadlines(self):
        jobs = [
            J(0, 0.0, 5.0, 20.0),
            J(1, 0.0, 5.0, 10.0),
            J(2, 0.0, 5.0, 15.0),
        ]
        caps = [ConstantCapacity(1.0)] * 2
        r = simulate_multi(jobs, caps, GlobalEDFScheduler(), validate=True)
        # Jobs 1 (d=10) and 2 (d=15) start; job 0 waits.
        first_started = {t.segments[0].jid for t in r.proc_traces if t.segments}
        assert first_started == {1, 2}
        assert r.n_completed == 3

    def test_preempts_globally(self):
        # Both procs busy with late-deadline work; an urgent arrival must
        # displace the latest-deadline running job.
        jobs = [
            J(0, 0.0, 6.0, 30.0),
            J(1, 0.0, 6.0, 20.0),
            J(2, 1.0, 1.0, 2.5),
        ]
        caps = [ConstantCapacity(1.0)] * 2
        r = simulate_multi(jobs, caps, GlobalEDFScheduler(), validate=True)
        assert r.n_completed == 3
        assert r.combined.completion_times[2] == pytest.approx(2.0)

    def test_urgent_job_lands_on_fastest_free_processor(self):
        caps = [ConstantCapacity(1.0), ConstantCapacity(5.0)]
        jobs = [J(0, 0.0, 4.0, 1.5)]
        r = simulate_multi(jobs, caps, GlobalEDFScheduler(), validate=True)
        assert r.proc_traces[1].segments
        assert not r.proc_traces[0].segments

    def test_feasible_parallel_stream(self):
        jobs = PoissonWorkload(lam=3.0, horizon=30.0, deadline_slack=4.0).generate(3)
        caps = [ConstantCapacity(2.0)] * 3
        r = simulate_multi(jobs, caps, GlobalEDFScheduler(), validate=True)
        assert r.n_completed >= 0.8 * len(jobs)


class TestGlobalDensity:
    def test_prefers_denser_jobs(self):
        jobs = [
            J(0, 0.0, 4.0, 6.0, v=1.0),    # density 0.25
            J(1, 0.0, 4.0, 6.0, v=8.0),    # density 2
            J(2, 0.0, 4.0, 6.0, v=4.0),    # density 1
        ]
        caps = [ConstantCapacity(1.0)] * 2
        r = simulate_multi(jobs, caps, GlobalDensityScheduler(), validate=True)
        started = {t.segments[0].jid for t in r.proc_traces if t.segments}
        assert started == {1, 2}


class TestPartitioned:
    def test_matches_run_cluster_exactly(self):
        """Differential oracle: partitioned-in-multi-engine must equal m
        independent single-processor engines under the same dispatcher and
        local schedulers."""
        jobs = PoissonWorkload(lam=6.0, horizon=40.0).generate(11)
        caps = [
            TwoStateMarkovCapacity(1.0, 10.0, mean_sojourn=10.0, rng=1),
            TwoStateMarkovCapacity(1.0, 10.0, mean_sojourn=10.0, rng=2),
        ]
        multi = simulate_multi(
            jobs,
            caps,
            PartitionedScheduler(RoundRobinDispatcher(), lambda: VDoverScheduler(k=7.0)),
            validate=True,
        )
        # Fresh, identically-seeded capacity paths for the cluster run.
        caps2 = [
            TwoStateMarkovCapacity(1.0, 10.0, mean_sojourn=10.0, rng=1),
            TwoStateMarkovCapacity(1.0, 10.0, mean_sojourn=10.0, rng=2),
        ]
        cluster = run_cluster(
            jobs, caps2, lambda: VDoverScheduler(k=7.0), RoundRobinDispatcher()
        )
        assert multi.value == pytest.approx(cluster.value)
        assert multi.completed_ids == sorted(
            jid for r in cluster.per_server for jid in r.completed_ids
        )

    def test_no_migrations_ever(self):
        jobs = PoissonWorkload(lam=4.0, horizon=30.0).generate(5)
        caps = [ConstantCapacity(1.0)] * 3
        r = simulate_multi(
            jobs,
            caps,
            PartitionedScheduler(LeastWorkDispatcher(), lambda: VDoverScheduler(k=7.0)),
            validate=True,
        )
        assert r.migrations() == 0

    def test_name_reflects_components(self):
        sched = PartitionedScheduler(RoundRobinDispatcher(), lambda: VDoverScheduler(k=7.0))
        simulate_multi([J(0, 0.0, 1.0, 2.0)], [ConstantCapacity(1.0)], sched)
        assert "round-robin" in sched.name
        assert "V-Dover" in sched.name


class TestGlobalVsPartitioned:
    def test_global_edf_wins_on_migration_friendly_instance(self):
        """The classic argument for global scheduling: a stream that
        partitioning fragments can be packed by migration."""
        jobs = [
            J(0, 0.0, 4.0, 4.0),
            J(1, 0.0, 4.0, 4.0),
            J(2, 0.0, 4.0, 6.1),   # needs to split across both procs' slack
        ]
        caps = [ConstantCapacity(1.5)] * 2
        glob = simulate_multi(jobs, caps, GlobalEDFScheduler(), validate=True)
        part = simulate_multi(
            jobs,
            caps,
            PartitionedScheduler(RoundRobinDispatcher(), lambda: VDoverScheduler(k=7.0)),
            validate=True,
        )
        assert glob.n_completed >= part.n_completed
