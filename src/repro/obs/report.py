"""Offline trace analysis: run summaries, tails and decision diffs.

Everything here consumes the plain-dict form produced by
:func:`repro.obs.trace.load_trace` (or an in-memory equivalent) and
returns *strings* — the CLI (``repro-sched obs {report,tail,diff}``)
prints them verbatim, and the tests assert on their content.  Keeping the
renderers pure (no I/O, no global state) makes them trivially testable
and reusable from notebooks.
"""

from __future__ import annotations

from collections import Counter as _TallyCounter
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["render_report", "render_tail", "diff_traces", "decision_stream"]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
_FAULT_PREFIXES = ("fault.", "recovery.", "crash", "sensor.")


def _fmt_num(x: Any) -> str:
    if isinstance(x, float):
        return f"{x:g}"
    return str(x)


def _tally_table(title: str, tally: Mapping[str, int]) -> List[str]:
    lines = [title]
    if not tally:
        lines.append("  (none)")
        return lines
    width = max(len(k) for k in tally)
    for name in sorted(tally, key=lambda k: (-tally[k], k)):
        lines.append(f"  {name:<{width}}  {tally[name]}")
    return lines


def decision_stream(
    events: Iterable[Mapping[str, Any]],
) -> List[Dict[str, Any]]:
    """The ordered list of ``decision`` events from a trace event list.

    Batched-protocol traces may carry ``kind="decisions"`` *container*
    events (one ring slot per same-instant interrupt batch, see
    :meth:`repro.obs.trace.TraceSink.begin_group`).  Containers are
    exploded here so diffs and decision-mix tallies see every individual
    decision — a whole batch is never one opaque event.
    """
    out: List[Dict[str, Any]] = []
    for e in events:
        kind = e.get("kind")
        if kind == "decision":
            out.append(dict(e))
        elif kind == "decisions":
            for item in (e.get("data") or {}).get("items") or ():
                if item.get("kind") == "decision":
                    out.append(dict(item))
    return out


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
def render_report(trace: Mapping[str, Any]) -> str:
    """A human-readable run summary from a loaded trace.

    Sections: header facts, event counts by kind, scheduler decision mix
    (by policy and by action), per-event-kind dispatch latency (when the
    trace carries a profiled metrics footer) and the fault / recovery
    timeline.
    """
    header = trace.get("header") or {}
    events: List[Mapping[str, Any]] = list(trace.get("events") or [])
    metrics = trace.get("metrics")

    lines: List[str] = []
    lines.append("trace report")
    lines.append(
        "  schema=%s events=%s runs=%s%s"
        % (
            header.get("schema", "?"),
            header.get("events", len(events)),
            header.get("runs", "?"),
            " replay-only" if header.get("replay_only") else "",
        )
    )
    if "dropped" in header:
        lines.append(
            "  ring=%s dropped=%s" % (header.get("ring", "?"), header["dropped"])
        )

    # -- event counts by kind ------------------------------------------
    kinds: _TallyCounter = _TallyCounter(e.get("kind", "?") for e in events)
    lines.append("")
    lines.extend(_tally_table("events by kind:", kinds))

    # -- decision mix --------------------------------------------------
    decisions = decision_stream(events)
    by_policy: _TallyCounter = _TallyCounter()
    by_action: _TallyCounter = _TallyCounter()
    for d in decisions:
        data = d.get("data") or {}
        by_policy[str(data.get("policy", "?"))] += 1
        by_action[str(data.get("action", "?"))] += 1
    lines.append("")
    lines.append(f"decisions: {len(decisions)}")
    if decisions:
        lines.extend(_tally_table("  by policy:", by_policy))
        lines.extend(_tally_table("  by action:", by_action))

    # -- dispatch latency (profiled runs only) -------------------------
    latency = _latency_rows(metrics)
    if latency:
        lines.append("")
        lines.append("dispatch latency by event kind (profiled):")
        width = max(len(k) for k, _ in latency)
        for kind, doc in latency:
            mean_us = 1e6 * doc["sum"] / doc["count"] if doc["count"] else 0.0
            lines.append(
                f"  {kind:<{width}}  n={doc['count']}"
                f" mean={mean_us:.1f}us max={1e6 * doc['max']:.1f}us"
            )

    # -- counters worth surfacing even without the trace ---------------
    if metrics:
        counters = metrics.get("counters") or {}
        interesting = {
            k: v
            for k, v in counters.items()
            if not k.startswith("scheduler.decisions.")
        }
        if interesting:
            lines.append("")
            lines.extend(_tally_table("metric counters:", interesting))

    # -- fault / recovery timeline -------------------------------------
    timeline = [
        e
        for e in events
        if any(str(e.get("kind", "")).startswith(p) for p in _FAULT_PREFIXES)
    ]
    lines.append("")
    lines.append(f"fault/recovery timeline: {len(timeline)} event(s)")
    for e in timeline:
        lines.append("  " + _fmt_event(e))

    # -- service supervision (service-mode traces only) ----------------
    service = [
        e for e in events if str(e.get("kind", "")).startswith("service.")
    ]
    if service:
        by_kind: _TallyCounter = _TallyCounter(
            str(e.get("kind")) for e in service
        )
        shed_reasons: _TallyCounter = _TallyCounter(
            str((e.get("data") or {}).get("reason", "?"))
            for e in service
            if e.get("kind") == "service.shed"
        )
        lines.append("")
        lines.extend(_tally_table("service events:", by_kind))
        if shed_reasons:
            lines.extend(_tally_table("  shed by reason:", shed_reasons))
        disruptions = [
            e
            for e in service
            if e.get("kind") in ("service.recover", "service.breaker")
        ]
        for e in disruptions:
            lines.append("  " + _fmt_event(e))

    return "\n".join(lines)


def _latency_rows(
    metrics: Optional[Mapping[str, Any]],
) -> List[Tuple[str, Dict[str, Any]]]:
    if not metrics:
        return []
    rows: List[Tuple[str, Dict[str, Any]]] = []
    prefix = "kernel.dispatch_latency_s."
    for name, doc in sorted((metrics.get("histograms") or {}).items()):
        if name.startswith(prefix) and doc.get("count"):
            rows.append((name[len(prefix) :], dict(doc)))
    return rows


# ----------------------------------------------------------------------
# Tail
# ----------------------------------------------------------------------
def _fmt_event(e: Mapping[str, Any]) -> str:
    parts = [f"t={_fmt_num(e.get('t', '?'))}", str(e.get("kind", "?"))]
    if e.get("life"):
        parts.append("[lifecycle]")
    data = e.get("data")
    if data:
        kv = " ".join(f"{k}={_fmt_num(v)}" for k, v in sorted(data.items()))
        parts.append(kv)
    return " ".join(parts)


def render_tail(trace: Mapping[str, Any], n: int = 25) -> str:
    """The last ``n`` events of a loaded trace, one per line."""
    events: List[Mapping[str, Any]] = list(trace.get("events") or [])
    window = events[-n:] if n > 0 else []
    lines = [f"last {len(window)} of {len(events)} event(s):"]
    for e in window:
        lines.append("  " + _fmt_event(e))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
def diff_traces(
    a: Mapping[str, Any],
    b: Mapping[str, Any],
    *,
    names: Tuple[str, str] = ("A", "B"),
) -> str:
    """First divergence between two decision traces.

    Compares the ordered ``decision`` streams of two loaded traces.  The
    ``policy`` field is deliberately *excluded* from the comparison so
    that, say, V-Dover vs Dover(ĉ) on the same instance diffs on the
    first *behavioural* divergence (different action / job / time), not on
    the first event (their names always differ).  Prints a few decisions
    of context before the divergence.
    """
    da = decision_stream(a.get("events") or [])
    db = decision_stream(b.get("events") or [])

    def _key(d: Mapping[str, Any]) -> Tuple[Any, ...]:
        data = dict(d.get("data") or {})
        data.pop("policy", None)
        return (d.get("t"), tuple(sorted(data.items())))

    lines = [
        f"{names[0]}: {len(da)} decision(s); {names[1]}: {len(db)} decision(s)"
    ]
    n = min(len(da), len(db))
    for i in range(n):
        if _key(da[i]) != _key(db[i]):
            lo = max(0, i - 3)
            if lo:
                lines.append(f"  ... {lo} identical decision(s) elided ...")
            for j in range(lo, i):
                lines.append("  = " + _fmt_event(da[j]))
            lines.append(f"first divergence at decision #{i}:")
            lines.append(f"  {names[0]}: " + _fmt_event(da[i]))
            lines.append(f"  {names[1]}: " + _fmt_event(db[i]))
            return "\n".join(lines)
    if len(da) != len(db):
        longer, which = (da, 0) if len(da) > len(db) else (db, 1)
        lines.append(
            f"decisions identical for the first {n}; "
            f"{names[which]} continues with:"
        )
        lines.append("  + " + _fmt_event(longer[n]))
        return "\n".join(lines)
    lines.append(f"traces agree on all {n} decision(s)")
    return "\n".join(lines)
