"""Workload mixtures: superpose independent job streams.

Real secondary demand is heterogeneous — batch analytics with loose
deadlines riding alongside latency-sensitive transcodes with tight ones.
:class:`MixtureWorkload` superposes any number of component generators
into one stream (each component drawing from an independent spawned RNG),
re-keying job ids by release order so the result is a valid instance.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import InvalidInstanceError
from repro.sim.job import Job
from repro.workload.base import WorkloadGenerator, as_generator

__all__ = ["MixtureWorkload"]


class MixtureWorkload(WorkloadGenerator):
    """Superposition of independent component workloads.

    Parameters
    ----------
    components:
        The generators to superpose.  Each ``generate`` call spawns one
        child RNG per component, so components are independent but the
        mixture as a whole is reproducible from one seed.
    """

    def __init__(self, components: Sequence[WorkloadGenerator]) -> None:
        if not components:
            raise InvalidInstanceError("mixture needs at least one component")
        self.components = list(components)

    def generate(self, rng: np.random.Generator | int | None = None) -> list[Job]:
        gen = as_generator(rng)
        seeds = gen.spawn(len(self.components))
        merged: list[tuple[float, int, Job]] = []
        for component, seed in zip(self.components, seeds):
            for job in component.generate(seed):
                merged.append((job.release, len(merged), job))
        merged.sort(key=lambda item: (item[0], item[1]))
        return [
            Job(
                jid=i,
                release=job.release,
                workload=job.workload,
                deadline=job.deadline,
                value=job.value,
            )
            for i, (_release, _order, job) in enumerate(merged)
        ]

    def component_of(self, rng: np.random.Generator | int | None, jid: int) -> int:
        """Which component produced job ``jid`` in the instance this exact
        ``rng`` seed generates?  (Re-derives the merge; intended for
        analysis, not hot loops.)"""
        gen = as_generator(rng)
        seeds = gen.spawn(len(self.components))
        tagged: list[tuple[float, int, int]] = []
        for idx, (component, seed) in enumerate(zip(self.components, seeds)):
            for job in component.generate(seed):
                tagged.append((job.release, len(tagged), idx))
        tagged.sort(key=lambda item: (item[0], item[1]))
        if not 0 <= jid < len(tagged):
            raise InvalidInstanceError(f"jid {jid} out of range")
        return tagged[jid][2]
