"""E11 — the upper-bound adversary (Theorem 1(2)/3(1)), played live.

Runs the bait-and-switch escalation game against the Dover family over a
range of importance-ratio budgets and prints the measured competitive
ratio next to the theoretical guarantee ``1/(1+√k)²`` and the trivial
upper bound 1.  The measured series must decrease in k and sit strictly
inside (guarantee, 1) — the empirical signature of the adversary argument.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table
from repro.analysis.theory import dover_beta, dover_competitive_ratio
from repro.core import DoverScheduler, GreedyDensityScheduler
from repro.workload.adversary import EscalationAdversary


def test_adversary_game(archive, benchmark):
    ks = (4.0, 7.0, 16.0, 49.0, 100.0)
    rows = []
    dover_ratios = []
    for k in ks:
        beta = dover_beta(k)
        dover = EscalationAdversary(
            lambda: DoverScheduler(k=k, c_hat=1.0), k, escalation=beta * 1.05
        ).play()
        greedy = EscalationAdversary(
            lambda: GreedyDensityScheduler(), k, escalation=1.5
        ).play()
        dover_ratios.append(dover.ratio)
        rows.append(
            [
                f"{k:g}",
                dover.ratio,
                greedy.ratio,
                dover_competitive_ratio(k),
                dover.rounds,
            ]
        )

    archive(
        "adversary_game",
        render_table(
            ["k", "Dover ratio", "GreedyDensity ratio", "guarantee 1/(1+√k)²", "rounds"],
            rows,
            title=(
                "Theorem 1(2)/3(1) adversary — measured competitive ratio "
                "under bait-and-switch escalation (constant capacity)"
            ),
        ),
    )

    assert all(a > b for a, b in zip(dover_ratios, dover_ratios[1:])), (
        "adversary pressure must grow with k"
    )
    for k, ratio in zip(ks, dover_ratios):
        assert dover_competitive_ratio(k) - 1e-9 <= ratio < 1.0

    k = 7.0
    beta = dover_beta(k)
    benchmark(
        lambda: EscalationAdversary(
            lambda: DoverScheduler(k=k, c_hat=1.0), k, escalation=beta * 1.05
        ).play().ratio
    )
