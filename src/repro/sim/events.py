"""Event types and the event heap for the discrete-event engine.

Events are totally ordered by ``(time, kind priority, sequence)``.  The kind
priority encodes the tie-breaking rules the paper's semantics require at a
shared timestamp:

1. ``COMPLETION`` before ``DEADLINE`` — a job finishing exactly at its
   deadline *succeeds* (deadlines are firm but inclusive);
2. ``DEADLINE`` before ``RELEASE`` — expired jobs leave the system before
   new arrivals are considered;
3. ``RELEASE`` before ``ALARM`` — the paper's workload sets relative
   deadlines to ``p/c̲`` so every job's zero-conservative-laxity instant
   coincides with its release; the release handler must run first, then the
   zero-laxity interrupt fires for the job if it was not scheduled.

Stale events are handled by versioning: each (job, kind) carries a version
token captured at scheduling time; bumping the token invalidates in-flight
events without an O(n) heap scan (lazy deletion, as recommended for heapq).
Lazy deletion alone lets dead entries accumulate — schedulers that churn
alarms (LLF crossing timers, Dover's zero-laxity interrupts) can grow the
heap without bound — so the queue also supports *compaction*: when the
caller has hinted that more than half the heap is dead
(:meth:`EventQueue.note_stale`), the heap is filtered through the caller's
staleness predicate and re-heapified.  Compaction preserves pop order
exactly because every entry's ``(time, kind, seq)`` key is unique.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event categories; the integer value is the same-time priority."""

    COMPLETION = 0
    DEADLINE = 1
    RELEASE = 2
    ALARM = 3
    TIMER = 4
    END = 5
    #: Injected execution fault (job kill, VM revocation, scheduled crash).
    #: Lowest priority at a shared timestamp: the world transition the fault
    #: interrupts must have fully taken effect first.
    FAULT = 6


@dataclass(frozen=True)
class Event:
    """A scheduled occurrence.

    ``version`` is compared against the engine's current token for the
    (job, kind) pair at pop time; mismatches are silently dropped.
    ``payload`` carries the job for job events or an arbitrary tag for
    timers.
    """

    time: float
    kind: EventKind
    payload: Any = None
    version: int = 0

    def sort_key(self, seq: int) -> tuple:
        return (self.time, int(self.kind), seq)


class EventQueue:
    """A priority queue of :class:`Event` with deterministic ordering.

    Ties beyond (time, kind) break by insertion sequence, which makes every
    simulation run bit-for-bit reproducible for a fixed input.

    ``stale`` is an optional predicate identifying entries that are
    *provably* dead (their version token was bumped, or their job reached a
    terminal state); it is only consulted during :meth:`compact`.
    """

    def __init__(self, stale: Callable[[Event], bool] | None = None) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._stale = stale
        self._stale_hint = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        if event.time != event.time:  # NaN guard
            raise SimulationError(f"event with NaN time: {event!r}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (event.time, int(event.kind), seq, event))

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, kind, seq, event = heapq.heappop(self._heap)
        if self._stale_hint:
            # The popped entry may itself have been one of the hinted-dead
            # ones; keep the hint an upper bound rather than letting it
            # exceed the heap size.
            self._stale_hint = min(self._stale_hint, len(self._heap))
        return event

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    # -- compaction (lazy-deletion hygiene) ---------------------------------

    def note_stale(self, n: int = 1) -> int:
        """Record that ``n`` in-flight entries just became dead.

        Called by the engine whenever it bumps a version token (cancelling
        an alarm or a completion).  When the hinted dead count exceeds half
        the heap, :meth:`compact` runs automatically.  Returns the number of
        entries removed (0 when no compaction was triggered).
        """
        self._stale_hint += int(n)
        if self._stale is not None and self._stale_hint * 2 > len(self._heap):
            return self.compact()
        return 0

    def compact(self) -> int:
        """Drop all entries the staleness predicate marks dead; re-heapify.

        Safe at any point: pop order is fully determined by the unique
        ``(time, kind, seq)`` keys, so removing dead entries and rebuilding
        the heap never changes which live event comes out next.
        """
        if self._stale is None:
            self._stale_hint = 0
            return 0
        before = len(self._heap)
        self._heap = [entry for entry in self._heap if not self._stale(entry[3])]
        heapq.heapify(self._heap)
        self._stale_hint = 0
        return before - len(self._heap)

    # -- snapshot support ---------------------------------------------------

    def dump(self) -> list[tuple[float, int, int, Event]]:
        """All entries in sorted (pop) order, plus no internal state.

        Used by engine snapshots; pair with :meth:`load` and
        :attr:`next_seq` / :attr:`stale_hint` to rebuild an identical queue.
        """
        return sorted(self._heap)

    def load(
        self,
        entries: Iterable[tuple[float, int, int, Event]],
        next_seq: int,
        stale_hint: int = 0,
    ) -> None:
        """Replace the queue contents (snapshot restore).

        ``next_seq`` must be the original queue's :attr:`next_seq` so that
        sequence numbers assigned after the restore match the original run
        exactly (bit-identical replay depends on it).
        """
        self._heap = list(entries)
        heapq.heapify(self._heap)
        self._counter = itertools.count(int(next_seq))
        self._stale_hint = int(stale_hint)

    @property
    def next_seq(self) -> int:
        """The sequence number the next :meth:`push` will consume."""
        # itertools.count has no peek; clone-by-arithmetic is not possible,
        # so burn-and-restore: take the value and rebuild the counter.
        value = next(self._counter)
        self._counter = itertools.count(value)
        return value

    @property
    def stale_hint(self) -> int:
        """Current hinted count of dead entries (snapshot bookkeeping)."""
        return self._stale_hint
