"""Unit tests for periodic task sets."""

import pytest

from repro.capacity import ConstantCapacity
from repro.core import EDFScheduler, is_feasible
from repro.errors import InvalidInstanceError
from repro.sim import simulate
from repro.workload import PeriodicTask, PeriodicWorkload


class TestTask:
    def test_valid(self):
        t = PeriodicTask(period=5.0, demand=1.0, value_per_job=2.0)
        assert t.relative_deadline is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(period=0.0, demand=1.0, value_per_job=1.0),
            dict(period=5.0, demand=0.0, value_per_job=1.0),
            dict(period=5.0, demand=1.0, value_per_job=-1.0),
            dict(period=5.0, demand=1.0, value_per_job=1.0, offset=-1.0),
            dict(period=5.0, demand=1.0, value_per_job=1.0, relative_deadline=0.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            PeriodicTask(**kwargs)


class TestWorkload:
    def test_unrolls_expected_count(self):
        wl = PeriodicWorkload([PeriodicTask(2.0, 1.0, 1.0)], horizon=10.0)
        jobs = wl.generate()
        assert len(jobs) == 5  # releases at 0, 2, 4, 6, 8

    def test_implicit_deadlines(self):
        wl = PeriodicWorkload([PeriodicTask(2.0, 1.0, 1.0)], horizon=6.0)
        for job in wl.generate():
            assert job.relative_deadline == pytest.approx(2.0)

    def test_offset(self):
        wl = PeriodicWorkload([PeriodicTask(2.0, 1.0, 1.0, offset=1.0)], horizon=6.0)
        assert wl.generate()[0].release == pytest.approx(1.0)

    def test_utilization(self):
        tasks = [PeriodicTask(4.0, 1.0, 1.0), PeriodicTask(2.0, 1.0, 1.0)]
        wl = PeriodicWorkload(tasks, horizon=8.0)
        assert wl.utilization(rate=1.0) == pytest.approx(0.75)
        assert wl.utilization(rate=2.0) == pytest.approx(0.375)

    def test_feasible_when_utilization_below_one(self):
        """Liu & Layland: EDF schedules any implicit-deadline set with
        utilization <= 1 on a unit processor."""
        tasks = [
            PeriodicTask(4.0, 1.0, 1.0),
            PeriodicTask(5.0, 1.5, 1.0),
            PeriodicTask(10.0, 2.0, 1.0),
        ]
        wl = PeriodicWorkload(tasks, horizon=40.0)
        assert wl.utilization(1.0) <= 1.0
        jobs = wl.generate()
        assert is_feasible(jobs, ConstantCapacity(1.0))
        result = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert result.n_completed == len(jobs)

    def test_overutilized_set_infeasible(self):
        tasks = [PeriodicTask(2.0, 1.5, 1.0), PeriodicTask(4.0, 2.0, 1.0)]
        wl = PeriodicWorkload(tasks, horizon=16.0)
        assert wl.utilization(1.0) > 1.0
        assert not is_feasible(wl.generate(), ConstantCapacity(1.0))

    def test_jitter_keeps_deadlines_anchored(self):
        task = PeriodicTask(4.0, 1.0, 1.0)
        wl = PeriodicWorkload([task], horizon=40.0, jitter=1.0)
        for nominal, job in zip(range(0, 40, 4), wl.generate(42)):
            assert nominal <= job.release <= nominal + 1.0
            assert job.deadline == pytest.approx(nominal + 4.0)

    def test_requires_tasks(self):
        with pytest.raises(InvalidInstanceError):
            PeriodicWorkload([], horizon=10.0)
