"""Capacity combinators: build compound models from simple ones.

Real residual-capacity processes are compositions — a diurnal baseline
minus a bursty primary load, a fleet viewed as one pooled processor, a
capped allocation.  These combinators keep everything piecewise-exact:
they operate piece-by-piece over the union of the operands' breakpoints,
so all engine queries stay closed-form.

* :class:`ScaledCapacity`  — ``a * c(t)`` (unit changes, partial reservations);
* :class:`ShiftedCapacity` — ``c(t - t0)`` (phase-aligning traces);
* :class:`SummedCapacity`  — ``c1(t) + c2(t)`` (pooling servers);
* :class:`ClampedCapacity` — ``min(max(c(t), lo), hi)`` (rate caps/floors).

Index composition
-----------------
Where the algebra permits, a combinator *composes* its inner model's
prefix-sum index (:mod:`repro.capacity.prefix`) instead of rescanning
pieces linearly:

* ``ScaledCapacity``: ``∫ a·c = a·∫ c`` and ``advance(t, w)`` on ``a·c``
  equals ``advance(t, w/a)`` on ``c`` — pure delegation, O(log n);
* ``ShiftedCapacity``: the head ``[0, shift)`` is one constant piece; the
  tail delegates to the inner index with a time offset;
* ``SummedCapacity`` / ``ClampedCapacity``: the sum/clamp of indexed
  trajectories has no composable closed form (clamping is non-linear;
  summation needs the union grid), so they keep the *safe fallback* — the
  naive piece-scan of :class:`~repro.capacity.base.CapacityFunction` —
  but still get O(log n) ``next_change`` by delegating to their parts.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.capacity.base import CapacityFunction, Piece
from repro.errors import CapacityError

__all__ = [
    "ScaledCapacity",
    "ShiftedCapacity",
    "SummedCapacity",
    "ClampedCapacity",
]


class ScaledCapacity(CapacityFunction):
    """``factor * inner(t)`` with ``factor > 0``.

    All queries delegate to the inner model (index composition): if the
    inner model is prefix-indexed, every query here is O(log n) too.
    """

    def __init__(self, inner: CapacityFunction, factor: float) -> None:
        if factor <= 0.0:
            raise CapacityError(f"scale factor must be positive: {factor!r}")
        super().__init__(inner.lower * factor, inner.upper * factor)
        self._inner = inner
        self._factor = float(factor)

    def value(self, t: float) -> float:
        return self._factor * self._inner.value(t)

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        for start, end, rate in self._inner.pieces(t0, t1):
            yield (start, end, self._factor * rate)

    def integrate(self, t0: float, t1: float) -> float:
        return self._factor * self._inner.integrate(t0, t1)

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        # ∫ factor·c = work  ⇔  ∫ c = work / factor: delegate to the
        # inner model's (possibly indexed) inverse integral.
        return self._inner.advance(t0, work / self._factor, horizon)

    def next_change(self, t: float, horizon: float) -> float:
        return self._inner.next_change(t, horizon)


class ShiftedCapacity(CapacityFunction):
    """``inner(t - shift)`` for ``t >= shift``; before the shift the rate
    is pinned at ``inner(0)`` (the trace hasn't started yet).

    ``integrate``/``advance`` split at the shift: the head is a single
    constant piece (closed form), the tail delegates to the inner model's
    (possibly indexed) queries with a time offset.
    """

    def __init__(self, inner: CapacityFunction, shift: float) -> None:
        if shift < 0.0:
            raise CapacityError(f"shift must be non-negative: {shift!r}")
        super().__init__(inner.lower, inner.upper)
        self._inner = inner
        self._shift = float(shift)

    def value(self, t: float) -> float:
        if t < self._shift:
            return self._inner.value(0.0)
        return self._inner.value(t - self._shift)

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        if t0 < self._shift:
            head_end = min(self._shift, t1)
            yield (t0, head_end, self._inner.value(0.0))
            t0 = head_end
        if t0 >= t1:
            return
        for start, end, rate in self._inner.pieces(t0 - self._shift, t1 - self._shift):
            yield (start + self._shift, end + self._shift, rate)

    def integrate(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise CapacityError(f"reversed interval: [{t0}, {t1}]")
        s = self._shift
        head = 0.0
        if t0 < s:
            head_end = min(s, t1)
            head = (head_end - t0) * self._inner.value(0.0)
            t0 = head_end
        if t0 >= t1:
            return head
        return head + self._inner.integrate(t0 - s, t1 - s)

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        if work == 0.0:
            return t0
        s = self._shift
        if t0 < s:
            v0 = self._inner.value(0.0)
            head_cap = (s - t0) * v0
            if head_cap >= work - 1e-15:
                t = max(t0, t0 + work / v0)
                return t if t <= horizon else math.inf
            work -= head_cap
            t0 = s
        inner_horizon = horizon - s if math.isfinite(horizon) else math.inf
        t = self._inner.advance(t0 - s, work, inner_horizon)
        if not math.isfinite(t):
            return math.inf
        t += s
        return t if t <= horizon else math.inf

    def next_change(self, t: float, horizon: float) -> float:
        if t < self._shift:
            # First discontinuity at/after the shift comes from the inner
            # model's own grid starting at inner-time 0.
            return min(self._shift, horizon) if self._shift > t else horizon
        nc = self._inner.next_change(t - self._shift, horizon - self._shift)
        return min(nc + self._shift, horizon)


class SummedCapacity(CapacityFunction):
    """Pointwise sum of several capacities (a pooled fleet seen as one
    processor — the fluid upper bound for cluster scheduling).

    ``integrate`` distributes over the sum, so each part's (possibly
    indexed) integral is queried directly.  ``advance`` has no composable
    closed form over the union grid and keeps the safe piece-scan
    fallback of the base class.
    """

    def __init__(self, parts: Sequence[CapacityFunction]) -> None:
        if not parts:
            raise CapacityError("SummedCapacity needs at least one part")
        super().__init__(
            sum(p.lower for p in parts), sum(p.upper for p in parts)
        )
        self._parts = list(parts)

    def value(self, t: float) -> float:
        return sum(p.value(t) for p in self._parts)

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        # Sweep over the union of breakpoints via a merged edge list.
        edges: set[float] = {t0, t1}
        for part in self._parts:
            for start, end, _rate in part.pieces(t0, t1):
                edges.add(start)
                edges.add(end)
        ordered = sorted(edges)
        for start, end in zip(ordered, ordered[1:]):
            if end <= start:
                continue
            yield (start, end, self.value(start))

    def integrate(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise CapacityError(f"reversed interval: [{t0}, {t1}]")
        return sum(p.integrate(t0, t1) for p in self._parts)

    def next_change(self, t: float, horizon: float) -> float:
        return min(p.next_change(t, horizon) for p in self._parts)


class ClampedCapacity(CapacityFunction):
    """``min(max(inner(t), floor), ceiling)`` — a provider-imposed rate cap
    plus a guaranteed floor.  Note integration is done piece-by-piece on
    the clamped rates (exact, since clamping preserves piecewise-constancy).

    Clamping is non-linear, so the inner model's prefix-sum index cannot
    be composed; ``integrate``/``advance`` keep the safe piece-scan
    fallback, while ``next_change`` delegates (clamping preserves the
    inner breakpoint grid).
    """

    def __init__(
        self, inner: CapacityFunction, floor: float, ceiling: float
    ) -> None:
        if not (0.0 < floor <= ceiling):
            raise CapacityError(
                f"need 0 < floor <= ceiling, got {floor!r}, {ceiling!r}"
            )
        lo = min(max(inner.lower, floor), ceiling)
        hi = min(max(inner.upper, floor), ceiling)
        super().__init__(lo, hi)
        self._inner = inner
        self._floor = float(floor)
        self._ceiling = float(ceiling)

    def _clamp(self, rate: float) -> float:
        return min(max(rate, self._floor), self._ceiling)

    def value(self, t: float) -> float:
        return self._clamp(self._inner.value(t))

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        for start, end, rate in self._inner.pieces(t0, t1):
            yield (start, end, self._clamp(rate))

    def next_change(self, t: float, horizon: float) -> float:
        return self._inner.next_change(t, horizon)
