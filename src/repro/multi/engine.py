"""Multiprocessor discrete-event engine (m ≥ 1 façade over the kernel).

The event loop is :class:`repro.kernel.SchedulingKernel` — the same one
the single-processor :class:`~repro.sim.engine.SimulationEngine` runs —
instantiated with ``m`` (possibly heterogeneous) capacity trajectories and
the assignment decision protocol: the scheduler returns a full assignment
after every interrupt; the kernel diffs it against the current one, closes
segments for displaced jobs, and re-predicts completions with each
processor's exact inverse integral (O(log n) via the per-capacity
prefix-sum index when available).

Migration semantics: preemption and migration are free; a preempted job
resumes from its exact remaining workload on any processor (workload is
capacity-units × time, so a job's progress is processor-independent — the
same modelling choice the paper makes for its dynamically-sized VMs).

Because the loop is shared, everything the single-processor engine can do
works here too, for free:

* **execution-fault injection** (:mod:`repro.faults.execution`) — job
  kills, per-machine revocation bursts and scheduled crashes, with
  per-processor targeting (``JobKillFault(..., proc=2)``);
* **crash recovery** — :meth:`MultiprocessorEngine.snapshot` /
  :meth:`MultiprocessorEngine.restore` with the write-ahead
  :class:`~repro.sim.journal.EventJournal`, and
  ``simulate_multi(..., recover=True)`` resuming bit-identically;
* **invariant monitoring** — the watchdog's monitors read the engine's
  per-processor traces and capacities.

The validator enforces, on top of the per-processor legality checks, that
no job ever runs on two processors at once (no intra-job parallelism).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.capacity.base import CapacityFunction
from repro.kernel.core import SchedulingKernel
from repro.kernel.recovery import run_with_recovery
from repro.multi.metrics import MultiSimulationResult
from repro.multi.scheduler import MultiScheduler, MultiSchedulerContext
from repro.sim.job import Job
from repro.sim.journal import EngineSnapshot, EventJournal
from repro.sim.trace import ScheduleTrace

__all__ = ["MultiprocessorEngine", "simulate_multi"]


class _MultiContext(MultiSchedulerContext):
    """The kernel-backed implementation of the online information model.

    Hot path: fires on every scheduler decision, so it reads the kernel's
    internals (``_now``, ``_current``) directly and caches the immutable
    capacity list at bind time — same discipline as the single-processor
    ``_EngineContext``.
    """

    def __init__(self, kernel: SchedulingKernel) -> None:
        self._kernel = kernel
        self._caps = list(kernel.capacities)
        self.obs = kernel._obs  # None when observability is disabled

    def now(self) -> float:
        return self._kernel._now

    @property
    def n_procs(self) -> int:
        return len(self._caps)

    def remaining(self, job: Job) -> float:
        return self._kernel.remaining_of(job)

    def running(self) -> Tuple[Optional[Job], ...]:
        return tuple(self._kernel._current)

    def capacity_now(self, proc: int) -> float:
        return self._caps[proc].value(self._kernel._now)

    def bounds(self, proc: int) -> Tuple[float, float]:
        cap = self._caps[proc]
        return (cap.lower, cap.upper)

    def set_alarm(self, job: Job, time: float, tag: str = "alarm") -> None:
        self._kernel.set_alarm(job, time, tag)

    def cancel_alarm(self, job: Job) -> None:
        self._kernel.cancel_alarm(job)

    def set_timer(self, time: float, tag: str) -> None:
        self._kernel.set_timer(time, tag)


class MultiprocessorEngine:
    """Run one global scheduler over m processors.

    Parameters mirror the single-processor engine; ``capacities`` carries
    one trajectory per processor, and ``faults`` / ``watchdog`` /
    ``journal`` / ``snapshot_every`` behave exactly as on
    :class:`~repro.sim.engine.SimulationEngine` (same kernel).
    """

    def __init__(
        self,
        jobs: Sequence[Job],
        capacities: Sequence[CapacityFunction],
        scheduler: MultiScheduler,
        *,
        horizon: float | None = None,
        validate: bool = False,
        faults: Sequence[object] = (),
        watchdog: "object | None" = None,
        journal: "EventJournal | None" = None,
        snapshot_every: int | None = None,
        event_queue: str = "auto",
        protocol: str = "scalar",
    ) -> None:
        self._validate = bool(validate)
        self._kernel = SchedulingKernel(
            jobs,
            list(capacities),
            scheduler,
            make_context=_MultiContext,
            horizon=horizon,
            faults=faults,
            watchdog=watchdog,
            journal=journal,
            snapshot_every=snapshot_every,
            event_queue=event_queue,
            single=False,
            protocol=protocol,
        )
        # Faults and watchdog monitors observe *this* object (the public
        # engine), which re-exports every kernel accessor they use.
        self._kernel.owner = self

    # ------------------------------------------------------------------
    # Read-only accessors (used by the invariant watchdog and recovery)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._kernel.now

    @property
    def horizon(self) -> float:
        return self._kernel.horizon

    @property
    def n_procs(self) -> int:
        return self._kernel.n_procs

    @property
    def capacity(self) -> CapacityFunction:
        """Processor 0's trajectory (monitor fallback for m = 1 reads)."""
        return self._kernel.capacity

    @property
    def capacities(self) -> List[CapacityFunction]:
        return self._kernel.capacities

    @property
    def trace(self) -> ScheduleTrace:
        """The combined outcome/value record (no segments for m > 1)."""
        return self._kernel.trace

    @property
    def proc_traces(self) -> List[ScheduleTrace]:
        return self._kernel.traces

    @property
    def scheduler(self) -> MultiScheduler:
        return self._kernel.scheduler

    @property
    def jobs_by_id(self) -> Dict[int, Job]:
        return self._kernel.jobs_by_id

    @property
    def dispatch_count(self) -> int:
        """Events dispatched so far (journal index of the next dispatch)."""
        return self._kernel.dispatch_count

    @property
    def last_snapshot(self) -> Optional[EngineSnapshot]:
        return self._kernel.last_snapshot

    @property
    def event_queue_size(self) -> int:
        return self._kernel.event_queue_size

    @property
    def kernel(self) -> SchedulingKernel:
        """The shared scheduling kernel this engine instantiates at m≥1."""
        return self._kernel

    # ------------------------------------------------------------------
    # Execution-fault plumbing (used by repro.faults.execution at arm time)
    # ------------------------------------------------------------------
    def push_fault_event(self, time: float, payload: tuple) -> None:
        """Queue a FAULT event (payload: ``("kill", i, retain[, proc])``,
        ``("evict", i[, proc])`` or ``("crash", i)``)."""
        self._kernel.push_fault_event(time, payload)

    def register_event_crash(self, fault_index: int, at_event: int) -> None:
        """Arrange for crash plan ``fault_index`` to fire just before the
        ``at_event``-th event dispatch."""
        self._kernel.register_event_crash(fault_index, at_event)

    # ------------------------------------------------------------------
    # Run / snapshot / restore
    # ------------------------------------------------------------------
    def run(self) -> MultiSimulationResult:
        """Execute (or, after :meth:`restore`, resume) the simulation."""
        self._kernel.run_loop()

        result = MultiSimulationResult(
            scheduler_name=self._kernel.scheduler.name,
            jobs=self._kernel.jobs,
            horizon=self._kernel.horizon,
            proc_traces=self._kernel.traces,
            combined=self._kernel.outcomes,
        )
        if self._validate:
            result.validate(self._kernel.capacities)
        self._kernel.after_run(result)
        return result

    def snapshot(self) -> EngineSnapshot:
        """Image the complete mid-run state (picklable; jid-based)."""
        return self._kernel.snapshot()

    def restore(self, snapshot: EngineSnapshot) -> None:
        """Load a snapshot into this (fresh, never-run) engine.

        After restoring, :meth:`run` resumes from the snapshot instant; if
        the engine also holds a journal extending past the snapshot, the
        resumed dispatches are verified against it (deterministic replay).
        """
        self._kernel.restore(snapshot)


def simulate_multi(
    jobs: Sequence[Job],
    capacities: Sequence[CapacityFunction],
    scheduler: MultiScheduler,
    *,
    horizon: float | None = None,
    validate: bool = False,
    faults: Sequence[object] = (),
    watchdog: "object | None" = None,
    journal: "EventJournal | None" = None,
    snapshot_every: int | None = None,
    event_queue: str = "auto",
    protocol: str = "scalar",
    recover: bool = False,
    max_recoveries: int = 8,
) -> MultiSimulationResult:
    """Convenience wrapper mirroring :func:`repro.sim.simulate`.

    With ``recover=True`` a :class:`~repro.errors.SimulatedCrash` raised by
    an armed :class:`~repro.faults.EngineCrashPlan` is survived: a fresh
    engine restores the crash's snapshot, replays the journal (when one is
    attached) and continues to the horizon.  The returned result's
    ``recoveries`` attribute counts the crashes survived.
    """

    def _build() -> MultiprocessorEngine:
        return MultiprocessorEngine(
            jobs,
            capacities,
            scheduler,
            horizon=horizon,
            validate=validate,
            faults=faults,
            watchdog=watchdog,
            journal=journal,
            snapshot_every=snapshot_every,
            event_queue=event_queue,
            protocol=protocol,
        )

    result, recoveries = run_with_recovery(
        _build, recover=recover, max_recoveries=max_recoveries
    )
    result.recoveries = recoveries
    return result
