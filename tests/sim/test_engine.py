"""Unit tests for the discrete-event engine mechanics."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.core import EDFScheduler
from repro.errors import SchedulingError
from repro.sim import Job, JobStatus, Scheduler, SimulationEngine, simulate


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


class RunFirstScheduler(Scheduler):
    """Minimal policy: run whatever arrives if idle; never preempt; log
    every handler invocation for assertions."""

    name = "run-first"

    def reset(self):
        self.log = []
        self.backlog = []

    def on_release(self, job):
        self.log.append(("release", job.jid, self.ctx.now()))
        current = self.ctx.current_job()
        if current is None:
            return job
        self.backlog.append(job)
        return current

    def on_job_end(self, job, completed):
        self.log.append(("end", job.jid, completed, self.ctx.now()))
        if self.ctx.current_job() is not None:
            if job in self.backlog:
                self.backlog.remove(job)
            return self.ctx.current_job()
        if job in self.backlog:
            self.backlog.remove(job)
        return self.backlog.pop(0) if self.backlog else None


class TestBasicExecution:
    def test_single_job_completes(self):
        result = simulate(
            [J(0, 0.0, 2.0, 5.0, v=3.0)], ConstantCapacity(1.0), RunFirstScheduler(),
            validate=True,
        )
        assert result.value == 3.0
        assert result.completed_ids == [0]
        assert result.trace.completion_times[0] == pytest.approx(2.0)

    def test_completion_exactly_at_deadline_succeeds(self):
        result = simulate(
            [J(0, 0.0, 5.0, 5.0, v=2.0)], ConstantCapacity(1.0), RunFirstScheduler(),
            validate=True,
        )
        assert result.completed_ids == [0]

    def test_deadline_failure(self):
        result = simulate(
            [J(0, 0.0, 10.0, 5.0, v=2.0)], ConstantCapacity(1.0), RunFirstScheduler(),
            validate=True,
        )
        assert result.value == 0.0
        assert result.failed_ids == [0]
        # Work stops at the deadline, not at the horizon.
        assert result.trace.segments[-1].end == pytest.approx(5.0)

    def test_sequential_jobs(self):
        jobs = [J(0, 0.0, 2.0, 10.0), J(1, 0.5, 2.0, 10.0)]
        result = simulate(jobs, ConstantCapacity(1.0), RunFirstScheduler(), validate=True)
        assert result.n_completed == 2
        assert result.trace.completion_times[0] == pytest.approx(2.0)
        assert result.trace.completion_times[1] == pytest.approx(4.0)

    def test_varying_capacity_completion_exact(self):
        # rate 1 for 10s then 4: 18 units of work completes at 10 + 8/4 = 12.
        cap = PiecewiseConstantCapacity([0.0, 10.0], [1.0, 4.0])
        result = simulate([J(0, 0.0, 18.0, 20.0)], cap, RunFirstScheduler(), validate=True)
        assert result.trace.completion_times[0] == pytest.approx(12.0)

    def test_idle_gap_between_jobs(self):
        jobs = [J(0, 0.0, 1.0, 5.0), J(1, 3.0, 1.0, 8.0)]
        result = simulate(jobs, ConstantCapacity(1.0), RunFirstScheduler(), validate=True)
        assert result.n_completed == 2
        assert result.busy_time == pytest.approx(2.0)


class TestPreemption:
    def test_edf_preemption_resumes_from_point_of_preemption(self):
        # Job 0 runs [0,1), preempted by job 1 (earlier deadline), resumes.
        jobs = [J(0, 0.0, 3.0, 10.0), J(1, 1.0, 1.0, 3.0)]
        result = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        assert result.n_completed == 2
        assert result.trace.completion_times[1] == pytest.approx(2.0)
        assert result.trace.completion_times[0] == pytest.approx(4.0)
        work = result.trace.work_by_job()
        assert work[0] == pytest.approx(3.0)

    def test_preempted_job_fails_if_starved(self):
        jobs = [J(0, 0.0, 3.0, 3.5), J(1, 1.0, 2.0, 3.2)]
        result = simulate(jobs, ConstantCapacity(1.0), EDFScheduler(), validate=True)
        # EDF switches to job 1 at t=1 (deadline 3.2 < 3.5); job 1 completes
        # at t=3; job 0 has 2 units left and only 0.5 until its deadline.
        assert result.completed_ids == [1]
        assert 0 in result.failed_ids


class TestEngineContracts:
    def test_scheduler_cannot_run_unreleased_job(self):
        ghost = J(99, 50.0, 1.0, 60.0)

        class Evil(RunFirstScheduler):
            def on_release(self, job):
                return ghost

        with pytest.raises(SchedulingError):
            simulate([J(0, 0.0, 1.0, 5.0), ghost], ConstantCapacity(1.0), Evil())

    def test_handler_call_sequence(self):
        sched = RunFirstScheduler()
        simulate(
            [J(0, 0.0, 1.0, 5.0), J(1, 0.5, 10.0, 2.0)],
            ConstantCapacity(1.0),
            sched,
        )
        kinds = [entry[0] for entry in sched.log]
        assert kinds == ["release", "release", "end", "end"]
        # Job 0 completes (True); job 1 fails at its deadline (False).
        assert ("end", 0, True, 1.0) in sched.log
        assert sched.log[-1][0:3] == ("end", 1, False)

    def test_waiting_job_expiry_notifies_scheduler(self):
        sched = RunFirstScheduler()
        result = simulate(
            [J(0, 0.0, 5.0, 10.0), J(1, 1.0, 1.0, 1.5)],  # job 1 dies waiting
            ConstantCapacity(1.0),
            sched,
            validate=True,
        )
        assert ("end", 1, False, 1.5) in sched.log
        assert result.completed_ids == [0]

    def test_determinism(self):
        jobs = [J(i, i * 0.3, 1.0, i * 0.3 + 2.0, v=float(i + 1)) for i in range(20)]
        r1 = simulate(jobs, ConstantCapacity(1.0), EDFScheduler())
        r2 = simulate(jobs, ConstantCapacity(1.0), EDFScheduler())
        assert r1.trace.segments == r2.trace.segments
        assert r1.value == r2.value

    def test_horizon_marks_unresolved_as_failed(self):
        result = simulate(
            [J(0, 0.0, 100.0, 200.0)],
            ConstantCapacity(1.0),
            RunFirstScheduler(),
            horizon=10.0,
        )
        assert result.value == 0.0
        assert result.trace.outcomes[0] is JobStatus.FAILED
        assert result.trace.segments[-1].end == pytest.approx(10.0)

    def test_release_after_horizon_ignored(self):
        result = simulate(
            [J(0, 50.0, 1.0, 60.0)],
            ConstantCapacity(1.0),
            RunFirstScheduler(),
            horizon=10.0,
        )
        assert result.value == 0.0
        assert result.trace.segments == []


class TestContextInformation:
    def test_remaining_of_running_job_updates(self):
        seen = {}

        class Probe(RunFirstScheduler):
            def on_release(self, job):
                current = self.ctx.current_job()
                if current is not None:
                    seen["remaining"] = self.ctx.remaining(current)
                    self.backlog.append(job)
                    return current
                return job

        simulate(
            [J(0, 0.0, 5.0, 20.0), J(1, 2.0, 1.0, 20.0)],
            ConstantCapacity(1.0),
            Probe(),
        )
        assert seen["remaining"] == pytest.approx(3.0)

    def test_remaining_accounts_for_varying_rate(self):
        seen = {}
        cap = PiecewiseConstantCapacity([0.0, 1.0], [1.0, 3.0])

        class Probe(RunFirstScheduler):
            def on_release(self, job):
                current = self.ctx.current_job()
                if current is not None:
                    seen["remaining"] = self.ctx.remaining(current)
                    self.backlog.append(job)
                    return current
                return job

        # By t=2 the running job did 1*1 + 1*3 = 4 of its 10 units.
        simulate([J(0, 0.0, 10.0, 20.0), J(1, 2.0, 1.0, 20.0)], cap, Probe())
        assert seen["remaining"] == pytest.approx(6.0)

    def test_bounds_and_capacity_now(self):
        seen = {}
        cap = PiecewiseConstantCapacity([0.0, 1.0], [2.0, 5.0])

        class Probe(RunFirstScheduler):
            def on_release(self, job):
                seen["bounds"] = self.ctx.bounds
                seen["cnow"] = self.ctx.capacity_now()
                return super().on_release(job)

        simulate([J(0, 3.0, 1.0, 9.0)], cap, Probe())
        assert seen["bounds"] == (2.0, 5.0)
        assert seen["cnow"] == 5.0

    def test_remaining_of_unreleased_job_rejected(self):
        late = J(1, 5.0, 1.0, 9.0)

        class Probe(RunFirstScheduler):
            def on_release(self, job):
                if job.jid == 0:
                    with pytest.raises(SchedulingError):
                        self.ctx.remaining(late)
                return super().on_release(job)

        simulate([J(0, 0.0, 1.0, 5.0), late], ConstantCapacity(1.0), Probe())


class TestAlarms:
    def test_alarm_fires_for_waiting_job(self):
        fired = []

        class Alarming(RunFirstScheduler):
            def on_release(self, job):
                decision = super().on_release(job)
                if decision is not job:  # job waits: arm an alarm
                    self.ctx.set_alarm(job, self.ctx.now() + 1.0, tag="probe")
                return decision

            def on_alarm(self, job, tag):
                fired.append((job.jid, tag, self.ctx.now()))
                return self.ctx.current_job()

        simulate(
            [J(0, 0.0, 5.0, 20.0), J(1, 1.0, 1.0, 20.0)],
            ConstantCapacity(1.0),
            Alarming(),
        )
        assert fired == [(1, "probe", 2.0)]

    def test_cancelled_alarm_does_not_fire(self):
        fired = []

        class Cancelling(RunFirstScheduler):
            def on_release(self, job):
                decision = super().on_release(job)
                if decision is not job:
                    self.ctx.set_alarm(job, self.ctx.now() + 1.0)
                    self.ctx.cancel_alarm(job)
                return decision

            def on_alarm(self, job, tag):
                fired.append(job.jid)
                return self.ctx.current_job()

        simulate(
            [J(0, 0.0, 5.0, 20.0), J(1, 1.0, 1.0, 20.0)],
            ConstantCapacity(1.0),
            Cancelling(),
        )
        assert fired == []

    def test_alarm_on_running_job_dropped(self):
        fired = []

        class SelfAlarm(RunFirstScheduler):
            def on_release(self, job):
                decision = super().on_release(job)
                if decision is job:
                    self.ctx.set_alarm(job, self.ctx.now() + 0.5)
                return decision

            def on_alarm(self, job, tag):  # pragma: no cover - must not run
                fired.append(job.jid)
                return self.ctx.current_job()

        simulate([J(0, 0.0, 2.0, 9.0)], ConstantCapacity(1.0), SelfAlarm())
        assert fired == []

    def test_past_alarm_clamped_to_now(self):
        fired = []

        class PastAlarm(RunFirstScheduler):
            def on_release(self, job):
                decision = super().on_release(job)
                if decision is not job:
                    self.ctx.set_alarm(job, self.ctx.now() - 5.0)
                return decision

            def on_alarm(self, job, tag):
                fired.append((job.jid, self.ctx.now()))
                return self.ctx.current_job()

        simulate(
            [J(0, 0.0, 5.0, 20.0), J(1, 1.0, 1.0, 20.0)],
            ConstantCapacity(1.0),
            PastAlarm(),
        )
        assert fired == [(1, 1.0)]

    def test_timer_fires(self):
        fired = []

        class Timed(RunFirstScheduler):
            def reset(self):
                super().reset()
                self._armed = False

            def on_release(self, job):
                if not self._armed:
                    self.ctx.set_timer(4.0, tag="tick")
                    self._armed = True
                return super().on_release(job)

            def on_timer(self, tag):
                fired.append((tag, self.ctx.now()))
                return self.ctx.current_job()

        simulate([J(0, 0.0, 1.0, 9.0)], ConstantCapacity(1.0), Timed())
        assert fired == [("tick", 4.0)]
