"""Unit tests for the text table/series renderers."""

from repro.analysis import render_series, render_table


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(["name", "x"], [["a", 1.5], ["long-name", 20.25]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "1.5000" in text
        assert "20.2500" in text
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title(self):
        text = render_table(["a"], [["b"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_custom_float_format(self):
        text = render_table(["x"], [[3.14159]], float_fmt="{:.1f}")
        assert "3.1" in text
        assert "3.14" not in text

    def test_non_float_cells_pass_through(self):
        text = render_table(["x"], [[42], ["str"]])
        assert "42" in text and "str" in text


class TestRenderSeries:
    def test_empty(self):
        assert "(empty)" in render_series([], name="s")

    def test_short_series_complete(self):
        text = render_series([(0.0, 0.0), (1.0, 2.0)], name="s")
        assert text.count("\n") == 2

    def test_downsampling_keeps_endpoints(self):
        series = [(float(i), float(i * i)) for i in range(1000)]
        text = render_series(series, name="s", max_points=10)
        lines = text.splitlines()
        assert len(lines) <= 12
        assert "0.000" in lines[1]
        assert "999.000" in lines[-1]
