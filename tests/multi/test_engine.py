"""Unit tests for the multiprocessor engine."""

import pytest

from repro.capacity import ConstantCapacity, PiecewiseConstantCapacity
from repro.errors import SchedulingError, SimulationError
from repro.multi import GlobalEDFScheduler, MultiScheduler, simulate_multi
from repro.sim import Job


def J(jid, r, p, d, v=1.0):
    return Job(jid, r, p, d, v)


def two_procs(rate=1.0):
    return [ConstantCapacity(rate), ConstantCapacity(rate)]


class TestBasics:
    def test_parallel_execution(self):
        jobs = [J(0, 0.0, 2.0, 3.0), J(1, 0.0, 2.0, 3.0)]
        r = simulate_multi(jobs, two_procs(), GlobalEDFScheduler(), validate=True)
        assert r.n_completed == 2
        # Both completed at t=2: true parallelism, not serialization.
        assert r.combined.completion_times[0] == pytest.approx(2.0)
        assert r.combined.completion_times[1] == pytest.approx(2.0)

    def test_two_procs_beat_one_on_overload(self):
        from repro.core import EDFScheduler
        from repro.sim import simulate

        jobs = [J(i, 0.0, 2.0, 2.5, v=1.0) for i in range(4)]
        single = simulate(jobs, ConstantCapacity(1.0), EDFScheduler())
        double = simulate_multi(jobs, two_procs(), GlobalEDFScheduler(), validate=True)
        assert double.n_completed > single.n_completed

    def test_empty_processor_list_rejected(self):
        with pytest.raises(SimulationError):
            simulate_multi([J(0, 0.0, 1.0, 2.0)], [], GlobalEDFScheduler())

    def test_heterogeneous_processors(self):
        caps = [ConstantCapacity(1.0), ConstantCapacity(4.0)]
        jobs = [J(0, 0.0, 4.0, 1.5)]  # only feasible on the fast one
        r = simulate_multi(jobs, caps, GlobalEDFScheduler(), validate=True)
        assert r.completed_ids == [0]
        assert r.proc_traces[1].segments  # ran on processor 1

    def test_deadline_failure_recorded(self):
        jobs = [J(0, 0.0, 10.0, 2.0)]
        r = simulate_multi(jobs, two_procs(), GlobalEDFScheduler(), validate=True)
        assert r.failed_ids == [0]
        assert r.value == 0.0

    def test_exact_deadline_completion_tolerance(self):
        jobs = [J(0, 0.0, 2.0, 2.0), J(1, 0.0, 2.0, 2.0)]
        r = simulate_multi(jobs, two_procs(), GlobalEDFScheduler(), validate=True)
        assert r.n_completed == 2

    def test_varying_capacity_per_processor(self):
        caps = [
            PiecewiseConstantCapacity([0.0, 2.0], [1.0, 3.0]),
            PiecewiseConstantCapacity([0.0, 1.0], [2.0, 1.0]),
        ]
        jobs = [J(0, 0.0, 5.0, 4.0), J(1, 0.0, 3.0, 4.0)]
        r = simulate_multi(jobs, caps, GlobalEDFScheduler(), validate=True)
        assert r.n_completed >= 1


class TestAssignmentContract:
    def test_duplicate_assignment_rejected(self):
        class Evil(MultiScheduler):
            name = "evil"

            def on_release(self, job):
                return [job, job]

            def on_job_end(self, job, completed):
                return [None, None]

        with pytest.raises(SchedulingError):
            simulate_multi([J(0, 0.0, 1.0, 2.0)], two_procs(), Evil())

    def test_wrong_length_rejected(self):
        class Short(MultiScheduler):
            name = "short"

            def on_release(self, job):
                return [job]

            def on_job_end(self, job, completed):
                return [None]

        with pytest.raises(SchedulingError):
            simulate_multi([J(0, 0.0, 1.0, 2.0)], two_procs(), Short())

    def test_migration_is_legal_and_counted(self):
        """Force a migration: job 0 starts on proc 0; when job 1 arrives,
        the policy swaps job 0 to proc 1 and puts job 1 on proc 0."""

        class Migrator(MultiScheduler):
            name = "migrator"

            def reset(self):
                self._first = None

            def on_release(self, job):
                if self._first is None:
                    self._first = job
                    return [job, None]
                return [job, self._first]  # first job hops to proc 1

            def on_job_end(self, job, completed):
                running = list(self.ctx.running())
                return running

        jobs = [J(0, 0.0, 3.0, 5.0), J(1, 1.0, 1.0, 5.0)]
        r = simulate_multi(jobs, two_procs(), Migrator(), validate=True)
        assert r.n_completed == 2
        assert r.migrations() == 1
        # Work split across the two processors sums to the workload.
        assert r.work_by_job()[0] == pytest.approx(3.0)
        assert r.proc_traces[0].work_by_job().get(0) == pytest.approx(1.0)
        assert r.proc_traces[1].work_by_job().get(0) == pytest.approx(2.0)
