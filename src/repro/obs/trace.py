"""Structured trace events and the ring-buffered trace sink.

The trace layer records *what happened and why* during a run: scheduler
decisions with reasons (admit / evict / supplement-revive / deadline-miss),
kernel transitions (releases, completions, preemptions), fault injections
and recovery/replay phases.  Events live in a bounded ring buffer (oldest
events are dropped once the ring fills, with a drop counter) and can be
exported to JSON Lines for offline analysis with ``repro-sched obs
{report,tail,diff}``.

Determinism contract (pinned by ``tests/obs/test_trace_determinism.py``):

* every event carries a ``replay`` flag.  **Replay events** describe the
  simulated world (releases, decisions, completions, injected faults) and
  are a pure function of the instance + scheduler — two same-seed runs emit
  identical replay streams, and a crash-resumed run re-emits the replayed
  window identically.  **Lifecycle events** (``replay=False``) describe the
  *process* history — crashes survived, snapshot restores — and naturally
  differ between a crashed and an uncrashed run.
* on a snapshot restore the kernel calls :meth:`TraceSink.truncate_replay`
  to drop the current run's replay events at or past the snapshot's
  dispatch index; journal-verified replay then regenerates them
  bit-identically, so ``export_jsonl(..., replay_only=True)`` produces
  byte-identical files with or without a mid-run crash (provided the ring
  did not overflow).

Events are grouped into *runs* (one engine bootstrap each, see
:meth:`TraceSink.begin_run`) so a single sink can absorb several
simulations — e.g. the paired V-Dover/Dover runs of one Figure-1 panel —
without a restore in one run truncating another run's events.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ObservabilityError

__all__ = ["TraceEvent", "TraceSink", "TRACE_SCHEMA"]

#: Version tag written into exported JSONL headers.
TRACE_SCHEMA = 1


class TraceEvent:
    """One structured occurrence (slots: cheap to allocate in bulk).

    Attributes
    ----------
    kind:
        Dotted event type, e.g. ``"job.release"``, ``"decision"``,
        ``"fault.kill"``, ``"recovery.restore"``.
    t:
        Simulation time of the event (never wall-clock, so traces are
        reproducible).
    run:
        Run epoch within the sink (0-based; bumped by
        :meth:`TraceSink.begin_run`).
    dispatch:
        Kernel dispatch index during which the event was emitted (``-1``
        outside the event loop: bootstrap / wind-down).
    replay:
        True for simulation-deterministic events (see module docstring).
    data:
        Event-specific payload (JSON-serialisable, jid-keyed).
    """

    __slots__ = ("kind", "t", "run", "dispatch", "replay", "data")

    def __init__(
        self,
        kind: str,
        t: float,
        run: int,
        dispatch: int,
        replay: bool,
        data: Optional[Dict[str, Any]],
    ) -> None:
        self.kind = kind
        self.t = t
        self.run = run
        self.dispatch = dispatch
        self.replay = replay
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        """Stable JSON-ready representation (sorted at dump time)."""
        doc: Dict[str, Any] = {
            "kind": self.kind,
            "t": self.t,
            "run": self.run,
            "d": self.dispatch,
        }
        if not self.replay:
            doc["life"] = True
        if self.data:
            doc["data"] = self.data
        return doc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceEvent({self.kind!r}, t={self.t:g}, run={self.run}, "
            f"d={self.dispatch}, data={self.data!r})"
        )


class TraceSink:
    """Bounded, deterministic event buffer with JSONL export.

    Parameters
    ----------
    ring:
        Maximum events retained.  When full, the oldest events are dropped
        (and counted in :attr:`dropped`).  Byte-identical export across
        crash-resume is guaranteed only while the ring has not overflowed.
    """

    def __init__(self, ring: int = 65536) -> None:
        if ring < 1:
            raise ObservabilityError(f"ring size must be >= 1, got {ring!r}")
        self.ring = int(ring)
        self._events: deque[TraceEvent] = deque(maxlen=self.ring)
        #: events evicted by the ring bound since the last :meth:`clear`
        self.dropped = 0
        #: dispatch index stamped onto emitted events (kernel-maintained)
        self.current_dispatch = -1
        self._epoch = -1
        #: open batched-decision group (``None`` outside a group); see
        #: :meth:`begin_group`
        self._group: Optional[List[Dict[str, Any]]] = None
        self._group_t = 0.0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def begin_run(self) -> int:
        """Open a new run epoch (one engine bootstrap); returns it."""
        self._epoch += 1
        self.current_dispatch = -1
        self._group = None
        return self._epoch

    @property
    def run_epoch(self) -> int:
        """Current run epoch (-1 before the first :meth:`begin_run`)."""
        return self._epoch

    def emit(
        self,
        kind: str,
        t: float,
        data: Optional[Dict[str, Any]] = None,
        *,
        replay: bool = True,
    ) -> None:
        """Append one event (stamped with the current run + dispatch)."""
        group = self._group
        if group is not None:
            item: Dict[str, Any] = {"kind": kind, "t": t, "d": self.current_dispatch}
            if not replay:
                item["life"] = True
            if data:
                item["data"] = data
            group.append(item)
            return
        if len(self._events) == self.ring:
            self.dropped += 1
        self._events.append(
            TraceEvent(kind, t, self._epoch, self.current_dispatch, replay, data)
        )

    # ------------------------------------------------------------------
    # Batched decision groups (repro.sim.batchproto)
    # ------------------------------------------------------------------
    def begin_group(self, t: float) -> None:
        """Start buffering emissions into one ``kind="decisions"`` record.

        The batch kernel opens a group around each multi-event interrupt
        batch: every :meth:`emit` until :meth:`end_group` is stored as an
        *item* of a single container event, so a thousand-release burst
        costs one ring slot instead of several thousand.  The container is
        exploded back into its constituent events lazily — by
        :meth:`events`, :meth:`tail` and :meth:`export_jsonl` — so exported
        traces are byte-identical to the per-event scalar path."""
        if self._group is not None:
            raise ObservabilityError("trace decision group already open")
        self._group = []
        self._group_t = t

    def end_group(self) -> None:
        """Close the open group, appending its container record (if any
        emissions happened)."""
        items = self._group
        if items is None:
            raise ObservabilityError("no trace decision group open")
        self._group = None
        if not items:
            return
        if len(self._events) == self.ring:
            self.dropped += 1
        self._events.append(
            TraceEvent(
                "decisions",
                self._group_t,
                self._epoch,
                items[0]["d"],
                True,
                {"items": items, "n": len(items)},
            )
        )

    @staticmethod
    def _exploded(events: Iterable[TraceEvent]) -> List[TraceEvent]:
        """Expand ``kind="decisions"`` containers into their items."""
        out: List[TraceEvent] = []
        for e in events:
            data = e.data
            if e.kind == "decisions" and data is not None and "items" in data:
                run = e.run
                for item in data["items"]:
                    out.append(
                        TraceEvent(
                            item["kind"],
                            item["t"],
                            run,
                            item["d"],
                            not item.get("life", False),
                            item.get("data"),
                        )
                    )
            else:
                out.append(e)
        return out

    def truncate_replay(self, dispatch_count: int) -> int:
        """Drop the *current run's* replay events with ``dispatch >=
        dispatch_count`` (snapshot restore: journal replay will re-emit
        them identically).  Lifecycle events and other runs' events are
        kept.  Returns the number of events removed (container items count
        individually)."""
        epoch = self._epoch
        kept: List[TraceEvent] = []
        removed = 0
        for e in self._events:
            data = e.data
            if (
                e.replay
                and e.run == epoch
                and e.kind == "decisions"
                and data is not None
                and "items" in data
            ):
                # Batched container: truncate item-wise — a snapshot taken
                # mid-group must not drop the verified prefix of the batch.
                items = data["items"]
                live = [it for it in items if it["d"] < dispatch_count]
                removed += len(items) - len(live)
                if len(live) == len(items):
                    kept.append(e)
                elif live:
                    kept.append(
                        TraceEvent(
                            "decisions",
                            e.t,
                            e.run,
                            live[0]["d"],
                            True,
                            {"items": live, "n": len(live)},
                        )
                    )
            elif e.replay and e.run == epoch and e.dispatch >= dispatch_count:
                removed += 1
            else:
                kept.append(e)
        if removed:
            self._events.clear()
            self._events.extend(kept)
        return removed

    def clear(self) -> None:
        """Empty the buffer and reset counters (run epochs keep counting)."""
        self._events.clear()
        self.dropped = 0
        self.current_dispatch = -1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self, *, replay_only: bool = False) -> List[TraceEvent]:
        events = self._exploded(self._events)
        if replay_only:
            return [e for e in events if e.replay]
        return events

    def tail(self, n: int) -> List[Dict[str, Any]]:
        """The last ``n`` events as JSON-ready dicts (diagnostics: attached
        to :class:`~repro.experiments.runner.FailedReplication`)."""
        if n <= 0:
            return []
        return [e.to_dict() for e in self._exploded(self._events)[-n:]]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(
        self,
        path,
        *,
        replay_only: bool = False,
        metrics: Optional[Dict[str, Any]] = None,
        extra_header: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Write the buffer as JSON Lines; returns the event count written.

        Layout: one header object (``kind="trace.header"``), one object per
        event, and — when a metrics snapshot is supplied — one trailing
        ``kind="trace.metrics"`` object.  All objects are dumped with
        sorted keys and compact separators, so identical buffers produce
        byte-identical files.  ``replay_only=True`` restricts the export to
        the deterministic replay stream (and omits the drop/lifecycle
        variance), which is what the byte-identity suite compares.
        """
        events = self.events(replay_only=replay_only)
        header: Dict[str, Any] = {
            "kind": "trace.header",
            "schema": TRACE_SCHEMA,
            "events": len(events),
            "runs": self._epoch + 1,
            "replay_only": bool(replay_only),
        }
        if not replay_only:
            header["dropped"] = self.dropped
            header["ring"] = self.ring
        if extra_header:
            header.update(extra_header)
        with open(path, "w") as fh:
            fh.write(_dumps(header) + "\n")
            for event in events:
                fh.write(_dumps(event.to_dict()) + "\n")
            if metrics is not None:
                fh.write(_dumps({"kind": "trace.metrics", "metrics": metrics}) + "\n")
        return len(events)


def _dumps(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def load_trace(path) -> Dict[str, Any]:
    """Read a trace file written by :meth:`TraceSink.export_jsonl`.

    Returns ``{"header": dict, "events": [dict, ...], "metrics": dict |
    None}``.  Raises :class:`~repro.errors.ObservabilityError` on malformed
    input (missing/foreign header, undecodable line)."""
    path = str(path)
    header: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    metrics: Optional[Dict[str, Any]] = None
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}: undecodable trace line {lineno}"
                ) from exc
            if lineno == 1:
                if doc.get("kind") != "trace.header":
                    raise ObservabilityError(
                        f"{path}: not a repro trace file (missing header)"
                    )
                header = doc
                continue
            if doc.get("kind") == "trace.metrics":
                metrics = doc.get("metrics")
                continue
            events.append(doc)
    if header is None:
        raise ObservabilityError(f"{path}: empty trace file")
    return {"header": header, "events": events, "metrics": metrics}
