"""E2 — reproduce the paper's Figure 1 (value vs time, λ = 6, 4 panels).

Regenerates the four cumulative-value trajectories (V-Dover vs Dover(ĉ)
for ĉ ∈ {1, 10.5, 24.5, 35}) on one seeded instance per panel and asserts
the figure's visual signatures:

* V-Dover ends at or above Dover in every panel;
* panel ĉ=1: the two trajectories coincide during low-capacity stretches
  (V-Dover reduces to Dover at the conservative constant) and V-Dover
  gains during high-capacity stretches;
* panels with large ĉ: Dover bleeds value during low-capacity stretches.
"""

from __future__ import annotations

import pytest

from conftest import expected_jobs
from repro.experiments import Figure1Config, run_figure1


@pytest.fixture(scope="module")
def figure1():
    return run_figure1(
        Figure1Config(lam=6.0, expected_jobs=expected_jobs(), seed=1106)
    )


def _lead_delta_over(panel, lo, hi):
    """V-Dover's lead gained between times lo and hi."""
    leads = panel.lead_series()

    def lead_at(t):
        val = 0.0
        for when, lead in leads:
            if when <= t:
                val = lead
            else:
                break
        return val

    return lead_at(hi) - lead_at(lo)


def test_figure1_reproduction(figure1, archive, benchmark):
    archive("figure1", figure1.render())

    for panel in figure1.panels:
        assert panel.vdover_final >= panel.dover_final - 1e-9, (
            f"panel c_hat={panel.c_hat}: Dover ended above V-Dover"
        )

    # Panel ĉ = 1: V-Dover's lead must grow (weakly) across high-capacity
    # stretches — the supplement jobs ride the spike (paper Fig. 1(a)).
    panel_low = figure1.panels[0]
    assert panel_low.c_hat == 1.0
    high_gain = sum(
        _lead_delta_over(panel_low, start, end)
        for start, end, rate in panel_low.capacity_path
        if rate > 1.0
    )
    low_gain = sum(
        _lead_delta_over(panel_low, start, end)
        for start, end, rate in panel_low.capacity_path
        if rate == 1.0
    )
    assert high_gain >= low_gain - 1e-9, (
        "with c_hat=1 the V-Dover advantage should come from the "
        "high-capacity stretches"
    )

    # Panels with overestimating ĉ: Dover must fall behind during
    # low-capacity stretches (paper Fig. 1(b)-(d)).
    for panel in figure1.panels[1:]:
        low_stretch_gain = sum(
            _lead_delta_over(panel, start, end)
            for start, end, rate in panel.capacity_path
            if rate == 1.0
        )
        assert low_stretch_gain >= -1e-9, (
            f"panel c_hat={panel.c_hat}: V-Dover should not lose ground "
            "while the capacity sits at the floor"
        )

    benchmark.pedantic(
        lambda: run_figure1(
            Figure1Config(lam=6.0, expected_jobs=min(500.0, expected_jobs()), seed=1)
        ),
        rounds=1,
        iterations=1,
    )
