"""Cluster extension: online dispatch of secondary jobs across servers.

The paper notes its single-server policy "can be applied to the cloud-wise
scheduling of secondary user demands on unsold cloud instances with
extensions"; this module is that extension.  A :class:`Dispatcher` routes
each arriving job to one server (the decision is online — it may use only
information available at release time), and every server runs its own
V-Dover (or other) scheduler on its own residual capacity.

Because job streams, once dispatched, never interact across servers, the
cluster simulation decomposes exactly into per-server single-processor
simulations — no approximation is involved *given* the dispatch decisions.
The dispatchers themselves are deliberately simple online heuristics
(round-robin / least-committed-work / best-fit by conservative laxity);
smarter dispatch is future work the paper leaves open.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.capacity.base import CapacityFunction
from repro.errors import InvalidInstanceError, RecoveryError
from repro.sim.engine import simulate
from repro.sim.job import Job
from repro.sim.metrics import SimulationResult
from repro.sim.scheduler import Scheduler

__all__ = [
    "Dispatcher",
    "RoundRobinDispatcher",
    "LeastWorkDispatcher",
    "BestFitDispatcher",
    "ClusterResult",
    "run_cluster",
]


class Dispatcher(abc.ABC):
    """Online routing policy: sees jobs in release order, one at a time."""

    name = "dispatcher"

    def reset(self, n_servers: int, floors: Sequence[float]) -> None:
        """Called once per cluster run with the per-server conservative
        capacity bounds (the only capacity information that is public)."""
        self._n = n_servers
        self._floors = list(floors)

    @abc.abstractmethod
    def route(self, job: Job) -> int:
        """Return the index of the server this job is sent to."""

    # ------------------------------------------------------------------
    # Snapshot protocol (crash recovery inside the multi engine)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """Capture routing state for an engine snapshot (picklable)."""
        return {"dispatcher": type(self).__name__, **self._routing_state()}

    def set_state(self, state: dict) -> None:
        """Restore routing state captured by :meth:`get_state`; must be
        called after :meth:`reset`."""
        if state.get("dispatcher") != type(self).__name__:
            raise RecoveryError(
                f"dispatcher snapshot from {state.get('dispatcher')!r} "
                f"cannot restore into {type(self).__name__}"
            )
        self._restore_routing_state(state)

    def _routing_state(self) -> dict:
        """Subclass hook: stateless dispatchers keep the default."""
        return {}

    def _restore_routing_state(self, state: dict) -> None:
        """Subclass hook: inverse of :meth:`_routing_state`."""


class RoundRobinDispatcher(Dispatcher):
    """Cyclic assignment — the zero-information baseline."""

    name = "round-robin"

    def reset(self, n_servers: int, floors: Sequence[float]) -> None:
        super().reset(n_servers, floors)
        self._next = 0

    def route(self, job: Job) -> int:
        idx = self._next
        self._next = (self._next + 1) % self._n
        return idx

    def _routing_state(self) -> dict:
        return {"next": self._next}

    def _restore_routing_state(self, state: dict) -> None:
        self._next = int(state["next"])


class LeastWorkDispatcher(Dispatcher):
    """Send to the server with the least *outstanding conservative work*.

    The dispatcher tracks, per server, the total workload it has routed
    there and drains it at the server's floor rate ``c̲`` — a pessimistic,
    online-computable backlog proxy (real drain is at least this fast).
    """

    name = "least-work"

    def reset(self, n_servers: int, floors: Sequence[float]) -> None:
        super().reset(n_servers, floors)
        self._backlog = [0.0] * n_servers
        self._last_t = [0.0] * n_servers

    def route(self, job: Job) -> int:
        now = job.release
        for i in range(self._n):
            drained = (now - self._last_t[i]) * self._floors[i]
            self._backlog[i] = max(0.0, self._backlog[i] - drained)
            self._last_t[i] = now
        idx = min(range(self._n), key=lambda i: (self._backlog[i], i))
        self._backlog[idx] += job.workload
        return idx

    def _routing_state(self) -> dict:
        return {"backlog": list(self._backlog), "last_t": list(self._last_t)}

    def _restore_routing_state(self, state: dict) -> None:
        self._backlog = [float(x) for x in state["backlog"]]
        self._last_t = [float(x) for x in state["last_t"]]


class BestFitDispatcher(Dispatcher):
    """Send to the server whose conservative backlog leaves the job the
    most laxity (ties to the least-loaded).  Refuses nothing: if no server
    leaves positive laxity, the least-backlogged server takes it anyway
    (the local V-Dover will triage it)."""

    name = "best-fit"

    def reset(self, n_servers: int, floors: Sequence[float]) -> None:
        super().reset(n_servers, floors)
        self._backlog = [0.0] * n_servers
        self._last_t = [0.0] * n_servers

    def route(self, job: Job) -> int:
        now = job.release
        laxities = []
        for i in range(self._n):
            drained = (now - self._last_t[i]) * self._floors[i]
            self._backlog[i] = max(0.0, self._backlog[i] - drained)
            self._last_t[i] = now
            finish_estimate = now + (self._backlog[i] + job.workload) / self._floors[i]
            laxities.append(job.deadline - finish_estimate)
        idx = max(range(self._n), key=lambda i: (laxities[i], -self._backlog[i], -i))
        self._backlog[idx] += job.workload
        return idx

    def _routing_state(self) -> dict:
        return {"backlog": list(self._backlog), "last_t": list(self._last_t)}

    def _restore_routing_state(self, state: dict) -> None:
        self._backlog = [float(x) for x in state["backlog"]]
        self._last_t = [float(x) for x in state["last_t"]]


@dataclass
class ClusterResult:
    """Aggregated outcome of a cluster run."""

    per_server: list[SimulationResult]
    assignment: dict[int, int]  # jid -> server index

    @property
    def value(self) -> float:
        return sum(r.value for r in self.per_server)

    @property
    def generated_value(self) -> float:
        return sum(r.generated_value for r in self.per_server)

    @property
    def normalized_value(self) -> float:
        gen = self.generated_value
        return self.value / gen if gen > 0.0 else 0.0

    @property
    def n_completed(self) -> int:
        return sum(r.n_completed for r in self.per_server)


def run_cluster(
    jobs: Sequence[Job],
    capacities: Sequence[CapacityFunction],
    scheduler_factory: Callable[[], Scheduler],
    dispatcher: Dispatcher,
    *,
    validate: bool = False,
) -> ClusterResult:
    """Dispatch jobs online across servers and simulate each server.

    Parameters
    ----------
    jobs:
        The cluster-wide secondary job stream.
    capacities:
        One residual-capacity trajectory per server.
    scheduler_factory:
        Builds a fresh scheduler per server (scheduler instances hold
        per-run state, so they must not be shared).
    dispatcher:
        The online routing policy.
    """
    if not capacities:
        raise InvalidInstanceError("cluster needs at least one server")
    n = len(capacities)
    dispatcher.reset(n, [c.lower for c in capacities])

    buckets: list[list[Job]] = [[] for _ in range(n)]
    assignment: dict[int, int] = {}
    for job in sorted(jobs, key=lambda j: (j.release, j.jid)):
        idx = dispatcher.route(job)
        if not 0 <= idx < n:
            raise InvalidInstanceError(
                f"dispatcher routed job {job.jid} to invalid server {idx}"
            )
        buckets[idx].append(job)
        assignment[job.jid] = idx

    per_server = [
        simulate(bucket, capacities[i], scheduler_factory(), validate=validate)
        for i, bucket in enumerate(buckets)
    ]
    return ClusterResult(per_server=per_server, assignment=assignment)
