"""The negative results, demonstrated on concrete instances.

Two adversarial families:

1. **Locke's overload trap** — EDF starves a big-value job for a stream of
   near-worthless earlier-deadline shorts; the Dover family triages by
   value and keeps the prize (why value-aware overload scheduling exists);
2. **The Theorem 3(3) family** — one individually *inadmissible*
   high-value job poisons the instance: any algorithm that trusts value
   commits to it, the capacity never materialises, and the measured
   competitive ratio decays like 1/n.  Remove the poison job and the same
   stream is fully harvested.

Run:  python examples/adversarial_instances.py
"""

from repro.analysis import render_table
from repro.core import (
    EDFScheduler,
    VDoverScheduler,
    greedy_admission,
)
from repro.sim import simulate, total_value
from repro.workload import inadmissible_trap, locke_trap


def locke_demo() -> None:
    n = 12
    jobs, capacity = locke_trap(n)
    offered = total_value(jobs)
    edf = simulate(jobs, capacity, EDFScheduler(), validate=True)
    vdover = simulate(jobs, capacity, VDoverScheduler(k=300.0), validate=True)
    print(
        f"Locke trap (1 big job worth {jobs[0].value:g} + {n - 1} shorts "
        f"worth {jobs[1].value:g} each, offered {offered:.2f}):"
    )
    print(
        render_table(
            ["policy", "value", "completed big job?"],
            [
                ["EDF", edf.value, 0 in edf.completed_ids],
                ["V-Dover", vdover.value, 0 in vdover.completed_ids],
            ],
            float_fmt="{:.2f}",
        )
    )
    print(
        "EDF chases deadlines and loses the prize; V-Dover's zero-laxity "
        "value test refuses the shorts.\n"
    )


def inadmissibility_demo() -> None:
    print(
        "Theorem 3(3): one job with d - r < p/c̲ (completable only if the "
        "capacity runs high, which it never does) destroys every online "
        "guarantee:"
    )
    rows = []
    for n in (4, 8, 16, 32, 64):
        jobs, capacity = inadmissible_trap(n)
        online = simulate(jobs, capacity, VDoverScheduler(k=float(n * n)))
        offline, _ = greedy_admission(jobs, capacity)
        clean = [j for j in jobs if j.is_individually_admissible(capacity.lower)]
        healed = simulate(clean, capacity, VDoverScheduler(k=7.0))
        rows.append(
            [
                n,
                online.value,
                offline,
                online.value / offline,
                f"{healed.value:g}/{total_value(clean):g}",
            ]
        )
    print(
        render_table(
            ["n", "online", "offline", "ratio", "online w/o poison job"],
            rows,
            float_fmt="{:.3f}",
        )
    )
    print(
        "The ratio decays like 1/n — and removing the single inadmissible "
        "job restores full harvest.  Individual admissibility is exactly "
        "the price of a positive competitive ratio."
    )


if __name__ == "__main__":
    locke_demo()
    inadmissibility_demo()
