"""Multiprocessor demonstration: heterogeneous fleet + crash recovery.

The paper's analysis is single-processor; the multiprocessor engine is
the repository's extension (ROADMAP "cloud-wise scheduling").  This
module packages two end-to-end demonstrations for the CLI and CI:

1. :func:`run_multi_demo` — a small paired Monte-Carlo comparison of the
   shipped multiprocessor policies (Global-EDF, Global-Density,
   Global-V-Dover and partitioned V-Dover behind a least-work dispatcher)
   on an ``m``-server fleet with *heterogeneous* capacity bands, run
   through the same crash-isolated harness as every single-processor
   experiment (:class:`~repro.experiments.runner.MonteCarloRunner` with a
   :class:`~repro.experiments.runner.MultiInstanceFactory`).

2. :func:`multi_crash_resume_equivalence` — the multiprocessor mirror of
   :func:`~repro.experiments.recovery_sweep.crash_resume_equivalence`:
   crash each policy's engine mid-run via an
   :class:`~repro.faults.EngineCrashPlan`, resume from the last periodic
   snapshot with the write-ahead journal attached, and verify the
   recovered :class:`~repro.multi.metrics.MultiSimulationResult` is
   **bit-identical** to an uncrashed run
   (:func:`~repro.multi.metrics.multi_results_bit_identical`).

Both run on the shared scheduling kernel (:mod:`repro.kernel`), so the
snapshot/journal machinery exercised here is literally the same code the
single-processor proofs run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import summarize
from repro.cloud.cluster import LeastWorkDispatcher
from repro.core.vdover import VDoverScheduler
from repro.errors import ExperimentError
from repro.faults.execution import EngineCrashPlan
from repro.multi.engine import simulate_multi
from repro.multi.global_policies import (
    GlobalDensityScheduler,
    GlobalEDFScheduler,
)
from repro.multi.global_vdover import GlobalVDoverScheduler
from repro.multi.metrics import multi_results_bit_identical
from repro.multi.partitioned import PartitionedScheduler
from repro.sim.journal import EventJournal
from repro.experiments.runner import (
    MonteCarloRunner,
    MultiInstanceFactory,
    SchedulerSpec,
)
from repro.workload.poisson import PoissonWorkload

__all__ = [
    "multi_policy_specs",
    "multi_demo_factory",
    "run_multi_demo",
    "multi_crash_resume_equivalence",
]


@dataclass(frozen=True)
class _VDoverFactory:
    """Picklable per-processor V-Dover factory for partitioned policies."""

    k: float

    def __call__(self) -> VDoverScheduler:
        return VDoverScheduler(k=self.k)


def multi_policy_specs(k: float = 7.0) -> list[SchedulerSpec]:
    """The four shipped multiprocessor policies, as picklable specs."""
    return [
        SchedulerSpec("Global-EDF", GlobalEDFScheduler, {}),
        SchedulerSpec("Global-Density", GlobalDensityScheduler, {}),
        SchedulerSpec("Global-V-Dover", GlobalVDoverScheduler, {"k": k}),
        SchedulerSpec(
            "Part(LW/V-Dover)",
            PartitionedScheduler,
            {
                "dispatcher": LeastWorkDispatcher(),
                "scheduler_factory": _VDoverFactory(k),
            },
        ),
    ]


def multi_demo_factory(
    m: int, lam: float, k: float, expected_jobs: float
) -> MultiInstanceFactory:
    """Heterogeneous ``m``-server fleet in the paper's Figure-1 regime.

    Per-server bands interpolate from a weak machine (``[1, 20]``) to a
    strong one (``[2, 35]``); every server keeps the Figure-1 sojourn.
    """
    if m < 1:
        raise ExperimentError(f"need at least one server, got m={m}")
    horizon = expected_jobs / lam
    frac = [p / max(1, m - 1) for p in range(m)] if m > 1 else [1.0]
    return MultiInstanceFactory(
        workload=PoissonWorkload(
            lam=lam,
            horizon=horizon,
            density_range=(1.0, k),
            c_lower=1.0,
        ),
        n_procs=m,
        sojourn=horizon / 4.0,
        lows=tuple(1.0 + 1.0 * f for f in frac),
        highs=tuple(20.0 + 15.0 * f for f in frac),
    )


def run_multi_demo(
    *,
    m: int = 4,
    lam: float = 20.0,
    k: float = 7.0,
    n_runs: int = 5,
    seed: int = 2011,
    expected_jobs: float = 240.0,
    workers: int | None = 0,
) -> list[list]:
    """Paired Monte-Carlo comparison of the multiprocessor policies.

    Returns table rows ``[policy, mean value %, mean completed]`` sorted
    by value share (descending); the normalization is against the
    generated value of the whole cluster-wide stream.  The default
    ``lam=20`` is *cluster-wide* — high enough that an ``m=4`` fleet sees
    real overload and the policies separate.
    """
    factory = multi_demo_factory(m, lam, k, expected_jobs)
    specs = multi_policy_specs(k)
    runner = MonteCarloRunner(factory, specs)
    outcomes = runner.run(n_runs, seed=seed, workers=workers)
    rows = []
    for spec in specs:
        share = summarize(
            [100.0 * o.normalized(spec.name) for o in outcomes]
        )
        done = summarize([float(o.completed[spec.name]) for o in outcomes])
        rows.append([spec.name, share.mean, done.mean])
    rows.sort(key=lambda r: -r[1])
    return rows


def multi_crash_resume_equivalence(
    *,
    m: int = 3,
    lam: float = 6.0,
    k: float = 7.0,
    seed: int = 31,
    expected_jobs: float = 120.0,
    crash_at_event: int = 40,
    snapshot_every: int = 16,
) -> dict[str, dict]:
    """Crash each multiprocessor policy mid-run; prove resumed ≡ uncrashed.

    Mirrors :func:`~repro.experiments.recovery_sweep.
    crash_resume_equivalence` on the ``m``-server fleet.  Returns
    ``{policy: {"identical": bool, "recoveries": int, "value": float,
    "events_journaled": int}}``; ``identical`` must be True everywhere.
    """
    factory = multi_demo_factory(m, lam, k, expected_jobs)
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    jobs, capacities = factory.make(rng)
    report: dict[str, dict] = {}
    for spec in multi_policy_specs(k):
        reference = simulate_multi(jobs, list(capacities), spec.build())

        journal = EventJournal()  # in-memory write-ahead journal
        recovered = simulate_multi(
            jobs,
            list(capacities),
            spec.build(),
            faults=[EngineCrashPlan(at_event=crash_at_event)],
            journal=journal,
            snapshot_every=snapshot_every,
            recover=True,
        )
        report[spec.name] = {
            "identical": multi_results_bit_identical(reference, recovered),
            "recoveries": recovered.recoveries,
            "value": recovered.value,
            "events_journaled": len(journal),
        }
    return report
