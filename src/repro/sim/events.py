"""Event types and the event heap for the discrete-event engine.

Events are totally ordered by ``(time, kind priority, sequence)``.  The kind
priority encodes the tie-breaking rules the paper's semantics require at a
shared timestamp:

1. ``COMPLETION`` before ``DEADLINE`` — a job finishing exactly at its
   deadline *succeeds* (deadlines are firm but inclusive);
2. ``DEADLINE`` before ``RELEASE`` — expired jobs leave the system before
   new arrivals are considered;
3. ``RELEASE`` before ``ALARM`` — the paper's workload sets relative
   deadlines to ``p/c̲`` so every job's zero-conservative-laxity instant
   coincides with its release; the release handler must run first, then the
   zero-laxity interrupt fires for the job if it was not scheduled.

Stale events are handled by versioning: each (job, kind) carries a version
token captured at scheduling time; bumping the token invalidates in-flight
events without an O(n) heap scan (lazy deletion, as recommended for heapq).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.IntEnum):
    """Event categories; the integer value is the same-time priority."""

    COMPLETION = 0
    DEADLINE = 1
    RELEASE = 2
    ALARM = 3
    TIMER = 4
    END = 5


@dataclass(frozen=True)
class Event:
    """A scheduled occurrence.

    ``version`` is compared against the engine's current token for the
    (job, kind) pair at pop time; mismatches are silently dropped.
    ``payload`` carries the job for job events or an arbitrary tag for
    timers.
    """

    time: float
    kind: EventKind
    payload: Any = None
    version: int = 0

    def sort_key(self, seq: int) -> tuple:
        return (self.time, int(self.kind), seq)


class EventQueue:
    """A priority queue of :class:`Event` with deterministic ordering.

    Ties beyond (time, kind) break by insertion sequence, which makes every
    simulation run bit-for-bit reproducible for a fixed input.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        if event.time != event.time:  # NaN guard
            raise SimulationError(f"event with NaN time: {event!r}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (event.time, int(event.kind), seq, event))

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        return heapq.heappop(self._heap)[3]

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None
