"""Capacity combinators: build compound models from simple ones.

Real residual-capacity processes are compositions — a diurnal baseline
minus a bursty primary load, a fleet viewed as one pooled processor, a
capped allocation.  These combinators keep everything piecewise-exact:
they operate piece-by-piece over the union of the operands' breakpoints,
so all engine queries stay closed-form.

* :class:`ScaledCapacity`  — ``a * c(t)`` (unit changes, partial reservations);
* :class:`ShiftedCapacity` — ``c(t - t0)`` (phase-aligning traces);
* :class:`SummedCapacity`  — ``c1(t) + c2(t)`` (pooling servers);
* :class:`ClampedCapacity` — ``min(max(c(t), lo), hi)`` (rate caps/floors).
"""

from __future__ import annotations

import heapq
from typing import Iterator, Sequence

from repro.capacity.base import CapacityFunction, Piece
from repro.errors import CapacityError

__all__ = [
    "ScaledCapacity",
    "ShiftedCapacity",
    "SummedCapacity",
    "ClampedCapacity",
]


class ScaledCapacity(CapacityFunction):
    """``factor * inner(t)`` with ``factor > 0``."""

    def __init__(self, inner: CapacityFunction, factor: float) -> None:
        if factor <= 0.0:
            raise CapacityError(f"scale factor must be positive: {factor!r}")
        super().__init__(inner.lower * factor, inner.upper * factor)
        self._inner = inner
        self._factor = float(factor)

    def value(self, t: float) -> float:
        return self._factor * self._inner.value(t)

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        for start, end, rate in self._inner.pieces(t0, t1):
            yield (start, end, self._factor * rate)

    def integrate(self, t0: float, t1: float) -> float:
        return self._factor * self._inner.integrate(t0, t1)


class ShiftedCapacity(CapacityFunction):
    """``inner(t - shift)`` for ``t >= shift``; before the shift the rate
    is pinned at ``inner(0)`` (the trace hasn't started yet)."""

    def __init__(self, inner: CapacityFunction, shift: float) -> None:
        if shift < 0.0:
            raise CapacityError(f"shift must be non-negative: {shift!r}")
        super().__init__(inner.lower, inner.upper)
        self._inner = inner
        self._shift = float(shift)

    def value(self, t: float) -> float:
        if t < self._shift:
            return self._inner.value(0.0)
        return self._inner.value(t - self._shift)

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        if t0 < self._shift:
            head_end = min(self._shift, t1)
            yield (t0, head_end, self._inner.value(0.0))
            t0 = head_end
        if t0 >= t1:
            return
        for start, end, rate in self._inner.pieces(t0 - self._shift, t1 - self._shift):
            yield (start + self._shift, end + self._shift, rate)


class SummedCapacity(CapacityFunction):
    """Pointwise sum of several capacities (a pooled fleet seen as one
    processor — the fluid upper bound for cluster scheduling)."""

    def __init__(self, parts: Sequence[CapacityFunction]) -> None:
        if not parts:
            raise CapacityError("SummedCapacity needs at least one part")
        super().__init__(
            sum(p.lower for p in parts), sum(p.upper for p in parts)
        )
        self._parts = list(parts)

    def value(self, t: float) -> float:
        return sum(p.value(t) for p in self._parts)

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        # Sweep over the union of breakpoints via a merged edge list.
        edges: set[float] = {t0, t1}
        for part in self._parts:
            for start, end, _rate in part.pieces(t0, t1):
                edges.add(start)
                edges.add(end)
        ordered = sorted(edges)
        for start, end in zip(ordered, ordered[1:]):
            if end <= start:
                continue
            yield (start, end, self.value(start))


class ClampedCapacity(CapacityFunction):
    """``min(max(inner(t), floor), ceiling)`` — a provider-imposed rate cap
    plus a guaranteed floor.  Note integration is done piece-by-piece on
    the clamped rates (exact, since clamping preserves piecewise-constancy)."""

    def __init__(
        self, inner: CapacityFunction, floor: float, ceiling: float
    ) -> None:
        if not (0.0 < floor <= ceiling):
            raise CapacityError(
                f"need 0 < floor <= ceiling, got {floor!r}, {ceiling!r}"
            )
        lo = min(max(inner.lower, floor), ceiling)
        hi = min(max(inner.upper, floor), ceiling)
        super().__init__(lo, hi)
        self._inner = inner
        self._floor = float(floor)
        self._ceiling = float(ceiling)

    def _clamp(self, rate: float) -> float:
        return min(max(rate, self._floor), self._ceiling)

    def value(self, t: float) -> float:
        return self._clamp(self._inner.value(t))

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        for start, end, rate in self._inner.pieces(t0, t1):
            yield (start, end, self._clamp(rate))
