"""Constant-capacity model — the classical setting of Koren & Shasha.

``ConstantCapacity(c)`` is the degenerate member of ``C(c, c)``; it is the
image of every varying-capacity model under the paper's time-stretch
transformation (Section III-A) and the substrate on which the Dover baseline
was originally defined.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.capacity.base import CapacityFunction, Piece
from repro.errors import CapacityError

__all__ = ["ConstantCapacity"]


class ConstantCapacity(CapacityFunction):
    """A processor running at a fixed rate ``c`` forever."""

    def __init__(self, rate: float) -> None:
        if rate <= 0.0:
            raise CapacityError(f"constant capacity must be positive, got {rate!r}")
        super().__init__(rate, rate)
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        """The constant rate ``c``."""
        return self._rate

    def value(self, t: float) -> float:
        return self._rate

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 > t0:
            yield (t0, t1, self._rate)

    def integrate(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise CapacityError(f"reversed interval: [{t0}, {t1}]")
        return (t1 - t0) * self._rate

    def advance(self, t0: float, work: float, horizon: float = math.inf) -> float:
        if work < 0.0:
            raise CapacityError(f"negative workload: {work!r}")
        t = t0 + work / self._rate
        return t if t <= horizon else math.inf

    def next_change(self, t: float, horizon: float) -> float:
        return horizon

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstantCapacity({self._rate:g})"
