"""Experiment E17: the chaos soak — an always-on service under fire.

Every robustness mechanism in this repository gets exercised somewhere;
the soak exercises them all *at once*, through the real service stack:
N tenants of Poisson traffic are encoded as JSON wire lines and driven
through :class:`~repro.service.ingress.ServiceIngress` into a live
:class:`~repro.service.supervisor.ScheduleService` while

* **sensor faults** corrupt what each tenant's scheduler observes
  (capacity noise wrappers from :mod:`repro.faults.spec`),
* **job kills** and **revocation bursts** mutate the executed world
  (start faults from :mod:`repro.faults.execution`),
* **ingress fault injections** push extra recorded kills/evictions, and
* **forced kernel crashes** (≥ 5 across the fleet by default) drive the
  supervisor's snapshot-restore → WAL-replay → op-log restart ladder,
* plus a sprinkle of deliberately malformed lines that must bounce off
  the ingress without hurting anybody.

The soak *passes* iff, for every tenant: zero accepted-then-lost jobs,
every restart backoff within the policy cap, and the per-tenant replay
check (:func:`repro.service.replay.replay_tenant`) proves the surviving
journal re-runs **bit-identically** through the closed-horizon engine —
shed accounting included.  See docs/EXPERIMENTS.md §E17.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.faults.execution import ExecutionFaultSpec
from repro.faults.spec import FaultSpec
from repro.service.ingress import ServiceIngress
from repro.service.messages import InjectFault, Submit, encode_message
from repro.service.replay import ReplayCheck, replay_tenant
from repro.service.shard import CapacitySpec, TenantReport, TenantSpec
from repro.service.supervisor import RestartPolicy, ScheduleService
from repro.workload.poisson import PoissonWorkload

__all__ = ["SoakConfig", "SoakReport", "TenantSoakOutcome", "run_soak"]

#: Garbage lines fed alongside real traffic — all must ack ``ok: false``.
_MALFORMED_LINES = (
    "not json at all",
    '{"type": "submit"}',
    '{"type": "warp", "tenant": "t0"}',
    '{"type": "submit", "tenant": "t0", "job": {"jid": 1}}',
    '{"type": "fault", "tenant": "t0", "op": "kill", "time": "soon"}',
)


@dataclass(frozen=True)
class SoakConfig:
    """Knobs for one soak run (defaults: the full acceptance soak)."""

    tenants: int = 3  #: number of tenant shards (>= 3 for the full soak)
    lam: float = 3.0  #: per-tenant Poisson arrival rate
    horizon: float = 40.0  #: per-tenant virtual horizon
    seed: int = 2011
    forced_crashes: int = 5  #: ingress-forced kernel crashes, fleet-wide
    ingress_faults_per_tenant: int = 2  #: extra recorded kills/evictions
    kill_rate: float = 0.05  #: start-fault Poisson kill rate
    revocation_rate: float = 0.02  #: start-fault revocation-onset rate
    sensor_noise: float = 0.1  #: capacity-sensor noise severity
    queue_budget: int = 64
    snapshot_every: int = 16
    flush_every: int = 4
    policy: RestartPolicy = field(default_factory=RestartPolicy)
    journal_dir: Optional[str] = None  #: persist per-tenant journals here

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ExperimentError(f"need >= 1 tenant, got {self.tenants}")
        if self.forced_crashes < 0:
            raise ExperimentError("forced_crashes must be >= 0")


@dataclass
class TenantSoakOutcome:
    """One tenant's soak verdict: the report plus its replay check."""

    report: TenantReport
    check: ReplayCheck
    backoffs_within_cap: bool

    @property
    def ok(self) -> bool:
        return (
            self.check.ok
            and not self.report.lost_jids
            and self.backoffs_within_cap
        )


@dataclass
class SoakReport:
    """Fleet-wide soak outcome (what the CLI prints and CI gates on)."""

    config: SoakConfig
    outcomes: Dict[str, TenantSoakOutcome]
    submitted: int
    accepted: int
    shed: int
    recoveries: int
    forced_crashes: int
    rejected_lines: int
    malformed_rejected: bool

    @property
    def ok(self) -> bool:
        return self.malformed_rejected and all(
            o.ok for o in self.outcomes.values()
        )

    def failures(self) -> List[str]:
        out: List[str] = []
        if not self.malformed_rejected:
            out.append("a malformed line was not rejected by the ingress")
        for tenant, o in sorted(self.outcomes.items()):
            if o.report.lost_jids:
                out.append(
                    f"{tenant}: accepted-then-lost jobs "
                    f"{sorted(o.report.lost_jids)}"
                )
            if not o.backoffs_within_cap:
                out.append(f"{tenant}: a restart backoff exceeded the cap")
            out.extend(f"{tenant}: {f}" for f in o.check.failures)
        return out

    def summary_lines(self) -> List[str]:
        lines = [
            f"soak: {len(self.outcomes)} tenants, "
            f"{self.submitted} submitted, {self.accepted} accepted, "
            f"{self.shed} shed, {self.forced_crashes} forced crashes, "
            f"{self.recoveries} recoveries, "
            f"{self.rejected_lines} lines rejected",
        ]
        for tenant, o in sorted(self.outcomes.items()):
            lines.append(
                "  " + o.check.summary()
                + f" restarts={o.report.restarts}"
                + ("" if o.ok else " [TENANT FAIL]")
            )
        lines.append("soak verdict: " + ("PASS" if self.ok else "FAIL"))
        return lines


def _tenant_specs(config: SoakConfig) -> List[TenantSpec]:
    """Deterministic per-tenant worlds — varied schedulers and physics."""
    schedulers = ("vdover", "edf", "dover", "llf", "greedy")
    specs: List[TenantSpec] = []
    for i in range(config.tenants):
        start_faults: Tuple[ExecutionFaultSpec, ...] = tuple(
            spec
            for spec in (
                ExecutionFaultSpec(
                    "kill", config.kill_rate, {"retain": 0.25}
                )
                if config.kill_rate > 0.0
                else None,
                ExecutionFaultSpec(
                    "revocation", config.revocation_rate, {"mean_down": 1.0}
                )
                if config.revocation_rate > 0.0
                else None,
            )
            if spec is not None
        )
        sensor: Tuple[FaultSpec, ...] = (
            (FaultSpec("noise", config.sensor_noise),)
            if config.sensor_noise > 0.0
            else ()
        )
        specs.append(
            TenantSpec(
                tenant=f"t{i}",
                horizon=config.horizon,
                scheduler=schedulers[i % len(schedulers)],
                capacity=CapacitySpec(
                    "markov2",
                    {"low": 1.0, "high": 8.0, "mean_sojourn": 4.0},
                    seed=config.seed + 7 * i,
                ),
                sensor_faults=sensor,
                start_faults=start_faults,
                fault_seed=config.seed + 1000 * i,
                queue_budget=config.queue_budget,
                snapshot_every=config.snapshot_every,
                flush_every=config.flush_every,
            )
        )
    return specs


def _tenant_timeline(
    spec: TenantSpec,
    config: SoakConfig,
    crash_times: Sequence[float],
    rng: np.random.Generator,
) -> List[Tuple[float, str]]:
    """One tenant's (time, wire line) stream, time-ordered.

    Submissions arrive at their release instants; fault injections are
    interleaved at their own times.  Fault times land on the midpoints
    between neighbouring distinct releases so the stream stays
    time-coherent no matter how the kernel's frontier advances."""
    tenant = spec.tenant
    workload = PoissonWorkload(
        lam=config.lam,
        horizon=config.horizon,
        density_range=(1.0, 7.0),
        c_lower=1.0,
        deadline_slack=1.5,
    )
    jobs = workload.generate(rng)
    # jids are per-tenant namespaces: each shard checks duplicates only
    # against its own accepted set, so overlap across tenants is fine.
    entries: List[Tuple[float, str]] = [
        (job.release, encode_message(Submit(tenant, job))) for job in jobs
    ]
    for t in crash_times:
        entries.append(
            (float(t), encode_message(InjectFault(tenant, "crash", float(t))))
        )
    ops = ("kill", "evict")
    for j in range(config.ingress_faults_per_tenant):
        t = config.horizon * (j + 1) / (config.ingress_faults_per_tenant + 1)
        op = ops[j % len(ops)]
        entries.append(
            (
                float(t),
                encode_message(
                    InjectFault(
                        tenant, op, float(t), retain=0.5 if op == "kill" else 0.0
                    )
                ),
            )
        )
    entries.sort(key=lambda e: e[0])
    return entries


def _build_lines(config: SoakConfig) -> List[str]:
    """The full fleet's wire stream: per-tenant timelines merged in time
    order, with malformed lines sprinkled deterministically."""
    specs = _tenant_specs(config)
    # Spread the forced crashes round-robin over tenants, at staggered
    # fractions of the horizon.
    crash_times: Dict[str, List[float]] = {spec.tenant: [] for spec in specs}
    for c in range(config.forced_crashes):
        spec = specs[c % len(specs)]
        frac = (c + 1) / (config.forced_crashes + 1)
        crash_times[spec.tenant].append(config.horizon * frac)
    merged: List[Tuple[float, int, str]] = []
    for i, spec in enumerate(specs):
        rng = np.random.default_rng(config.seed + 31 * i)
        for order, (t, line) in enumerate(
            _tenant_timeline(spec, config, crash_times[spec.tenant], rng)
        ):
            merged.append((t, order, line))
    merged.sort(key=lambda e: (e[0], e[1]))
    lines = [line for _, _, line in merged]
    # Malformed traffic lands at deterministic positions mid-stream.
    step = max(1, len(lines) // (len(_MALFORMED_LINES) + 1))
    for j, bad in enumerate(_MALFORMED_LINES):
        lines.insert(min(len(lines), (j + 1) * step + j), bad)
    return lines


async def _soak(config: SoakConfig) -> SoakReport:
    specs = _tenant_specs(config)
    service = ScheduleService(
        specs, policy=config.policy, journal_dir=config.journal_dir
    )
    await service.start()
    ingress = ServiceIngress(service)
    lines = _build_lines(config)
    acks = await ingress.run_lines(lines)
    reports = await service.close()

    bad_acks = [
        ack
        for line, ack in zip(lines, acks)
        if line in _MALFORMED_LINES and ack.get("ok")
    ]
    outcomes: Dict[str, TenantSoakOutcome] = {}
    for tenant, report in reports.items():
        check = replay_tenant(report)
        within = all(
            b <= config.policy.backoff_cap + 1e-12 for b in report.backoffs
        )
        outcomes[tenant] = TenantSoakOutcome(
            report=report, check=check, backoffs_within_cap=within
        )
    return SoakReport(
        config=config,
        outcomes=outcomes,
        submitted=sum(r.submitted for r in reports.values()),
        accepted=sum(len(r.accepted) for r in reports.values()),
        shed=sum(len(r.shed) for r in reports.values()),
        recoveries=sum(r.recoveries for r in reports.values()),
        forced_crashes=sum(r.forced_crashes for r in reports.values()),
        rejected_lines=ingress.rejected_lines,
        malformed_rejected=not bad_acks,
    )


def run_soak(config: Optional[SoakConfig] = None) -> SoakReport:
    """Run one chaos soak to completion and verify every invariant."""
    return asyncio.run(_soak(config or SoakConfig()))
