"""Spot-market scenario: the paper's motivating cloud story, end to end.

A server sells its primary-job residue to spot bidders:

1. a primary VM population (Poisson arrivals, exponential holding) eats
   the server; the leftover is the time-varying capacity ``c(t)``;
2. a mean-reverting spot price drives an elastic stream of secondary VM
   requests — each with a compute demand, a firm latest-finish time and a
   bid (the bid *is* the value density, so the price band gives ``k``);
3. the provider's scheduler decides which requests to serve; revenue is
   accrued only for VMs finished by their deadline.

The example compares the provider's revenue under V-Dover against Dover
anchored at both capacity bounds, plus EDF.

Run:  python examples/spot_market.py [seed]
"""

import sys

import numpy as np

from repro.analysis import render_table
from repro.analysis.theory import dover_beta
from repro.cloud import (
    PrimaryOccupancyModel,
    SpotMarket,
    SpotPriceProcess,
    requests_to_jobs,
)
from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.sim import simulate


def main(seed: int = 7) -> None:
    horizon = 150.0
    primary = PrimaryOccupancyModel(
        total_capacity=16.0,  # the whole server
        floor=1.0,            # capacity contractually reserved for spot
        arrival_rate=6.0,     # heavy primary load: the floor binds often
        mean_holding=4.0,
        vm_size=1.0,
    )
    price = SpotPriceProcess(mean=1.0, floor=0.5, ceiling=3.5, volatility=0.4)
    market = SpotMarket(price, request_rate=8.0, floor_capacity=primary.floor)
    k = price.importance_ratio_bound

    root = np.random.SeedSequence(seed)
    req_rng, cap_rng = [np.random.default_rng(s) for s in root.spawn(2)]

    requests, _times, prices = market.generate_requests(horizon, req_rng)
    jobs = requests_to_jobs(requests)
    residual = primary.sample_residual(horizon * 2.0, cap_rng)

    offered = sum(j.value for j in jobs)
    admissible = sum(r.is_admissible(primary.floor) for r in requests)
    print(
        f"{len(requests)} spot requests over {horizon:g}h "
        f"({admissible} individually admissible), offered revenue {offered:.1f}"
    )
    print(
        f"spot price in [{prices.min():.2f}, {prices.max():.2f}], "
        f"importance-ratio bound k = {k:g}"
    )
    print(
        f"mean residual capacity {residual.mean(0.0, horizon):.2f} "
        f"of {primary.total_capacity:g} (floor {primary.floor:g})\n"
    )

    policies = [
        VDoverScheduler(k=k, beta=dover_beta(k)),
        VDoverScheduler(k=k),
        DoverScheduler(k=k, c_hat=primary.floor),
        DoverScheduler(k=k, c_hat=primary.total_capacity),
        EDFScheduler(),
    ]
    labels = [
        "V-Dover (beta=1+sqrt(k))",
        "V-Dover (beta=beta*)",
        "Dover (c=floor)",
        "Dover (c=total)",
        "EDF",
    ]

    rows = []
    for label, policy in zip(labels, policies):
        result = simulate(jobs, residual, policy, validate=True)
        rows.append(
            [
                label,
                result.value,
                f"{100 * result.normalized_value:.1f}%",
                result.n_completed,
                f"{result.wasted_work:.1f}",
            ]
        )
    rows.sort(key=lambda r: -r[1])
    print(
        render_table(
            ["policy", "revenue", "% of offered", "VMs served", "wasted work"],
            rows,
            title="Provider revenue by scheduling policy",
            float_fmt="{:.1f}",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
