"""Generic crash→restore→resume loop shared by both engine façades.

The resilience contract (docs/ROBUSTNESS.md §7) is the same for the
single-processor and multiprocessor engines: a :class:`SimulatedCrash`
raised mid-run carries the last *periodic* snapshot; recovery rebuilds a
fresh engine, restores that snapshot (which re-verifies the write-ahead
journal tail), and re-enters the event loop.  Previously this loop lived
inline in :func:`repro.sim.engine.simulate`; it is now a kernel-level
helper so :func:`repro.multi.engine.simulate_multi` gets bit-identical
crash-resume for free.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import RecoveryError, SimulatedCrash

__all__ = ["run_with_recovery"]


def run_with_recovery(
    build: Callable[[], "object"],
    *,
    recover: bool = False,
    max_recoveries: int = 8,
):
    """Run ``build()``'s engine to completion, restarting after crashes.

    ``build`` must return a fresh, un-started engine exposing ``run()``
    and ``restore(snapshot)``.  When ``recover`` is false a
    :class:`SimulatedCrash` propagates to the caller unchanged (the
    caller owns the snapshot).  When true, each crash rebuilds the
    engine via ``build()`` and restores the snapshot the crash carried;
    after ``max_recoveries`` unsuccessful rounds a
    :class:`~repro.errors.RecoveryError` is raised so a crash loop
    cannot spin forever.

    Returns ``(result, recoveries)`` — the completed run's result object
    and the number of crash→restore cycles it took to get there.
    """
    if max_recoveries < 0:
        raise ValueError(f"max_recoveries must be >= 0, got {max_recoveries}")

    engine = build()
    recoveries = 0
    while True:
        try:
            result = engine.run()
            return result, recoveries
        except SimulatedCrash as crash:
            if not recover:
                raise
            snapshot = crash.snapshot
            if snapshot is None:
                raise RecoveryError(
                    "engine crashed before the first snapshot; nothing to "
                    "restore from (snapshot_every too large?)"
                ) from crash
            recoveries += 1
            if recoveries > max_recoveries:
                raise RecoveryError(
                    f"engine crashed {recoveries} times; giving up after "
                    f"max_recoveries={max_recoveries}"
                ) from crash
            engine = build()
            engine.restore(snapshot)


def recoveries_or_zero(recoveries: Optional[int]) -> int:
    """Small helper for result plumbing: ``None``-safe recovery count."""
    return int(recoveries or 0)
