"""Multiprocessor demo + Monte-Carlo harness integration.

The ``multi_smoke`` marker tags the tiny end-to-end checks the CI runs as
their own step: an m=4 heterogeneous paired comparison through the
crash-isolated MC harness, and the multiprocessor crash → snapshot →
journal-replay → bit-identical proof.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.multi_demo import (
    multi_crash_resume_equivalence,
    multi_demo_factory,
    multi_policy_specs,
    run_multi_demo,
)
from repro.experiments.runner import (
    MonteCarloRunner,
    MultiInstanceFactory,
    SchedulerSpec,
    _run_one,
)
from repro.workload.poisson import PoissonWorkload


def _workload(lam: float = 6.0, horizon: float = 10.0) -> PoissonWorkload:
    return PoissonWorkload(
        lam=lam, horizon=horizon, density_range=(1.0, 7.0), c_lower=1.0
    )


class TestMultiInstanceFactory:
    def test_heterogeneous_bands(self):
        fac = MultiInstanceFactory(
            _workload(),
            n_procs=3,
            lows=(1.0, 2.0, 3.0),
            highs=(10.0, 20.0, 30.0),
        )
        jobs, caps = fac.make(np.random.default_rng(5))
        assert len(caps) == 3
        assert [c.lower for c in caps] == [1.0, 2.0, 3.0]
        assert [c.upper for c in caps] == [10.0, 20.0, 30.0]
        assert jobs

    def test_make_is_seed_deterministic(self):
        fac = MultiInstanceFactory(_workload(), n_procs=2)
        jobs_a, caps_a = fac.make(np.random.default_rng(9))
        jobs_b, caps_b = fac.make(np.random.default_rng(9))
        assert [j.jid for j in jobs_a] == [j.jid for j in jobs_b]
        assert all(
            a.value(t) == b.value(t)
            for a, b in zip(caps_a, caps_b)
            for t in (0.0, 2.5, 7.0)
        )

    def test_band_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError):
            MultiInstanceFactory(_workload(), n_procs=3, lows=(1.0,)).make(
                np.random.default_rng(1)
            )

    def test_nonpositive_proc_count_rejected(self):
        with pytest.raises(ExperimentError):
            MultiInstanceFactory(_workload(), n_procs=0).make(
                np.random.default_rng(1)
            )


class TestMultiThroughRunner:
    def test_paired_replication_runs_all_specs(self):
        fac = MultiInstanceFactory(_workload(), n_procs=2)
        specs = multi_policy_specs(k=7.0)
        outcome = _run_one((fac, specs, np.random.SeedSequence(3)))
        assert set(outcome.values) == {s.name for s in specs}
        assert outcome.recovered == 0
        assert outcome.generated_value > 0.0

    def test_runner_end_to_end_serial(self):
        fac = MultiInstanceFactory(_workload(horizon=6.0), n_procs=2)
        specs = multi_policy_specs(k=7.0)[:2]
        runner = MonteCarloRunner(fac, specs)
        outcomes = runner.run(3, seed=11, workers=0)
        assert len(outcomes) == 3
        assert all(set(o.values) == {s.name for s in specs} for o in outcomes)

    def test_crash_resume_inside_replication(self):
        """An EngineCrashPlan inside a multi replication is survived via
        snapshot resume, and the outcome matches the crash-free run."""
        from dataclasses import dataclass

        from repro.faults import EngineCrashPlan

        inner = MultiInstanceFactory(_workload(horizon=6.0), n_procs=2)

        @dataclass(frozen=True)
        class CrashingFactory:
            inner: MultiInstanceFactory

            def make_with_faults(self, rng):
                jobs, caps = self.inner.make(rng)
                return jobs, caps, (EngineCrashPlan(at_event=15),)

            def make(self, rng):
                return self.inner.make(rng)

        specs = multi_policy_specs(k=7.0)[:1]
        seed = np.random.SeedSequence(21)
        reference = _run_one((inner, specs, seed))
        crashed = MonteCarloRunner(CrashingFactory(inner), specs).run(
            1, seed=21, workers=0
        )
        # MonteCarloRunner spawns child seeds, so compare structure and
        # recovery accounting rather than raw values here.
        assert crashed[0].recovered >= 1
        assert set(crashed[0].values) == set(reference.values)


@pytest.mark.multi_smoke
def test_multi_demo_smoke():
    """CI smoke: m=4 heterogeneous fleet, paired MC comparison."""
    rows = run_multi_demo(m=4, n_runs=2, expected_jobs=80.0, workers=0)
    assert len(rows) == 4
    names = {row[0] for row in rows}
    assert names == {s.name for s in multi_policy_specs()}
    for _name, share, done in rows:
        assert 0.0 <= share <= 100.0 + 1e-9
        assert done >= 0.0


@pytest.mark.multi_smoke
def test_multi_crash_resume_equivalence_smoke():
    """CI smoke: one crash per multiprocessor policy, resumed run
    bit-identical to the uncrashed reference."""
    report = multi_crash_resume_equivalence(
        m=3, expected_jobs=60.0, crash_at_event=20, snapshot_every=8
    )
    assert set(report) == {s.name for s in multi_policy_specs()}
    for name, row in report.items():
        assert row["identical"], f"{name} diverged after crash resume"
        assert row["recoveries"] == 1
        assert row["events_journaled"] > 20


def test_demo_factory_interpolates_bands():
    fac = multi_demo_factory(4, lam=6.0, k=7.0, expected_jobs=60.0)
    assert fac.n_procs == 4
    assert fac.lows[0] == 1.0 and fac.lows[-1] == 2.0
    assert fac.highs[0] == 20.0 and fac.highs[-1] == 35.0
    with pytest.raises(ExperimentError):
        multi_demo_factory(0, lam=6.0, k=7.0, expected_jobs=60.0)
