"""Unit tests for the metrics registry: instruments, snapshots, merging."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRegistry, merge_snapshots


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("kernel.events")
        c.inc()
        c.inc(3)
        assert reg.counter("kernel.events") is c  # memoized
        assert reg.snapshot()["counters"]["kernel.events"] == 4

    def test_gauge_tracks_high_water_mark(self):
        reg = MetricsRegistry()
        g = reg.gauge("kernel.heap_size")
        g.set(3)
        g.set(7)
        g.set(2)
        snap = reg.snapshot()["gauges"]["kernel.heap_size"]
        assert snap["last"] == 2
        assert snap["hwm"] == 7

    def test_histogram_moments(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for x in (1.0, 3.0, 2.0):
            h.observe(x)
        doc = reg.snapshot()["histograms"]["lat"]
        assert doc["count"] == 3
        assert doc["sum"] == pytest.approx(6.0)
        assert doc["min"] == 1.0
        assert doc["max"] == 3.0

    def test_name_collision_across_types(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")
        with pytest.raises(ObservabilityError):
            reg.histogram("x")


class TestMerge:
    def _reg(self, n):
        reg = MetricsRegistry()
        reg.counter("events").inc(n)
        reg.gauge("heap").set(n)
        reg.histogram("wall").observe(float(n))
        return reg

    def test_merge_snapshots(self):
        snaps = [self._reg(n).snapshot() for n in (2, 5, 3)]
        merged = merge_snapshots(snaps)
        assert merged["counters"]["events"] == 10
        assert merged["gauges"]["heap"]["hwm"] == 5
        wall = merged["histograms"]["wall"]
        assert wall["count"] == 3
        assert wall["sum"] == pytest.approx(10.0)
        assert wall["min"] == 2.0 and wall["max"] == 5.0

    def test_merge_disjoint_names(self):
        a = MetricsRegistry()
        a.counter("only.a").inc()
        b = MetricsRegistry()
        b.counter("only.b").inc(2)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"] == {"only.a": 1, "only.b": 2}

    def test_merge_empty(self):
        assert merge_snapshots([]) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
