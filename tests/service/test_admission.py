"""AdmissionController unit tests: the deterministic shed policy."""

from __future__ import annotations

import pytest

from repro.service import AdmissionController, SHED_REASONS
from repro.sim.job import Job


def _job(jid, release=2.0, workload=1.0, deadline=10.0, value=1.0):
    return Job(
        jid=jid,
        release=release,
        workload=workload,
        deadline=deadline,
        value=value,
    )


def _controller(budget=4, c_lower=1.0):
    return AdmissionController("t0", queue_budget=budget, c_lower=c_lower)


class TestValidation:
    def test_rejects_silly_budget(self):
        with pytest.raises(ValueError, match="queue_budget"):
            _controller(budget=0)

    def test_rejects_nonpositive_floor(self):
        with pytest.raises(ValueError, match="c_lower"):
            _controller(c_lower=0.0)


class TestStructuralRejections:
    def test_duplicate_against_known(self):
        admit, shed = _controller().plan(
            [_job(1)], depth=0, frontier=0.0, horizon=100.0, known_jids={1}
        )
        assert not admit
        assert [(r.jid, r.reason) for r in shed] == [(1, "duplicate_jid")]

    def test_duplicate_within_batch(self):
        admit, shed = _controller().plan(
            [_job(1), _job(1, value=9.0)],
            depth=0,
            frontier=0.0,
            horizon=100.0,
            known_jids=set(),
        )
        assert [j.jid for j in admit] == [1]
        assert [r.reason for r in shed] == ["duplicate_jid"]

    def test_stale_release(self):
        admit, shed = _controller().plan(
            [_job(1, release=1.0)],
            depth=0,
            frontier=5.0,
            horizon=100.0,
            known_jids=set(),
        )
        assert not admit
        assert shed[0].reason == "stale_release"

    def test_beyond_horizon(self):
        admit, shed = _controller().plan(
            [_job(1, release=200.0, deadline=300.0)],
            depth=0,
            frontier=0.0,
            horizon=100.0,
            known_jids=set(),
        )
        assert not admit
        assert shed[0].reason == "beyond_horizon"


class TestBudgetShedding:
    def test_lowest_density_shed_first(self):
        batch = [
            _job(1, value=1.0),  # density 1.0 — shed
            _job(2, value=3.0),  # density 3.0 — keep
            _job(3, value=2.0),  # density 2.0 — keep
        ]
        admit, shed = _controller(budget=2).plan(
            batch, depth=0, frontier=0.0, horizon=100.0, known_jids=set()
        )
        assert [j.jid for j in admit] == [2, 3]  # submission order kept
        assert [(r.jid, r.reason) for r in shed] == [(1, "queue_budget")]

    def test_density_tie_breaks_toward_largest_laxity(self):
        batch = [
            _job(1, deadline=5.0),  # tight: laxity 2
            _job(2, deadline=20.0),  # slack: laxity 17 — shed first
        ]
        admit, shed = _controller(budget=1).plan(
            batch, depth=0, frontier=0.0, horizon=100.0, known_jids=set()
        )
        assert [j.jid for j in admit] == [1]
        assert shed[0].jid == 2

    def test_full_tie_breaks_toward_largest_jid(self):
        batch = [_job(1), _job(2), _job(3)]
        admit, shed = _controller(budget=2).plan(
            batch, depth=0, frontier=0.0, horizon=100.0, known_jids=set()
        )
        assert [j.jid for j in admit] == [1, 2]
        assert shed[0].jid == 3

    def test_existing_depth_consumes_budget(self):
        admit, shed = _controller(budget=4).plan(
            [_job(1), _job(2)],
            depth=3,
            frontier=0.0,
            horizon=100.0,
            known_jids=set(),
        )
        assert len(admit) == 1
        assert len(shed) == 1

    def test_overfull_backlog_sheds_everything(self):
        admit, shed = _controller(budget=2).plan(
            [_job(1), _job(2)],
            depth=5,
            frontier=0.0,
            horizon=100.0,
            known_jids=set(),
        )
        assert not admit
        assert {r.reason for r in shed} == {"queue_budget"}


class TestRecords:
    def test_shed_all_stamps_reason_and_frontier(self):
        records = _controller().shed_all([_job(9)], "circuit_open", 3.5)
        assert records[0].reason == "circuit_open"
        assert records[0].time == 3.5
        assert records[0].reason in SHED_REASONS

    def test_record_dict_has_stable_fields(self):
        record = _controller().shed_all([_job(9, value=4.0)], "queue_budget", 0.0)[0]
        d = record.to_dict()
        assert d["jid"] == 9
        assert d["density"] == 4.0
        assert set(d) == {
            "tenant",
            "jid",
            "reason",
            "time",
            "value",
            "workload",
            "density",
            "laxity",
        }
