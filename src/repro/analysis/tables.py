"""Plain-text table rendering for experiment reports.

Benchmarks print the same rows the paper's tables report; this module owns
the formatting so every harness produces consistent, diff-able output
without pulling in a tabulation dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Render rows as an aligned ASCII table.

    Floats go through ``float_fmt``; everything else through ``str``.
    """
    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_series(
    series: Sequence[tuple[float, float]],
    *,
    name: str = "series",
    max_points: int = 25,
    x_label: str = "t",
    y_label: str = "value",
) -> str:
    """Render an ``(x, y)`` series as a compact text listing, downsampled to
    at most ``max_points`` (keeping the first and last points)."""
    if not series:
        return f"{name}: (empty)"
    n = len(series)
    if n <= max_points:
        picks = list(range(n))
    else:
        step = (n - 1) / (max_points - 1)
        picks = sorted({round(i * step) for i in range(max_points)})
    lines = [f"{name} ({x_label} -> {y_label}):"]
    for i in picks:
        x, y = series[i]
        lines.append(f"  {x:12.3f}  {y:12.4f}")
    return "\n".join(lines)
