"""Admission-controlled EDF: a classical robust-overload baseline.

EDF collapses under overload because it commits to every job; the textbook
fix is an *admission test*: accept a job only if the already-admitted set
plus the newcomer remains feasible, then run plain EDF on the admitted
set.  Under time-varying capacity the online scheduler cannot evaluate true
feasibility (it would need the future trajectory), so the test here is the
conservative one available online: simulate the EDF chain forward at the
guaranteed floor ``c̲``.

This policy is *not* from the paper — it is the extended-baseline the
benchmarks use to situate V-Dover: admission-EDF is value-blind (it admits
by arrival order, not by value), so it fixes EDF's wasted-work pathology
but still forfeits value under overload, which is exactly the gap the
Dover family's value-based triage closes.

Batch protocol: a same-instant release burst first tries **one** feasibility
chain containing every newcomer (:meth:`_chain_admissible`).  Because the
chain terms are non-negative and ``np.add.accumulate`` sums strictly
left-to-right, dropping jobs from an admissible chain never increases any
remaining completion instant — so a full-chain pass implies every per-event
prefix test of the scalar path passes too, and the group folds through the
plain EDF placement logic with zero per-event chain evaluations.  Only when
the full chain fails does the group fall back to the per-event fold (some
prefix may still be admissible), which reproduces the scalar decisions
bit-for-bit.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.sim.batchproto import BatchDecisions, BatchScheduler, BatchView
from repro.sim.job import Job
from repro.sim.queues import JobQueue, edf_key
from repro.sim.scheduler import Scheduler

__all__ = ["AdmissionEDFScheduler"]


class AdmissionEDFScheduler(BatchScheduler, Scheduler):
    """EDF over an admission-controlled job set.

    The admission test at release time: with every admitted-but-unfinished
    job's *remaining* workload processed at the conservative rate ``c̲`` in
    EDF order, does everyone (including the newcomer) still make their
    deadline?  Accepted jobs are never revoked; rejected jobs are dropped
    outright (they fail at their deadlines, having consumed nothing).
    """

    name = "EDF-AC"

    def __init__(self, rate_estimate: float | None = None) -> None:
        super().__init__()
        self._rate_cfg = rate_estimate

    def reset(self) -> None:
        self._rate = (
            self._rate_cfg if self._rate_cfg is not None else self.ctx.bounds[0]
        )
        self._ready: JobQueue[Job] = JobQueue(edf_key, name="edfac-ready")
        self._rejected: set[int] = set()

    # ------------------------------------------------------------------
    def _admitted_jobs(self, current: Optional[Job]) -> list[Job]:
        jobs = list(self._ready.jobs())
        if current is not None:
            jobs.append(current)
        return jobs

    def _chain_admissible(
        self, newcomers: List[Job], current: Optional[Job]
    ) -> bool:
        """Conservative EDF-chain test at rate ``c̲``.

        Processing the admitted set plus ``newcomers`` in EDF order at the
        floor rate, every completion must precede its deadline.  (Exact for
        constant capacity at ``c̲``; conservative — never over-admits — for
        any real trajectory above the floor.)

        The chain is evaluated as one vectorized pass:
        ``np.add.accumulate`` over ``[now, w_0/c̲, w_1/c̲, …]`` yields the
        predicted completion instants.  ``accumulate`` sums strictly
        left-to-right (no pairwise regrouping), so each instant is
        bit-identical to the historical scalar ``t += remaining/rate``
        loop — the 1-ulp regression test in
        ``tests/properties/test_property_columnar.py`` pins this.
        """
        now = self.ctx.now()
        chain = sorted(self._admitted_jobs(current) + newcomers, key=edf_key)
        remaining = self.ctx.remaining
        rate = self._rate
        n = len(chain)
        terms = np.empty(n + 1, dtype=np.float64)
        terms[0] = now
        for i, job in enumerate(chain):
            terms[i + 1] = remaining(job) / rate
        completion = np.add.accumulate(terms)
        deadlines = np.fromiter(
            (job.deadline for job in chain), dtype=np.float64, count=n
        )
        return not bool((completion[1:] > deadlines + 1e-12).any())

    def _admissible_with(self, newcomer: Job, current: Optional[Job]) -> bool:
        return self._chain_admissible([newcomer], current)

    # ------------------------------------------------------------------
    def _place_admitted(
        self, cur: Optional[Job], job: Job
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        """EDF placement of an already-admitted newcomer."""
        if cur is None:
            return job, (self.name, "admit.idle", job.jid, None)
        if edf_key(job) < edf_key(cur):
            self._ready.insert(cur)
            return job, (
                self.name,
                "preempt.edf",
                job.jid,
                {"preempted": cur.jid},
            )
        self._ready.insert(job)
        return cur, (self.name, "admit.enqueue", job.jid, None)

    def _on_release_from(
        self, cur: Optional[Job], job: Job
    ) -> Tuple[Optional[Job], Optional[tuple]]:
        if not self._admissible_with(job, cur):
            self._rejected.add(job.jid)
            return cur, (self.name, "reject.admission", job.jid, None)
        return self._place_admitted(cur, job)

    def on_release(self, job: Job) -> Optional[Job]:
        cur, payload = self._on_release_from(self.ctx.current_job(), job)
        self._emit_decision(payload)
        return cur

    def on_releases(self, view: BatchView) -> BatchDecisions:
        cur = self.ctx.current_job()
        if len(view) > 1 and self._chain_admissible(list(view.jobs), cur):
            # Group fast path: one chain proved the whole burst feasible,
            # so every newcomer admits — fold the placement logic only.
            desired: List[Optional[Job]] = []
            payloads: List[Optional[tuple]] = []
            for job in view.jobs:
                cur, payload = self._place_admitted(cur, job)
                desired.append(cur)
                payloads.append(payload)
            return BatchDecisions(desired, payloads)
        return super().on_releases(view)

    def on_completions(self, view: BatchView) -> None:
        # Same-instant deadline sweep of waiting jobs: the scalar
        # on_job_end with a running current discards the rejection mark
        # and drops the job from the ready queue, silently.
        discard = self._rejected.discard
        remove = self._ready.remove
        for job in view.jobs:
            discard(job.jid)
            remove(job)

    def on_job_end(self, job: Job, completed: bool) -> Optional[Job]:
        self._rejected.discard(job.jid)
        current = self.ctx.current_job()
        if current is not None:
            self._ready.remove(job)
            return current
        self._ready.remove(job)
        obs = self.ctx.obs
        if self._ready:
            chosen = self._ready.dequeue()
            if obs is not None:
                obs.decision(self.name, "resume.edf", self.ctx.now(), chosen.jid)
            return chosen
        if obs is not None:
            obs.decision(self.name, "idle", self.ctx.now())
        return None

    def on_eviction(self, job: Job) -> Optional[Job]:
        # The job was already admitted; eviction does not re-run the
        # admission test (admission is never revoked).
        self._ready.insert(job)
        return self._ready.dequeue()

    @property
    def n_rejected(self) -> int:
        """Jobs turned away by the admission test (so far this run)."""
        return len(self._rejected)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def _policy_state(self) -> dict:
        return {
            "rate": self._rate,
            "ready": self._ready.live_jids(),
            "rejected": sorted(self._rejected),
        }

    def _restore_policy_state(self, state: dict, jobs_by_id) -> None:
        self._rate = state["rate"]
        for jid in state["ready"]:
            self._ready.insert(jobs_by_id[jid])
        self._rejected = set(state["rejected"])
