"""Fault injection (docs/ROBUSTNESS.md).

Two channels of injected failure, plus simulated process crashes:

* **sensing** faults — composable wrappers that corrupt what a scheduler
  *observes* of the capacity model (instantaneous readings and declared
  bounds) while keeping the simulated physics honest;
* **execution** faults — event-level failures that change the physics
  itself: jobs killed mid-run, revocation bursts that pin capacity to its
  floor and evict the running job;
* **process** faults — :class:`EngineCrashPlan` crashes of the simulator
  process itself, exercising the snapshot/journal recovery machinery.

Each family ships a picklable spec (:class:`FaultSpec`,
:class:`ExecutionFaultSpec`) for the Monte-Carlo harness.
"""

from repro.faults.base import CapacitySensorFault, unwrap_faults
from repro.faults.execution import (
    EXECUTION_FAULT_KINDS,
    EngineCrashPlan,
    ExecutionFault,
    ExecutionFaultSpec,
    JobKillFault,
    RecordedFaultLog,
    RevocationBurst,
    apply_fault_transforms,
)
from repro.faults.models import (
    BiasedBoundsCapacity,
    DropoutCapacity,
    NoisyCapacity,
    StaleCapacity,
)
from repro.faults.spec import FAULT_KINDS, FaultSpec

__all__ = [
    "CapacitySensorFault",
    "unwrap_faults",
    "NoisyCapacity",
    "StaleCapacity",
    "DropoutCapacity",
    "BiasedBoundsCapacity",
    "FaultSpec",
    "FAULT_KINDS",
    "ExecutionFault",
    "JobKillFault",
    "RecordedFaultLog",
    "RevocationBurst",
    "EngineCrashPlan",
    "ExecutionFaultSpec",
    "EXECUTION_FAULT_KINDS",
    "apply_fault_transforms",
]
