"""Trace determinism (the subsystem's reproducibility contract).

Two same-seed runs must export byte-identical JSONL; a crash-resumed run's
*replay* stream must be byte-identical to an uncrashed run's (snapshot
truncation + journal-verified replay regenerate the replayed window
exactly); and profiling — which records wall-clock time — must never leak
into the deterministic replay export.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.capacity import TwoStateMarkovCapacity
from repro.core import EDFScheduler, VDoverScheduler
from repro.faults.execution import EngineCrashPlan
from repro.sim import simulate
from repro.sim.journal import EventJournal
from repro.workload import PoissonWorkload


def _instance(seed: int = 31, lam: float = 6.0, horizon: float = 25.0):
    ss = np.random.SeedSequence(seed)
    job_seed, cap_seed = ss.spawn(2)
    jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(job_seed)
    capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=1.0, rng=cap_seed)
    return jobs, capacity


def _export(octx, path, **kw) -> bytes:
    octx.sink.export_jsonl(path, **kw)
    return path.read_bytes()


class TestSameSeedByteIdentity:
    @pytest.mark.parametrize(
        "make",
        [lambda: VDoverScheduler(k=7.0), lambda: EDFScheduler()],
        ids=["vdover", "edf"],
    )
    def test_two_runs_export_identically(self, tmp_path, make):
        jobs, capacity = _instance()
        blobs = []
        for i in range(2):
            with obs.session() as octx:
                simulate(jobs, capacity, make())
                blobs.append(_export(octx, tmp_path / f"run{i}.jsonl"))
        assert blobs[0] == blobs[1]
        assert len(blobs[0]) > 0

    def test_paired_runs_in_one_sink_export_identically(self, tmp_path):
        # One session absorbing several runs (the Figure-1 panel shape):
        # run epochs keep the streams separable and the whole export is
        # still deterministic.
        jobs, capacity = _instance()
        blobs = []
        for i in range(2):
            with obs.session() as octx:
                simulate(jobs, capacity, VDoverScheduler(k=7.0))
                simulate(jobs, capacity, EDFScheduler())
                blobs.append(_export(octx, tmp_path / f"pair{i}.jsonl"))
        assert blobs[0] == blobs[1]
        runs = {e.run for e in octx.sink.events()}
        assert runs == {0, 1}


class TestCrashResumeByteIdentity:
    @pytest.mark.parametrize(
        "make",
        [lambda: VDoverScheduler(k=7.0), lambda: EDFScheduler()],
        ids=["vdover", "edf"],
    )
    def test_replay_stream_identical_across_crash(self, tmp_path, make):
        jobs, capacity = _instance()

        with obs.session() as octx:
            reference = simulate(jobs, capacity, make())
            ref_blob = _export(
                octx, tmp_path / "ref.jsonl", replay_only=True
            )

        with obs.session() as octx:
            recovered = simulate(
                jobs,
                capacity,
                make(),
                faults=[EngineCrashPlan(at_event=40)],
                journal=EventJournal(),
                snapshot_every=16,
                recover=True,
            )
            rec_blob = _export(
                octx, tmp_path / "rec.jsonl", replay_only=True
            )
            # The crash actually happened and left lifecycle evidence...
            lifecycle = [e.kind for e in octx.sink.events() if not e.replay]

        assert recovered.recoveries >= 1
        assert "fault.crash" in lifecycle
        assert "recovery.restore" in lifecycle
        assert recovered.value == reference.value
        # ...yet the replay stream is byte-for-byte the uncrashed one.
        assert rec_blob == ref_blob

    def test_full_export_differs_only_by_lifecycle(self, tmp_path):
        jobs, capacity = _instance()
        with obs.session() as octx:
            simulate(
                jobs,
                capacity,
                EDFScheduler(),
                faults=[EngineCrashPlan(at_event=40)],
                journal=EventJournal(),
                snapshot_every=16,
                recover=True,
            )
            full = octx.sink.events()
            replay = octx.sink.events(replay_only=True)
        assert len(full) > len(replay)
        assert {e.kind for e in full} - {e.kind for e in replay} == {
            "fault.crash",
            "recovery.restore",
        }


class TestProfilingStaysOutOfTheTrace:
    def test_profiled_replay_export_matches_unprofiled(self, tmp_path):
        jobs, capacity = _instance()
        with obs.session(profile=False) as octx:
            simulate(jobs, capacity, VDoverScheduler(k=7.0))
            plain = _export(octx, tmp_path / "plain.jsonl", replay_only=True)
        with obs.session(profile=True) as octx:
            simulate(jobs, capacity, VDoverScheduler(k=7.0))
            profiled = _export(octx, tmp_path / "prof.jsonl", replay_only=True)
        assert plain == profiled

    def test_metrics_footer_is_opt_in(self, tmp_path):
        jobs, capacity = _instance()
        with obs.session(profile=True) as octx:
            simulate(jobs, capacity, EDFScheduler())
            path = tmp_path / "t.jsonl"
            octx.sink.export_jsonl(path)
        from repro.obs import load_trace

        assert load_trace(path)["metrics"] is None
