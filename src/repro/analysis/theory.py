"""Closed-form theory from the paper: bounds, ``f(k, δ)``, optimal β.

Everything here is pure arithmetic on the paper's stated results, used to

* configure V-Dover's value threshold (``beta = 1 + sqrt(k / f(k, δ))``,
  from the optimisation in the proof of Theorem 3(2));
* draw the guarantee lines in the benchmark reports;
* test the asymptotic-optimality claim (the achievable ratio over the upper
  bound tends to 1 as ``k → ∞``).

Notation: ``k`` is the importance-ratio bound (max/min value density over
the input set, Definition 3); ``δ = c̄/c̲ > 1`` is the capacity-variation
bound (Section II-A).
"""

from __future__ import annotations

import math

from repro.errors import AnalysisError

__all__ = [
    "f_overload",
    "optimal_beta",
    "vdover_competitive_ratio",
    "varying_capacity_upper_bound",
    "dover_competitive_ratio",
    "dover_beta",
    "asymptotic_optimality_gap",
]


def _check_k(k: float) -> None:
    if k < 1.0:
        raise AnalysisError(f"importance ratio bound must be >= 1, got {k!r}")


def _check_delta(delta: float) -> None:
    if delta <= 1.0:
        raise AnalysisError(
            f"f(k, δ) requires δ > 1 (got {delta!r}); for constant capacity "
            "(δ = 1) use the Koren–Shasha results (dover_competitive_ratio)"
        )


def f_overload(k: float, delta: float) -> float:
    """The paper's ``f(k, δ) = 2δ + 2 + log(δk) / log(δ/(δ−1))``.

    This is the net-gain amplification factor of Lemma 2 (how much value the
    clairvoyant adversary can extract per unit of V-Dover's regular value in
    one regular interval).
    """
    _check_k(k)
    _check_delta(delta)
    return 2.0 * delta + 2.0 + math.log(delta * k) / math.log(delta / (delta - 1.0))


def optimal_beta(k: float, delta: float) -> float:
    """The threshold minimising the Theorem-3(2) bound:
    ``β* = 1 + sqrt(k / f(k, δ))`` (Section III-G)."""
    return 1.0 + math.sqrt(k / f_overload(k, delta))


def vdover_competitive_ratio(k: float, delta: float) -> float:
    """Theorem 3(2): the ratio V-Dover achieves under individual
    admissibility, ``1 / ((√k + √f(k,δ))² + 1)``."""
    return 1.0 / ((math.sqrt(k) + math.sqrt(f_overload(k, delta))) ** 2 + 1.0)


def varying_capacity_upper_bound(k: float) -> float:
    """Theorem 3(1): no online algorithm beats ``1 / (1 + √k)²`` even with
    varying capacity (the constant-capacity adversary is a special case of
    ``C(c̲, c̄)``, and enlarging the input set can only hurt)."""
    _check_k(k)
    return 1.0 / (1.0 + math.sqrt(k)) ** 2


def dover_competitive_ratio(k: float) -> float:
    """Theorem 1(2): Dover's (optimal) ratio for constant capacity,
    ``1 / (1 + √k)²``."""
    return varying_capacity_upper_bound(k)


def dover_beta(k: float) -> float:
    """Koren–Shasha's value threshold ``1 + √k`` for Dover."""
    _check_k(k)
    return 1.0 + math.sqrt(k)


def asymptotic_optimality_gap(k: float, delta: float) -> float:
    """The ratio (achievable Thm 3(2)) / (upper bound Thm 3(1)) — the paper
    argues this tends to 1 as ``k → ∞`` for fixed δ, i.e. V-Dover is
    asymptotically optimal."""
    return vdover_competitive_ratio(k, delta) / varying_capacity_upper_bound(k)
