"""Monte-Carlo harness × observability: per-worker metrics merging,
checkpoint persistence and failure trace tails (satellite of the
telemetry PR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import EDFScheduler, VDoverScheduler
from repro.experiments.runner import (
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
    _RetryPolicy,
    _run_one_safe,
)
from repro.workload import PoissonWorkload


@pytest.fixture
def runner():
    factory = PaperInstanceFactory(
        workload=PoissonWorkload(lam=3.0, horizon=15.0)
    )
    return MonteCarloRunner(
        factory,
        [
            SchedulerSpec("V-Dover", VDoverScheduler, {"k": 7.0}),
            SchedulerSpec("EDF", EDFScheduler),
        ],
    )


class TestMetricsMerging:
    def test_disabled_by_default(self, runner):
        report = runner.run_report(3, seed=5, workers=1)
        assert report.ok
        assert report.merged_metrics() is None
        assert all(o.metrics is None for o in report.survivors)

    def test_ambient_session_derives_spec(self, runner):
        with obs.session():
            report = runner.run_report(3, seed=5, workers=1)
        assert report.ok
        merged = report.merged_metrics()
        assert merged is not None
        assert merged["counters"]["kernel.events"] > 0
        wall = merged["histograms"]["mc.replication_wall_s"]
        assert wall["count"] == 3
        # every survivor carries its own snapshot
        assert all(o.metrics is not None for o in report.survivors)

    def test_explicit_spec_without_ambient_session(self, runner):
        report = runner.run_report(3, seed=5, workers=1, obs_spec=obs.ObsSpec())
        assert report.merged_metrics() is not None
        assert not obs.enabled()  # worker sessions are always closed

    def test_observed_results_match_unobserved(self, runner):
        plain = runner.run_report(3, seed=5, workers=1)
        observed = runner.run_report(3, seed=5, workers=1, obs_spec=obs.ObsSpec())
        assert {i: o.values for i, o in plain.outcomes.items()} == {
            i: o.values for i, o in observed.outcomes.items()
        }


class TestCheckpointPersistence:
    def test_metrics_survive_resume(self, runner, tmp_path):
        ck = tmp_path / "ck.jsonl"
        with obs.session():
            first = runner.run_report(3, seed=9, workers=1, checkpoint=ck)
        assert first.ok and first.merged_metrics() is not None
        # Resume: everything loads from the checkpoint — no re-execution,
        # yet the merged metrics are still available.
        resumed = runner.run_report(3, seed=9, workers=1, checkpoint=ck)
        assert resumed.resumed == 3
        assert resumed.merged_metrics() is not None
        assert (
            resumed.merged_metrics()["counters"]["kernel.events"]
            == first.merged_metrics()["counters"]["kernel.events"]
        )


class TestFailureTraceTail:
    class _Exploding(EDFScheduler):
        name = "exploding"

        def on_job_end(self, job, completed):
            raise RuntimeError("detonated mid-run")

    def _failing_runner(self):
        factory = PaperInstanceFactory(
            workload=PoissonWorkload(lam=3.0, horizon=15.0)
        )
        return MonteCarloRunner(
            factory, [SchedulerSpec("boom", self._Exploding)]
        )

    def test_tail_attached_when_observed(self, tmp_path):
        runner = self._failing_runner()
        with obs.session():
            report = runner.run_report(1, seed=0, workers=1)
        failure = report.failure_records()[0]
        assert failure.trace_tail, "expected trailing trace events"
        kinds = [e["kind"] for e in failure.trace_tail]
        assert "run.start" in kinds or "decision" in kinds

    def test_tail_persisted_in_checkpoint(self, tmp_path):
        runner = self._failing_runner()
        ck = tmp_path / "ck.jsonl"
        with obs.session():
            runner.run_report(1, seed=0, workers=1, checkpoint=ck)
        resumed_runner = self._failing_runner()
        # Failures are retried on resume; run *without* obs this time and
        # check the freshly recorded failure replaced the old tail.
        report = resumed_runner.run_report(1, seed=0, workers=1, checkpoint=ck)
        assert not report.ok

    def test_empty_tail_when_unobserved(self):
        runner = self._failing_runner()
        report = runner.run_report(1, seed=0, workers=1)
        assert report.failure_records()[0].trace_tail == ()


class TestWorkerPayloadCompat:
    def test_legacy_five_tuple(self, runner):
        seed = np.random.SeedSequence(3).spawn(1)[0]
        index, outcome = _run_one_safe(
            (0, runner.factory, runner.specs, seed, _RetryPolicy())
        )
        assert index == 0
        assert outcome.metrics is None
