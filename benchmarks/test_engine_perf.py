"""Kernel microbenchmarks: simulation throughput and queue operations.

Not a paper artifact — these watch the substrate's performance so
experiment-scale regressions are caught where they start (the guides'
"profile before optimizing" loop needs a baseline)."""

from __future__ import annotations

import pytest

from repro.capacity import TwoStateMarkovCapacity
from repro.core import EDFScheduler, VDoverScheduler
from repro.sim import Job, JobQueue, edf_key, simulate
from repro.workload import PoissonWorkload


@pytest.fixture(scope="module")
def paper_instance():
    lam, horizon = 6.0, 2000.0 / 6.0
    jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(7)
    return jobs, horizon


def test_perf_edf_full_scale(paper_instance, benchmark):
    """EDF over a full paper-scale instance (~2000 jobs)."""
    jobs, horizon = paper_instance

    def run():
        capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=horizon / 4, rng=3)
        return simulate(jobs, capacity, EDFScheduler()).value

    benchmark(run)


def test_perf_vdover_full_scale(paper_instance, benchmark):
    """V-Dover over a full paper-scale instance (~2000 jobs)."""
    jobs, horizon = paper_instance

    def run():
        capacity = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=horizon / 4, rng=3)
        return simulate(jobs, capacity, VDoverScheduler(k=7.0)).value

    benchmark(run)


def test_perf_queue_churn(benchmark):
    """Insert/dequeue/remove churn on the scheduler queue (10k ops)."""
    jobs = [Job(i, 0.0, 1.0, float(i % 97 + 1), 1.0) for i in range(1000)]

    def churn():
        q = JobQueue(edf_key)
        for job in jobs:
            q.insert(job)
        for job in jobs[::2]:
            q.remove(job)
        drained = 0
        while q:
            q.dequeue()
            drained += 1
        return drained

    assert benchmark(churn) == 500
