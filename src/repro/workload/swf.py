"""Standard Workload Format (SWF) import.

The Parallel Workloads Archive's SWF is the lingua franca for HPC/cloud
job logs: one job per line, twenty whitespace-separated fields, ``;``
header comments.  This importer turns SWF records into secondary-job
instances so real traces can drive the schedulers (no traces ship with
this offline build, but the format is everywhere).

Field usage (1-based SWF columns):

* col 1  — job id (kept for provenance, re-keyed sequentially);
* col 2  — submit time → release;
* col 4  — run time (seconds);
* col 5  — allocated processors;
  workload := run_time × processors × ``work_scale`` (node-seconds are
  the natural capacity-units × time measure);
* cols with value ``-1`` mean "unknown" per the SWF spec; jobs missing
  run time or processors are skipped (counted in the report).

SWF has no deadlines or values — they are *secondary-market* attributes
this importer synthesises, explicitly and reproducibly: relative deadline
``slack × workload / c_lower`` (slack drawn from ``slack_range``) and
value ``density × workload`` (density from ``density_range``), mirroring
the paper's synthetic rules so imported traces are comparable with the
Poisson experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidInstanceError
from repro.sim.job import Job
from repro.workload.base import as_generator

__all__ = ["SWFImportReport", "parse_swf", "swf_to_jobs"]


@dataclass(frozen=True)
class SWFRecord:
    """One parsed SWF line (the fields this library uses)."""

    job_id: int
    submit: float
    run_time: float
    processors: int


@dataclass(frozen=True)
class SWFImportReport:
    """What the importer did: kept vs skipped records."""

    n_lines: int
    n_parsed: int
    n_skipped: int
    jobs: tuple[Job, ...]


def parse_swf(text: str | Iterable[str]) -> list[SWFRecord]:
    """Parse SWF text (or an iterable of lines) into records.

    Comment lines (``;``) and blank lines are ignored; malformed lines
    raise (a truncated log is a real problem, not something to paper
    over); records with unknown (-1) run time or processors are *kept*
    here and filtered by :func:`swf_to_jobs`, which reports them.
    """
    if isinstance(text, str):
        lines = text.splitlines()
    else:
        lines = list(text)
    records: list[SWFRecord] = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue
        fields = line.split()
        if len(fields) < 5:
            raise InvalidInstanceError(
                f"SWF line {lineno}: expected >= 5 fields, got {len(fields)}"
            )
        try:
            records.append(
                SWFRecord(
                    job_id=int(fields[0]),
                    submit=float(fields[1]),
                    run_time=float(fields[3]),
                    processors=int(fields[4]),
                )
            )
        except ValueError as exc:
            raise InvalidInstanceError(f"SWF line {lineno}: {exc}") from exc
    return records


def swf_to_jobs(
    source: str | Path | Iterable[str],
    *,
    c_lower: float = 1.0,
    work_scale: float = 1.0,
    slack_range: tuple[float, float] = (1.0, 2.0),
    density_range: tuple[float, float] = (1.0, 7.0),
    time_scale: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> SWFImportReport:
    """Convert an SWF log to a secondary-job instance.

    Parameters
    ----------
    source:
        Path to an ``.swf`` file, raw SWF text, or an iterable of lines.
    c_lower:
        Conservative capacity bound used to size deadlines.
    work_scale:
        Multiplier from node-seconds to this system's capacity units.
    slack_range, density_range:
        Ranges for the synthesised deadline slack and value density
        (uniform draws; slack >= 1 keeps jobs individually admissible).
    time_scale:
        Multiplier applied to submit times (e.g. 1/3600 for hours).
    rng:
        Seed/generator for the synthesised attributes.
    """
    lo, hi = slack_range
    if not 1.0 <= lo <= hi:
        raise InvalidInstanceError(
            f"slack_range must satisfy 1 <= lo <= hi, got {slack_range!r}"
        )
    dlo, dhi = density_range
    if not 0.0 < dlo <= dhi:
        raise InvalidInstanceError(f"bad density range {density_range!r}")
    if c_lower <= 0.0 or work_scale <= 0.0 or time_scale <= 0.0:
        raise InvalidInstanceError("scales and c_lower must be positive")

    if isinstance(source, Path) or (
        isinstance(source, str) and "\n" not in source and source.endswith(".swf")
    ):
        text = Path(source).read_text()
    else:
        text = source  # raw text or iterable of lines
    records = parse_swf(text)

    gen = as_generator(rng)
    jobs: list[Job] = []
    skipped = 0
    # Normalise submit times so the instance starts at t = 0.
    valid = [r for r in records if r.run_time > 0 and r.processors > 0]
    t0 = min((r.submit for r in valid), default=0.0)
    for record in sorted(records, key=lambda r: (r.submit, r.job_id)):
        if record.run_time <= 0 or record.processors <= 0:
            skipped += 1  # unknown (-1) or degenerate per SWF spec
            continue
        release = (record.submit - t0) * time_scale
        workload = record.run_time * record.processors * work_scale
        slack = float(gen.uniform(lo, hi))
        density = float(gen.uniform(dlo, dhi))
        jobs.append(
            Job(
                jid=len(jobs),
                release=release,
                workload=workload,
                deadline=release + slack * workload / c_lower,
                value=density * workload,
            )
        )
    return SWFImportReport(
        n_lines=len(records),
        n_parsed=len(jobs),
        n_skipped=skipped,
        jobs=tuple(jobs),
    )
