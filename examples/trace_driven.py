"""Trace-driven scheduling: SWF logs in, schedules and Gantt charts out.

Real clusters publish job logs in the Standard Workload Format (Parallel
Workloads Archive).  This example synthesises a small SWF fragment (no
network access here — with connectivity you would download e.g. the
LANL CM-5 log), imports it as a secondary-job instance, runs the scheduler
zoo on a primary-residual capacity, draws the V-Dover schedule, and saves
the instance for replay with ``repro-sched simulate``.

Run:  python examples/trace_driven.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis import render_table
from repro.capacity import PiecewiseConstantCapacity
from repro.cloud import PrimaryOccupancyModel
from repro.core import DoverScheduler, EDFScheduler, VDoverScheduler
from repro.sim import render_gantt, simulate
from repro.workload import save_instance, swf_to_jobs

# A hand-written SWF fragment (fields: id submit wait run procs ...).
SWF_FRAGMENT = """\
; Synthetic SWF fragment (format: Parallel Workloads Archive v2.2)
; UnixStartTime: 0
 1    0  0  240  2  0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
 2   60  0  120  4  0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
 3  180  0  600  1  0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
 4  300  0   -1  2  0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
 5  420  0  300  2  0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
 6  540  0   90  8  0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
 7  700  0  180  2  0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
 8  800  0  240  3  0 0 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
"""


def main() -> None:
    # Import: node-seconds -> capacity units (scaled down to this demo's
    # toy server), deadlines/values synthesised reproducibly.
    report = swf_to_jobs(
        SWF_FRAGMENT,
        c_lower=1.0,
        work_scale=1 / 120.0,     # 120 node-seconds = 1 capacity-unit-hour
        time_scale=1 / 60.0,      # minutes
        slack_range=(1.2, 2.5),
        density_range=(1.0, 7.0),
        rng=7,
    )
    jobs = list(report.jobs)
    print(
        f"imported {report.n_parsed} jobs from {report.n_lines} SWF records "
        f"({report.n_skipped} skipped: unknown runtime/procs)"
    )

    # Residual capacity from a primary-occupancy model.
    primary = PrimaryOccupancyModel(
        total_capacity=6.0, floor=1.0, arrival_rate=1.0, mean_holding=3.0
    )
    horizon = max(j.deadline for j in jobs) + 1.0
    capacity = primary.sample_residual(horizon, rng=np.random.default_rng(11))

    rows = []
    for scheduler in (VDoverScheduler(k=7.0), DoverScheduler(k=7.0, c_hat=1.0), EDFScheduler()):
        result = simulate(jobs, capacity, scheduler, validate=True)
        rows.append(
            [scheduler.name, result.value, result.n_completed, f"{result.wasted_work:.2f}"]
        )
    print()
    print(
        render_table(
            ["scheduler", "value", "completed", "wasted work"],
            rows,
            title="Trace-driven comparison",
            float_fmt="{:.2f}",
        )
    )

    result = simulate(jobs, capacity, VDoverScheduler(k=7.0), validate=True)
    print("\nV-Dover schedule:")
    print(render_gantt(result.trace, jobs, capacity=capacity, width=68))

    # Persist for the CLI: repro-sched simulate <file> --gantt
    out = Path(tempfile.gettempdir()) / "swf_instance.json"
    # save_instance wants a concrete piecewise capacity: that is what the
    # residual already is.
    assert isinstance(capacity, PiecewiseConstantCapacity)
    save_instance(out, jobs, capacity)
    print(f"\ninstance saved to {out} — replay with:")
    print(f"  repro-sched simulate {out} --scheduler vdover --gantt")


if __name__ == "__main__":
    main()
