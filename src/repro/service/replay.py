"""Replay-equivalence verification for service-mode tenants.

The service's core promise: running a tenant *live* — incremental
admissions, ingress-injected faults, crashes, recoveries and shed
decisions — produces exactly what a closed-horizon batch run over the
surviving inputs would have produced.  Concretely, for a closed
:class:`~repro.service.shard.TenantReport` we rebuild the world from the
spec (same seeds → same capacity trajectory, same sensor wrappers, same
start faults), append a
:class:`~repro.faults.execution.RecordedFaultLog` carrying the exact
ingress fault payloads, and re-run the accepted jobs (in admission
order) through :func:`repro.sim.engine.simulate` with a fresh journal.
The check passes iff:

* :func:`~repro.sim.journal.results_bit_identical` on the two
  :class:`~repro.sim.metrics.SimulationResult`\\ s (float ``==``, no
  tolerance);
* the replay journal's records equal the service journal's records
  (same dispatch sequence, event by event);
* shed accounting balances: ``submitted == accepted + shed``, no shed
  jid appears in the outcomes, and no accepted job is lost.

The :class:`RecordedFaultLog` must be armed **last**: live ingress
pushes happen after the start faults armed their own events, so putting
the log last reproduces the FAULT-event seq order exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ServiceError
from repro.faults.execution import RecordedFaultLog, apply_fault_transforms
from repro.service.shard import TenantReport
from repro.sim.engine import simulate
from repro.sim.journal import EventJournal, results_bit_identical
from repro.sim.metrics import SimulationResult

__all__ = ["ReplayCheck", "replay_tenant"]


@dataclass(frozen=True)
class ReplayCheck:
    """Outcome of one tenant's replay-equivalence verification."""

    tenant: str
    ok: bool
    results_identical: bool
    journals_identical: bool
    accounting_ok: bool
    live_records: int
    replay_records: int
    accepted: int
    shed: int
    submitted: int
    lost_jids: Tuple[int, ...]
    replay_result: Optional[SimulationResult]
    failures: Tuple[str, ...]

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] tenant={self.tenant} accepted={self.accepted} "
            f"shed={self.shed} records={self.live_records} "
            + ("" if self.ok else "; ".join(self.failures))
        )


def replay_tenant(report: TenantReport) -> ReplayCheck:
    """Re-run one closed tenant's surviving inputs and compare."""
    if report.result is None:
        raise ServiceError(
            f"tenant {report.tenant!r} has no result; replay needs a "
            "closed (or breaker-finalised) tenant"
        )

    failures: List[str] = []
    spec = report.spec

    # Rebuild the world exactly as the shard did at construction.
    capacity = spec.build_capacity()
    faults = spec.build_start_faults()
    if report.injected:
        # Last, so replayed FAULT pushes land after the start faults'
        # arm-time pushes — matching the live seq order.
        faults.append(RecordedFaultLog(report.injected))
    caps = apply_fault_transforms([capacity], faults, spec.horizon)

    replay_journal = EventJournal()
    replay_result = simulate(
        list(report.accepted),
        spec.wrap_sensors(caps[0]),
        spec.build_scheduler(),
        horizon=spec.horizon,
        faults=faults,
        journal=replay_journal,
        snapshot_every=spec.snapshot_every,
        event_queue="heap",
    )

    results_identical = results_bit_identical(report.result, replay_result)
    if not results_identical:
        failures.append("results differ bit-wise")

    journals_identical = True
    live_records = -1
    if report.journal is not None:
        live = report.journal.records
        replayed = replay_journal.records
        live_records = len(live)
        journals_identical = live == replayed
        if not journals_identical:
            if len(live) != len(replayed):
                failures.append(
                    f"journal length differs: live={len(live)} "
                    f"replay={len(replayed)}"
                )
            else:
                first_bad = next(
                    i for i, (a, b) in enumerate(zip(live, replayed))
                    if a != b
                )
                failures.append(
                    f"journals diverge at record {first_bad}"
                )

    # Shed accounting: every submission is accounted for exactly once,
    # no shed job snuck into the outcomes, no accepted job vanished.
    accounting_ok = True
    if report.submitted != len(report.accepted) + len(report.shed):
        accounting_ok = False
        failures.append(
            f"accounting: submitted={report.submitted} != "
            f"accepted={len(report.accepted)} + shed={len(report.shed)}"
        )
    outcomes = report.result.trace.outcomes
    shed_in_outcomes = sorted(
        {r.jid for r in report.shed} & set(outcomes)
        - {job.jid for job in report.accepted}
    )
    if shed_in_outcomes:
        accounting_ok = False
        failures.append(f"shed jobs appear in outcomes: {shed_in_outcomes}")
    lost = report.lost_jids
    if lost:
        accounting_ok = False
        failures.append(f"accepted-then-lost jobs: {sorted(lost)}")

    return ReplayCheck(
        tenant=report.tenant,
        ok=not failures,
        results_identical=results_identical,
        journals_identical=journals_identical,
        accounting_ok=accounting_ok,
        live_records=live_records,
        replay_records=len(replay_journal.records),
        accepted=len(report.accepted),
        shed=len(report.shed),
        submitted=report.submitted,
        lost_jids=tuple(lost),
        replay_result=replay_result,
        failures=tuple(failures),
    )
