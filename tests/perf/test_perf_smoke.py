"""Tier-1 performance smoke (``perf_smoke`` marker).

A short indexed-vs-naive comparison that rides in the normal tier-1 flow
(well under 30 s): the O(log n) prefix-sum index must agree with the
naive linear piece-scan on a long realized Markov path and on the
periodic sinusoidal segment cache, must actually beat the scan on deep
queries, and an 8-replication Monte-Carlo pass (``REPRO_MC_RUNS=8``)
must stay value-conserving end to end on the indexed hot path.

Deselect with ``-m "not perf_smoke"`` when iterating on unrelated code.
"""

from __future__ import annotations

import time

import pytest

from repro.capacity import (
    SinusoidalCapacity,
    TwoStateMarkovCapacity,
    crosscheck_index,
    naive_advance,
    naive_integrate,
)
from repro.core import EDFScheduler, VDoverScheduler
from repro.experiments import (
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
    default_mc_runs,
)
from repro.workload import PoissonWorkload

pytestmark = pytest.mark.perf_smoke


@pytest.fixture(scope="module")
def long_markov_path():
    """A ~4k-segment realized path (materialized once for the module)."""
    cap = TwoStateMarkovCapacity(1.0, 35.0, mean_sojourn=0.5, rng=42)
    cap.integrate(0.0, 2000.0)  # force materialization
    assert len(cap.breakpoints_materialized) >= 2000
    return cap


class TestIndexedVsNaiveAgreement:
    def test_markov_long_path(self, long_markov_path):
        cap = long_markov_path
        cap.check_index_invariants()
        assert crosscheck_index(cap, 0.0, 1800.0, n_queries=48) == 48

    def test_sinusoidal_segment_cache(self):
        cap = SinusoidalCapacity(1.0, 5.0, period=7.3, phase=0.4)
        assert crosscheck_index(cap, 0.0, 150.0, n_queries=48) == 48


class TestIndexedBeatsNaive:
    def test_deep_advance_is_faster(self, long_markov_path):
        """Deep queries across the whole path: the bisect must clearly beat
        the linear rescan (conservative 3x bar; measured ~100-400x)."""
        cap = long_markov_path
        total = cap.integrate(0.0, 1800.0)
        works = [total * f for f in (0.3, 0.6, 0.9)] * 10

        t0 = time.perf_counter()
        fast = [cap.advance(0.0, w, horizon=2000.0) for w in works]
        t_fast = time.perf_counter() - t0

        t0 = time.perf_counter()
        slow = [naive_advance(cap, 0.0, w, horizon=2000.0) for w in works]
        t_slow = time.perf_counter() - t0

        # Same landing piece, same prefix sums; the naive reference's
        # *sequential* subtraction can differ from the index's one-shot
        # `target − W[i]` by rounding order (≤ ~1 ulp).
        for f, s in zip(fast, slow):
            assert f == pytest.approx(s, rel=1e-12)
        assert t_slow > 3.0 * t_fast, (
            f"indexed advance not faster: {t_fast:.4f}s vs naive {t_slow:.4f}s"
        )

    def test_deep_integrate_is_faster(self, long_markov_path):
        cap = long_markov_path
        spans = [(float(a), 1800.0 - float(a)) for a in range(0, 300, 10)]

        t0 = time.perf_counter()
        fast = [cap.integrate(a, b) for a, b in spans]
        t_fast = time.perf_counter() - t0

        t0 = time.perf_counter()
        slow = [naive_integrate(cap, a, b) for a, b in spans]
        t_slow = time.perf_counter() - t0

        for f, s in zip(fast, slow):
            assert f == pytest.approx(s, rel=1e-9)
        assert t_slow > 3.0 * t_fast, (
            f"indexed integrate not faster: {t_fast:.4f}s vs naive {t_slow:.4f}s"
        )


class TestMonteCarloSmoke:
    def test_eight_replications_value_conserving(self, monkeypatch):
        """REPRO_MC_RUNS=8 end-to-end pass on the indexed hot path."""
        monkeypatch.setenv("REPRO_MC_RUNS", "8")
        runs = default_mc_runs(3)
        assert runs == 8
        factory = PaperInstanceFactory(
            workload=PoissonWorkload(lam=6.0, horizon=20.0),
            sojourn=5.0,
        )
        specs = [
            SchedulerSpec("EDF", EDFScheduler),
            SchedulerSpec("V-Dover", VDoverScheduler, {"k": 7.0}),
        ]
        outcomes = MonteCarloRunner(factory, specs).run(runs, seed=1, workers=1)
        assert len(outcomes) == 8
        for out in outcomes:
            for name in ("EDF", "V-Dover"):
                # No scheduler can accrue more than the generated value.
                assert 0.0 <= out.values[name] <= out.generated_value + 1e-9
                assert 0 <= out.completed[name] <= out.n_jobs
        # Across a small ensemble someone must complete something.
        assert sum(o.completed["EDF"] for o in outcomes) > 0


class TestKernelBenchArtifact:
    """Machine-readable kernel benchmark: ``BENCH_kernel.json``.

    Runs the Figure-1 instance through EDF and V-Dover on the columnar
    kernel, checks the values are bit-identical to the seed pins, and
    writes wall-ms / events-per-second numbers where CI can upload them
    (``test-results/``) and where the repo archives them
    (``benchmarks/results/``).
    """

    # Seed pins (Figure-1 instance, PoissonWorkload(lam=6, horizon=2000/6)
    # seed 7 x TwoStateMarkovCapacity(1, 35, sojourn=horizon/4, rng=3)).
    EDF_VALUE = 5007.37367023652
    VDOVER_VALUE = 5391.145120371147

    def test_emit_bench_kernel_json(self):
        import json
        from pathlib import Path

        from repro.capacity import TwoStateMarkovCapacity
        from repro.sim import SimulationEngine

        lam, horizon = 6.0, 2000.0 / 6.0
        jobs = PoissonWorkload(lam=lam, horizon=horizon).generate(7)

        def measure(make_sched, repeat=3):
            best_ms = float("inf")
            value = dispatches = None
            for _ in range(repeat):
                cap = TwoStateMarkovCapacity(
                    1.0, 35.0, mean_sojourn=horizon / 4, rng=3
                )
                engine = SimulationEngine(jobs, cap, make_sched())
                t0 = time.perf_counter()
                result = engine.run()
                elapsed = (time.perf_counter() - t0) * 1e3
                best_ms = min(best_ms, elapsed)
                value = result.value
                dispatches = engine.dispatch_count
            return {
                "wall_ms_min": round(best_ms, 3),
                "value": value,
                "dispatches": dispatches,
                "events_per_sec": round(dispatches / (best_ms / 1e3)),
            }

        edf = measure(EDFScheduler)
        vdover = measure(lambda: VDoverScheduler(k=7.0))

        # Acceptance: Figure-1 values bit-identical to the seed.
        assert edf["value"] == self.EDF_VALUE
        assert vdover["value"] == self.VDOVER_VALUE

        payload = {
            "schema": 1,
            "bench": "kernel_figure1",
            "instance": {
                "workload": f"PoissonWorkload(lam={lam}, horizon={horizon!r}) seed 7",
                "capacity": "TwoStateMarkovCapacity(1, 35, sojourn=horizon/4, rng=3)",
                "jobs": len(jobs),
            },
            "edf": {**edf, "bit_identical": edf["value"] == self.EDF_VALUE},
            "vdover": {
                **vdover,
                "bit_identical": vdover["value"] == self.VDOVER_VALUE,
            },
            "notes": (
                "wall_ms_min is best-of-3 on the runner; dispatches counts "
                "journaled (non-stale) events, so events_per_sec is a "
                "conservative throughput figure.  Methodology and the "
                "before/after comparison: docs/PERFORMANCE.md."
            ),
        }
        blob = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        repo = Path(__file__).resolve().parents[2]
        for out in (
            repo / "test-results" / "BENCH_kernel.json",
            repo / "benchmarks" / "results" / "BENCH_kernel.json",
        ):
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(blob)
