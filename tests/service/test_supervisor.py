"""Supervision tests: restart ladder, backoff, circuit breaker,
livelock handling and multi-tenant isolation."""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import MessageError, SimulatedCrash
from repro.service import (
    Advance,
    CapacitySpec,
    Close,
    InjectFault,
    RestartPolicy,
    ScheduleService,
    Submit,
    TenantSpec,
    replay_tenant,
)
from repro.sim.job import Job


def _spec(tenant="t0", **kw):
    base = dict(
        tenant=tenant,
        horizon=30.0,
        scheduler="vdover",
        capacity=CapacitySpec("constant", {"rate": 1.0}),
        queue_budget=64,
        snapshot_every=4,
        flush_every=2,
    )
    base.update(kw)
    return TenantSpec(**base)


def _submit(tenant, jid, release, value=1.0):
    return Submit(
        tenant,
        Job(
            jid=jid,
            release=release,
            workload=1.0,
            deadline=release + 5.0,
            value=value,
        ),
    )


def _run(coro):
    return asyncio.run(coro)


class TestRestartPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RestartPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.5
        )
        assert [policy.delay(i) for i in (1, 2, 3, 4, 5)] == [
            0.1,
            0.2,
            0.4,
            0.5,
            0.5,
        ]


class TestServiceBasics:
    def test_needs_specs_and_unique_tenants(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="at least one"):
            ScheduleService([])
        with pytest.raises(ServiceError, match="duplicate"):
            ScheduleService([_spec("a"), _spec("a")])

    def test_unknown_tenant_rejected(self):
        async def run():
            service = ScheduleService([_spec("a")])
            await service.start()
            with pytest.raises(MessageError, match="unknown tenant"):
                await service.dispatch(Advance("nobody", 1.0))
            await service.close()

        _run(run())

    def test_close_is_idempotent_per_tenant(self):
        async def run():
            service = ScheduleService([_spec("a")])
            await service.start()
            report = await service.dispatch(Close("a"))
            assert report is not None
            reports = await service.close()
            assert reports["a"].result is not None

        _run(run())


class TestForcedCrashLadder:
    def test_forced_crash_recovers_with_backoff(self):
        policy = RestartPolicy(backoff_base=0.001, backoff_cap=0.004)

        async def run():
            service = ScheduleService([_spec()], policy=policy)
            await service.start()
            for i in range(6):
                await service.dispatch(_submit("t0", i + 1, 1.0 + 2.0 * i))
            await service.dispatch(InjectFault("t0", "crash", 8.0))
            await service.dispatch(InjectFault("t0", "crash", 14.0))
            reports = await service.close()
            return reports["t0"]

        report = _run(run())
        assert report.forced_crashes == 2
        assert report.recoveries == 2
        assert report.restarts == 2
        assert all(b <= policy.backoff_cap for b in report.backoffs)
        assert report.lost_jids == ()
        assert replay_tenant(report).ok

    def test_repeated_crashes_at_same_instant_allowed(self):
        """Forced crashes are operator actions — two landing at the same
        kernel position must not be mistaken for a recovery livelock."""

        async def run():
            service = ScheduleService(
                [_spec()], policy=RestartPolicy(backoff_base=0.0)
            )
            await service.start()
            await service.dispatch(_submit("t0", 1, 1.0))
            await service.dispatch(InjectFault("t0", "crash", 5.0))
            await service.dispatch(InjectFault("t0", "crash", 5.0))
            reports = await service.close()
            return reports["t0"], service.supervisor("t0")

        report, supervisor = _run(run())
        assert not supervisor.breaker_open
        assert report.recoveries == 2
        assert replay_tenant(report).ok


class TestCircuitBreaker:
    def _crashy_service(self, max_restarts):
        """A service whose shard crashes on every Advance (monkeyless:
        we drive the real shard but swap its handle with a crasher)."""
        service = ScheduleService(
            [_spec()],
            policy=RestartPolicy(backoff_base=0.0, max_restarts=max_restarts),
        )
        return service

    def test_restart_budget_exhaustion_trips_breaker(self):
        async def run():
            service = self._crashy_service(max_restarts=2)
            await service.start()
            supervisor = service.supervisor("t0")
            shard = supervisor.shard

            real_handle = shard.handle
            crashes = {"n": 0}

            def crashing_handle(message):
                if isinstance(message, Advance):
                    crashes["n"] += 1
                    raise SimulatedCrash(
                        time=float(crashes["n"]),  # advancing position:
                        at_event=crashes["n"],  # the livelock detector
                        fault_index=0,  # must NOT fire first
                        snapshot=shard.kernel.last_snapshot,
                    )
                return real_handle(message)

            shard.handle = crashing_handle
            await service.dispatch(_submit("t0", 1, 1.0))
            result = await service.dispatch(Advance("t0", 5.0))
            assert result is None  # swallowed by the breaker, not raised
            assert supervisor.breaker_open
            assert "budget exhausted" in supervisor.breaker_reason
            # Subsequent submissions shed deterministically, service alive.
            await service.dispatch(_submit("t0", 2, 6.0))
            shard.handle = real_handle
            reports = await service.close()
            return reports["t0"], crashes["n"]

        report, crashes = _run(run())
        assert crashes == 3  # initial + 2 allowed restarts
        assert report.restarts == 2
        shed_reasons = [r.reason for r in report.shed]
        assert "circuit_open" in shed_reasons

    def test_livelocked_crash_trips_breaker_early(self):
        async def run():
            service = self._crashy_service(max_restarts=50)
            await service.start()
            supervisor = service.supervisor("t0")
            shard = supervisor.shard
            real_handle = shard.handle
            crashes = {"n": 0}

            def stuck_handle(message):
                if isinstance(message, Advance):
                    crashes["n"] += 1
                    raise SimulatedCrash(  # same position every time
                        time=3.0,
                        at_event=7,
                        fault_index=0,
                        snapshot=shard.kernel.last_snapshot,
                    )
                return real_handle(message)

            shard.handle = stuck_handle
            await service.dispatch(Advance("t0", 5.0))
            assert supervisor.breaker_open
            assert "livelock" in supervisor.breaker_reason
            shard.handle = real_handle
            await service.close()
            return crashes["n"]

        # Two crashes observed — not 51: the detector cut the loop.
        assert _run(run()) == 2

    def test_breaker_isolates_tenants(self):
        async def run():
            service = ScheduleService(
                [_spec("sick"), _spec("healthy")],
                policy=RestartPolicy(backoff_base=0.0, max_restarts=0),
            )
            await service.start()
            sick = service.supervisor("sick").shard

            def dead_handle(message):
                raise SimulatedCrash(
                    time=1.0, snapshot=sick.kernel.last_snapshot
                )

            sick.handle = dead_handle
            await service.dispatch(Advance("sick", 2.0))
            assert service.supervisor("sick").breaker_open
            # The healthy tenant keeps accepting and completing work.
            for i in range(4):
                await service.dispatch(_submit("healthy", i + 1, 1.0 + i))
            reports = await service.close()
            return reports

        reports = _run(run())
        assert reports["healthy"].lost_jids == ()
        assert len(reports["healthy"].accepted) == 4
        assert replay_tenant(reports["healthy"]).ok
