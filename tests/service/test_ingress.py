"""Ingress adapter tests: line handling, error acks, TCP round-trip."""

from __future__ import annotations

import asyncio
import json

from repro.service import (
    CapacitySpec,
    ScheduleService,
    ServiceIngress,
    Submit,
    TenantSpec,
    encode_message,
)
from repro.sim.job import Job


def _spec(tenant="t0"):
    return TenantSpec(
        tenant=tenant,
        horizon=20.0,
        scheduler="edf",
        capacity=CapacitySpec("constant", {"rate": 1.0}),
        snapshot_every=4,
    )


def _submit_line(tenant, jid, release):
    return encode_message(
        Submit(
            tenant,
            Job(
                jid=jid,
                release=release,
                workload=1.0,
                deadline=release + 4.0,
                value=1.0,
            ),
        )
    )


def _run(coro):
    return asyncio.run(coro)


class TestHandleLine:
    def test_good_bad_and_blank_lines(self):
        async def run():
            service = ScheduleService([_spec()])
            await service.start()
            ingress = ServiceIngress(service)
            ok = await ingress.handle_line(_submit_line("t0", 1, 2.0))
            bad = await ingress.handle_line("this is not json")
            unknown = await ingress.handle_line(
                json.dumps({"type": "advance", "tenant": "ghost", "time": 1})
            )
            blank = await ingress.handle_line("   \n")
            await service.close()
            return ok, bad, unknown, blank, ingress

        ok, bad, unknown, blank, ingress = _run(run())
        # Submits without a client request_id get an ingress-minted one,
        # echoed so the client can `repro obs trace` it later.
        assert ok == {"ok": True, "request_id": "ing-1"}
        assert bad["ok"] is False and "undecodable" in bad["error"]
        assert unknown["ok"] is False and "unknown tenant" in unknown["error"]
        assert blank == {"ok": True, "noop": True}
        assert ingress.accepted_lines == 1
        assert ingress.rejected_lines == 2

    def test_close_ack_carries_counts(self):
        async def run():
            service = ScheduleService([_spec()])
            await service.start()
            ingress = ServiceIngress(service)
            await ingress.handle_line(_submit_line("t0", 1, 2.0))
            ack = await ingress.handle_line(
                json.dumps({"type": "close", "tenant": "t0"})
            )
            await service.close()
            return ack

        ack = _run(run())
        assert ack["ok"] is True
        assert ack["closed"] == "t0"
        assert ack["accepted"] == 1
        assert ack["shed"] == 0

    def test_run_lines_preserves_order(self):
        async def run():
            service = ScheduleService([_spec()])
            await service.start()
            ingress = ServiceIngress(service)
            lines = [_submit_line("t0", i + 1, 1.0 + i) for i in range(5)]
            lines.insert(2, "garbage")
            acks = await ingress.run_lines(lines)
            reports = await service.close()
            return acks, reports["t0"]

        acks, report = _run(run())
        assert [a["ok"] for a in acks] == [True, True, False, True, True, True]
        assert len(report.accepted) == 5
        assert report.lost_jids == ()


class TestTcp:
    def test_tcp_round_trip(self):
        async def run():
            service = ScheduleService([_spec()])
            await service.start()
            ingress = ServiceIngress(service)
            server = await ingress.serve_tcp("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]

            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            payloads = [
                _submit_line("t0", 1, 2.0),
                "broken line",
                _submit_line("t0", 2, 3.0),
                json.dumps({"type": "close", "tenant": "t0"}),
            ]
            acks = []
            for payload in payloads:
                writer.write((payload + "\n").encode())
                await writer.drain()
                acks.append(json.loads(await reader.readline()))
            writer.close()
            await writer.wait_closed()
            await ingress.stop_tcp()
            reports = await service.close()
            return acks, reports["t0"]

        acks, report = _run(run())
        assert [a["ok"] for a in acks] == [True, False, True, True]
        assert acks[-1]["closed"] == "t0"
        assert acks[-1]["accepted"] == 2
        assert len(report.accepted) == 2
        assert report.lost_jids == ()
