"""Supervision: restart ladder, circuit breaker, per-tenant workers.

The :class:`ScheduleService` owns one :class:`~repro.service.shard.TenantShard`
per tenant, each driven by its own asyncio worker task consuming a
per-tenant FIFO queue — tenants are isolated failure domains that crash,
recover and backpressure independently.

The restart ladder (docs/ROBUSTNESS.md §10): a
:class:`~repro.errors.SimulatedCrash` (or any unhandled kernel
exception) triggers ``shard.recover`` — restore the last periodic
snapshot, replay the WAL tail, re-apply the op log — then the failed
message is retried after a capped exponential backoff
(``base · factor^k``, clamped to ``cap``).  A
:class:`~repro.kernel.recovery.CrashLoopDetector` cuts livelocks short
(two consecutive crashes at the same position), and once a single
message exhausts ``max_restarts`` — or recovery itself fails — the
tenant's **circuit breaker** trips: the shard stops restarting, pending
and future submissions are shed with reason ``circuit_open``, and other
tenants keep running.

Durability (docs/ROBUSTNESS.md §12): give the service a ``store_dir``
and every shard writes through a :class:`~repro.store.tenant.TenantStore`
under ``<store_dir>/<tenant>/``.  :meth:`ScheduleService.cold_start`
rebuilds a whole service from such a directory after a ``SIGKILL``, and
:meth:`ScheduleService.drain` is the graceful half: refuse new work
(``draining`` acks), flush every tenant's snapshot + op log + WAL, and
leave a store a cold start recovers from with zero accepted-job loss.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.errors import (
    CircuitOpenError,
    DrainingError,
    MessageError,
    RecoveryError,
    ServiceError,
    SimulatedCrash,
)
from repro.kernel.recovery import CrashLoopDetector
from repro.service.messages import (
    Close,
    HealthQuery,
    InjectFault,
    Message,
    MetricsQuery,
    Stat,
    Submit,
)
from repro.service.shard import (
    TenantReport,
    TenantShard,
    TenantSpec,
    tenant_spec_from_dict,
)
from repro.store.tenant import SPEC_FILE, TenantStore

__all__ = ["RestartPolicy", "TenantSupervisor", "ScheduleService"]


@dataclass(frozen=True)
class RestartPolicy:
    """Capped exponential restart backoff + circuit-breaker threshold."""

    backoff_base: float = 0.01  #: delay before restart 1 (seconds)
    backoff_factor: float = 2.0  #: growth per consecutive restart
    backoff_cap: float = 0.5  #: hard ceiling on any single delay
    max_restarts: int = 8  #: per-message budget before the breaker trips

    def delay(self, attempt: int) -> float:
        """Backoff before restart ``attempt`` (1-based), capped."""
        return min(
            self.backoff_base * (self.backoff_factor ** (attempt - 1)),
            self.backoff_cap,
        )


class TenantSupervisor:
    """One tenant's restartable unit: shard + ladder + breaker state."""

    def __init__(
        self, shard: TenantShard, policy: Optional[RestartPolicy] = None
    ) -> None:
        self.shard = shard
        self.policy = policy or RestartPolicy()
        self.restarts = 0
        self.backoffs: List[float] = []
        self.breaker_open = False
        self.breaker_reason: Optional[str] = None
        #: True while a crash is mid-ladder (between the catch and the
        #: successful retry) — the telemetry plane reports the tenant as
        #: ``restarting`` instead of letting it vanish from a scrape.
        self.restarting = False
        self._detector = CrashLoopDetector()

    @property
    def tenant(self) -> str:
        return self.shard.tenant

    def health_state(self) -> str:
        """The tenant's health ladder state (one of
        :data:`repro.obs.telemetry.HEALTH_STATES`)."""
        if self.breaker_open:
            return "circuit_open"
        if self.restarting:
            return "restarting"
        if self.restarts > 0 or self.shard.shed_count > 0:
            return "degraded"
        return "ok"

    def _trip_breaker(self, reason: str) -> None:
        self.breaker_open = True
        self.breaker_reason = reason
        self.shard.shed_all_pending("circuit_open")
        octx = _obs.current()
        if octx is not None:
            octx.metrics.counter("service.breaker_tripped").inc()
            octx.emit(
                "service.breaker",
                self.shard.kernel.now,
                {"tenant": self.tenant, "reason": reason},
                replay=False,
            )

    async def handle(
        self, message: Message
    ) -> "TenantReport | Dict[str, Any] | None":
        """Process one message through the restart ladder.

        Returns the tenant report for ``Close`` messages, the shard's
        extra ack fields (stats, duplicate notices) for messages that
        produce them, else ``None``.  Raises
        :class:`~repro.errors.MessageError` for rejected messages (the
        ingress counts them); everything fatal trips the breaker instead
        of propagating."""
        if self.breaker_open:
            if isinstance(message, Stat):
                return self.shard.stats()
            if isinstance(message, Submit):
                # Degraded shard: deterministic shed, service keeps going.
                return self.shard.shed_one(
                    message.job, "circuit_open", rid=message.rid
                )
            if isinstance(message, Close):
                return self.shard.report()
            raise CircuitOpenError(
                f"tenant {self.tenant!r} breaker is open "
                f"({self.breaker_reason}); message dropped"
            )

        attempts = 0
        while True:
            try:
                if isinstance(message, Close):
                    result = self.shard.close()
                else:
                    result = self.shard.handle(message)
                self.restarting = False
                return result
            except MessageError:
                raise  # a bad message is the sender's problem, not a crash
            except SimulatedCrash as crash:
                forced = crash.fault_index == -1 and crash.at_event is None
                self.restarting = True
                attempts += 1
                if attempts > self.policy.max_restarts:
                    self.restarting = False
                    self._trip_breaker(
                        f"restart budget exhausted ({self.policy.max_restarts})"
                    )
                    return self.shard.report() if isinstance(message, Close) else None
                try:
                    if not forced:
                        # Forced (ingress-injected) crashes are operator
                        # actions, not livelocks — two of them may land at
                        # the same position legitimately.
                        self._detector.observe(crash)
                    self.shard.recover(crash)
                except RecoveryError as exc:
                    self.restarting = False
                    self._trip_breaker(str(exc))
                    return self.shard.report() if isinstance(message, Close) else None
                self.restarts += 1
                delay = self.policy.delay(attempts)
                self.backoffs.append(delay)
                self._count_restart(delay)
                if delay > 0.0:
                    await asyncio.sleep(delay)
                if forced:
                    # The ingress-forced crash *was* the message's effect;
                    # retrying it would crash forever.
                    self.restarting = False
                    return None
                # Deterministic retry: recovery left the message unapplied.
            except (RecoveryError, ServiceError) as exc:
                self.restarting = False
                self._trip_breaker(str(exc))
                return self.shard.report() if isinstance(message, Close) else None

    def _count_restart(self, delay: float) -> None:
        octx = _obs.current()
        if octx is not None:
            octx.metrics.counter("service.restarts").inc()
            octx.metrics.histogram("service.restart_backoff_s").observe(delay)

    def final_report(self) -> TenantReport:
        report = (
            self.shard.report()
            if self.shard.closed or self.breaker_open
            else self.shard.close()
        )
        report.restarts = self.restarts
        report.backoffs = tuple(self.backoffs)
        return report


class ScheduleService:
    """The always-on front: per-tenant queues, workers and supervisors."""

    def __init__(
        self,
        specs: "list[TenantSpec] | tuple[TenantSpec, ...]",
        *,
        policy: Optional[RestartPolicy] = None,
        journal_dir: "str | None" = None,
        queue_size: int = 1024,
        store_dir: "str | Path | None" = None,
        resume: bool = False,
        store_fsync: bool = True,
        telemetry: bool = False,
    ) -> None:
        if not specs:
            raise ServiceError("a service needs at least one tenant spec")
        names = [spec.tenant for spec in specs]
        if len(set(names)) != len(names):
            raise ServiceError(f"duplicate tenant names in {names}")
        self._specs = tuple(specs)
        self._policy = policy or RestartPolicy()
        self._journal_dir = journal_dir
        self._queue_size = int(queue_size)
        self._store_dir = None if store_dir is None else Path(store_dir)
        self._resume = bool(resume)
        self._store_fsync = bool(store_fsync)
        self._telemetry = bool(telemetry)
        self._supervisors: Dict[str, TenantSupervisor] = {}
        self._queues: Dict[str, asyncio.Queue] = {}
        self._workers: List[asyncio.Task] = []
        self._reports: Dict[str, TenantReport] = {}
        self._started = False
        self._draining = False

    @classmethod
    def cold_start(
        cls,
        store_dir: "str | Path",
        *,
        policy: Optional[RestartPolicy] = None,
        queue_size: int = 1024,
        store_fsync: bool = True,
        telemetry: bool = False,
    ) -> "ScheduleService":
        """A service rebuilt purely from a store directory: every tenant
        subdirectory with a valid spec is resumed from its snapshot +
        op log + WAL.  ``await start()`` performs the actual recovery."""
        root = Path(store_dir)
        specs: List[TenantSpec] = []
        if root.is_dir():
            for sub in sorted(p for p in root.iterdir() if p.is_dir()):
                if not (sub / SPEC_FILE).exists():
                    continue
                store = TenantStore(sub, fsync=store_fsync)
                try:
                    doc = store.load_spec()
                finally:
                    store.close()
                if doc is not None:
                    specs.append(tenant_spec_from_dict(doc))
        if not specs:
            raise ServiceError(
                f"no recoverable tenant state under {str(root)!r}"
            )
        return cls(
            specs,
            policy=policy,
            queue_size=queue_size,
            store_dir=root,
            resume=True,
            store_fsync=store_fsync,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(spec.tenant for spec in self._specs)

    @property
    def draining(self) -> bool:
        return self._draining

    def supervisor(self, tenant: str) -> TenantSupervisor:
        return self._supervisors[tenant]

    async def start(self) -> None:
        """Build every shard and launch its worker task."""
        if self._started:
            return
        for spec in self._specs:
            store = None
            if self._store_dir is not None:
                store = TenantStore(
                    self._store_dir / spec.tenant, fsync=self._store_fsync
                )
            shard = TenantShard(
                spec,
                journal_dir=self._journal_dir,
                store=store,
                resume=self._resume,
                telemetry=self._telemetry,
            )
            self._supervisors[spec.tenant] = TenantSupervisor(
                shard, self._policy
            )
            queue: asyncio.Queue = asyncio.Queue(maxsize=self._queue_size)
            self._queues[spec.tenant] = queue
            self._workers.append(
                asyncio.create_task(
                    self._worker(spec.tenant, queue),
                    name=f"shard-{spec.tenant}",
                )
            )
        self._started = True

    async def _worker(self, tenant: str, queue: asyncio.Queue) -> None:
        supervisor = self._supervisors[tenant]
        while True:
            item = await queue.get()
            if item is None:
                queue.task_done()
                return
            message, future = item
            try:
                result = await supervisor.handle(message)
                if isinstance(result, TenantReport):
                    self._reports[tenant] = result
                if not future.done():
                    future.set_result(result)
            except Exception as exc:  # noqa: BLE001 - routed to the sender
                if not future.done():
                    future.set_exception(exc)
            finally:
                queue.task_done()

    async def dispatch(self, message: Message):
        """Route one message to its tenant's worker and await the outcome.

        Raises :class:`~repro.errors.MessageError` for unknown tenants or
        rejected messages — the ingress converts those into error acks."""
        if not self._started:
            raise ServiceError("service not started")
        if isinstance(message, (MetricsQuery, HealthQuery)):
            # Telemetry reads bypass the per-tenant queues entirely: a
            # scrape must answer synchronously even while the tenant is
            # mid restart ladder (its worker blocked in a backoff sleep)
            # or the service is draining.
            target = None if message.tenant == "*" else message.tenant
            if target is not None and target not in self._supervisors:
                raise MessageError(f"unknown tenant {message.tenant!r}")
            if isinstance(message, MetricsQuery):
                fleet = self.scrape(target)
                if target is None:
                    return {"tenants": fleet}
                return dict(fleet[target], tenant=target)
            states = self.health(target)
            if target is None:
                return {"health": states}
            return {"tenant": target, "health": states[target]}
        if self._draining and isinstance(message, (Submit, InjectFault)):
            raise DrainingError(
                f"service is draining; resubmit to the restarted service "
                f"(tenant {message.tenant!r})"
            )
        queue = self._queues.get(message.tenant)
        if queue is None:
            raise MessageError(f"unknown tenant {message.tenant!r}")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await queue.put((message, future))
        return await future

    def scrape(
        self, tenant: Optional[str] = None
    ) -> Dict[str, Dict[str, Any]]:
        """One fleet telemetry scrape: tenant → ``{"health", "restarts",
        "stats", "slo"}``.  Never raises per tenant — a shard that cannot
        answer mid-recovery reports an ``error`` field and its health
        state instead of breaking the whole scrape."""
        out: Dict[str, Dict[str, Any]] = {}
        for name, supervisor in self._supervisors.items():
            if tenant is not None and name != tenant:
                continue
            entry: Dict[str, Any] = {
                "health": supervisor.health_state(),
                "restarts": supervisor.restarts,
            }
            try:
                entry["stats"] = supervisor.shard.stats()
                entry["slo"] = supervisor.shard.slo_view()
            except Exception as exc:  # noqa: BLE001 - scrape must survive
                entry["error"] = str(exc)
            out[name] = entry
        return out

    def health(self, tenant: Optional[str] = None) -> Dict[str, str]:
        """Tenant → health state (the cheap half of :meth:`scrape`)."""
        return {
            name: supervisor.health_state()
            for name, supervisor in self._supervisors.items()
            if tenant is None or name == tenant
        }

    async def drain(self) -> Dict[str, Dict[str, Any]]:
        """Graceful SIGTERM path: refuse new submits/faults, finish the
        queued backlog, then flush every tenant's snapshot + op log +
        WAL to its store.  Returns per-tenant stats recorded *after* the
        flush — the zero-loss baseline a cold start must reproduce."""
        if not self._started:
            raise ServiceError("service not started")
        self._draining = True
        self._count_drain()
        for queue in self._queues.values():
            await queue.join()
        stats: Dict[str, Dict[str, Any]] = {}
        for tenant, supervisor in self._supervisors.items():
            supervisor.shard.persist_now()
            stats[tenant] = supervisor.shard.stats()
        return stats

    @staticmethod
    def _count_drain() -> None:
        octx = _obs.current()
        if octx is not None:
            octx.metrics.counter("service.drains").inc()

    async def close(self) -> Dict[str, TenantReport]:
        """Close every tenant (if not already closed) and stop workers."""
        for tenant in self.tenants:
            supervisor = self._supervisors[tenant]
            if tenant not in self._reports and not supervisor.shard.closed:
                try:
                    await self.dispatch(Close(tenant=tenant))
                except (MessageError, CircuitOpenError):
                    pass
        for tenant, queue in self._queues.items():
            await queue.put(None)
        await asyncio.gather(*self._workers, return_exceptions=True)
        reports: Dict[str, TenantReport] = {}
        for tenant in self.tenants:
            supervisor = self._supervisors[tenant]
            report = self._reports.get(tenant)
            if report is None:
                report = supervisor.final_report()
            report.restarts = supervisor.restarts
            report.backoffs = tuple(supervisor.backoffs)
            reports[tenant] = report
        return reports
