"""Unit tests for the ASCII Gantt renderer."""

import pytest

from repro.capacity import PiecewiseConstantCapacity
from repro.core import EDFScheduler
from repro.errors import SimulationError
from repro.sim import Job, render_gantt, simulate


@pytest.fixture
def run():
    jobs = [
        Job(0, 0.0, 3.0, 10.0, 1.0),
        Job(1, 1.0, 1.0, 3.0, 1.0),
        Job(2, 0.0, 50.0, 6.0, 1.0),  # doomed
    ]
    cap = PiecewiseConstantCapacity([0.0, 5.0], [1.0, 2.0])
    result = simulate(jobs, cap, EDFScheduler(), validate=True)
    return jobs, cap, result


class TestRendering:
    def test_one_row_per_job(self, run):
        jobs, cap, result = run
        text = render_gantt(result.trace, jobs, capacity=cap)
        lines = text.splitlines()
        assert len(lines) == 1 + 1 + len(jobs)  # header + capacity + jobs

    def test_outcome_marks(self, run):
        jobs, cap, result = run
        text = render_gantt(result.trace, jobs)
        job_lines = {l.split("|")[0].strip(): l for l in text.splitlines()[1:]}
        assert job_lines["job 1"].rstrip().endswith("+")
        assert job_lines["job 2"].rstrip().endswith("x")

    def test_running_cells_present(self, run):
        jobs, cap, result = run
        text = render_gantt(result.trace, jobs)
        assert "#" in text

    def test_capacity_row_levels(self, run):
        jobs, cap, result = run
        text = render_gantt(result.trace, jobs, capacity=cap, width=20)
        cap_row = [l for l in text.splitlines() if l.strip().startswith("c(t)")][0]
        cells = cap_row.split("|")[1]
        assert cells[0] == "1"     # low rate at the start
        assert cells[-1] == "9"    # high rate at the end

    def test_narrow_width_rejected(self, run):
        jobs, cap, result = run
        with pytest.raises(SimulationError):
            render_gantt(result.trace, jobs, width=5)

    def test_explicit_horizon(self, run):
        jobs, cap, result = run
        text = render_gantt(result.trace, jobs, horizon=100.0, width=50)
        assert "100" in text.splitlines()[0]
