"""Unit tests for the synthetic spot market."""

import numpy as np
import pytest

from repro.cloud import SpotMarket, SpotPriceProcess
from repro.errors import InvalidInstanceError


class TestPriceProcess:
    def test_stays_in_band(self):
        proc = SpotPriceProcess(volatility=1.0)
        _, prices = proc.sample(100.0, rng=0)
        assert prices.min() >= proc.floor - 1e-12
        assert prices.max() <= proc.ceiling + 1e-12

    def test_mean_reversion(self):
        proc = SpotPriceProcess(mean=1.0, reversion=2.0, volatility=0.2)
        _, prices = proc.sample(500.0, rng=1)
        assert np.mean(prices) == pytest.approx(1.0, abs=0.2)

    def test_deterministic(self):
        proc = SpotPriceProcess()
        _, a = proc.sample(50.0, rng=5)
        _, b = proc.sample(50.0, rng=5)
        assert np.array_equal(a, b)

    def test_importance_ratio_bound(self):
        proc = SpotPriceProcess(floor=0.5, ceiling=4.0, mean=1.0)
        assert proc.importance_ratio_bound == pytest.approx(8.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(floor=2.0, mean=1.0),
            dict(ceiling=0.5, mean=1.0),
            dict(reversion=0.0),
            dict(dt=0.0),
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            SpotPriceProcess(**kwargs)


class TestMarket:
    def test_requests_have_valid_fields(self):
        market = SpotMarket(SpotPriceProcess(), request_rate=3.0)
        requests, times, prices = market.generate_requests(60.0, rng=2)
        assert requests
        for r in requests:
            assert 0.0 <= r.submit_time < 60.0
            assert SpotPriceProcess().floor <= r.bid <= SpotPriceProcess().ceiling
            assert r.latest_finish > r.submit_time

    def test_requests_admissible_by_construction(self):
        market = SpotMarket(SpotPriceProcess(), floor_capacity=2.0)
        requests, _, _ = market.generate_requests(60.0, rng=3)
        for r in requests:
            assert r.is_admissible(2.0)

    def test_slack_below_one_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SpotMarket(SpotPriceProcess(), slack_range=(0.5, 2.0))

    def test_elastic_demand_clusters_on_cheap_prices(self):
        """With high elasticity, more requests arrive when the price dips."""
        proc = SpotPriceProcess(volatility=0.8, reversion=0.3)
        market = SpotMarket(proc, request_rate=5.0, elasticity=3.0)
        requests, times, prices = market.generate_requests(400.0, rng=4)
        # Split price grid cells at the median price; compare arrival rates.
        median = np.median(prices[:-1])
        cheap_time = expensive_time = 0.0
        cheap_n = expensive_n = 0
        for i in range(len(times) - 1):
            dt = times[i + 1] - times[i]
            in_cell = [
                r for r in requests if times[i] <= r.submit_time < times[i + 1]
            ]
            if prices[i] < median:
                cheap_time += dt
                cheap_n += len(in_cell)
            else:
                expensive_time += dt
                expensive_n += len(in_cell)
        assert cheap_n / cheap_time > expensive_n / expensive_time

    def test_deterministic(self):
        market = SpotMarket(SpotPriceProcess(), request_rate=2.0)
        a, _, _ = market.generate_requests(40.0, rng=9)
        b, _, _ = market.generate_requests(40.0, rng=9)
        assert a == b
