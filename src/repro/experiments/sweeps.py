"""Parameter sweeps and ablations (experiments E3, E6, E7, E8).

The paper motivates three design choices in V-Dover; each gets an ablation
harness here:

* **supplement queue** (delta (ii) vs Dover) — :func:`run_supplement_ablation`;
* **value threshold β** (optimised in Theorem 3's proof) — :func:`run_beta_sweep`;
* **conservatism vs capacity variability δ** — :func:`run_delta_sweep`.

Plus a general policy sweep (:func:`run_policy_sweep`) comparing the whole
scheduler zoo over the paper's load range, used by the extended benchmarks
and the overload-analysis example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.stats import Summary, summarize
from repro.analysis.tables import render_table
from repro.core.admission_edf import AdmissionEDFScheduler
from repro.core.dover import DoverScheduler
from repro.core.edf import EDFScheduler
from repro.core.greedy import FCFSScheduler, GreedyDensityScheduler
from repro.core.llf import LLFScheduler
from repro.core.vdover import VDoverScheduler
from repro.experiments.runner import (
    FailedReplication,
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
)
from repro.workload.poisson import PoissonWorkload

__all__ = [
    "SweepResult",
    "run_policy_sweep",
    "run_supplement_ablation",
    "run_beta_sweep",
    "run_delta_sweep",
    "run_k_misestimation_sweep",
    "run_slack_sweep",
    "default_policy_specs",
]


@dataclass
class SweepResult:
    """Generic sweep output: one row per swept value, one summary per
    scheduler (mean % of generated value captured)."""

    sweep_name: str
    swept_values: list[float] = field(default_factory=list)
    #: scheduler name -> list of Summary, aligned with swept_values
    percents: dict[str, list[Summary]] = field(default_factory=dict)
    #: failure metadata (schema v2): ``(swept_value, FailedReplication)``
    #: for every replication lost to a crash/timeout at that sweep point
    failures: list[tuple[float, FailedReplication]] = field(default_factory=list)

    def render(self) -> str:
        names = list(self.percents)
        headers = [self.sweep_name] + names
        rows = []
        for i, v in enumerate(self.swept_values):
            rows.append(
                [f"{v:g}"] + [f"{self.percents[n][i].mean:7.3f}" for n in names]
            )
        return render_table(headers, rows, title=f"Sweep over {self.sweep_name}")

    def best_at(self, index: int) -> str:
        """Name of the best scheduler at swept index ``index``."""
        return max(self.percents, key=lambda n: self.percents[n][index].mean)


def default_policy_specs(k: float = 7.0) -> list[SchedulerSpec]:
    """The scheduler zoo of the extended comparison."""
    return [
        SchedulerSpec("EDF", EDFScheduler, {}),
        SchedulerSpec("EDF-AC", AdmissionEDFScheduler, {}),
        SchedulerSpec("LLF", LLFScheduler, {}),
        SchedulerSpec("FCFS", FCFSScheduler, {}),
        SchedulerSpec("GreedyDensity", GreedyDensityScheduler, {}),
        SchedulerSpec("Dover(c=1)", DoverScheduler, {"k": k, "c_hat": 1.0}),
        SchedulerSpec("Dover(c=35)", DoverScheduler, {"k": k, "c_hat": 35.0}),
        SchedulerSpec("V-Dover", VDoverScheduler, {"k": k}),
    ]


def _paper_factory(
    lam: float,
    *,
    k: float = 7.0,
    low: float = 1.0,
    high: float = 35.0,
    expected_jobs: float = 500.0,
    deadline_slack: float = 1.0,
) -> PaperInstanceFactory:
    horizon = expected_jobs / lam
    return PaperInstanceFactory(
        workload=PoissonWorkload(
            lam=lam,
            horizon=horizon,
            density_range=(1.0, k),
            c_lower=low,
            deadline_slack=deadline_slack,
        ),
        low=low,
        high=high,
        sojourn=horizon / 4.0,
    )


def _sweep(
    sweep_name: str,
    values: Sequence[float],
    factories: Sequence[PaperInstanceFactory],
    specs_per_value: Sequence[Sequence[SchedulerSpec]],
    n_runs: int,
    seed: int,
    workers: int | None,
) -> SweepResult:
    result = SweepResult(sweep_name=sweep_name)
    for i, (value, factory, specs) in enumerate(
        zip(values, factories, specs_per_value)
    ):
        runner = MonteCarloRunner(factory, list(specs))
        outcomes = runner.run(n_runs, seed=seed + i, workers=workers)
        result.swept_values.append(float(value))
        for spec in specs:
            pct = summarize(
                [100.0 * o.normalized(spec.name) for o in outcomes]
            )
            result.percents.setdefault(spec.name, []).append(pct)
    return result


def run_policy_sweep(
    lambdas: Sequence[float] = (2.0, 4.0, 6.0, 8.0, 12.0),
    *,
    k: float = 7.0,
    n_runs: int = 30,
    seed: int = 7,
    workers: int | None = None,
    expected_jobs: float = 500.0,
) -> SweepResult:
    """All policies across the load range (E1 extension)."""
    specs = default_policy_specs(k)
    factories = [
        _paper_factory(lam, k=k, expected_jobs=expected_jobs) for lam in lambdas
    ]
    return _sweep(
        "lambda", lambdas, factories, [specs] * len(lambdas), n_runs, seed, workers
    )


def run_supplement_ablation(
    lambdas: Sequence[float] = (4.0, 6.0, 8.0, 12.0),
    *,
    k: float = 7.0,
    n_runs: int = 30,
    seed: int = 11,
    workers: int | None = None,
    expected_jobs: float = 500.0,
) -> SweepResult:
    """E6: V-Dover with and without the supplement queue.

    The no-supplement variant still uses conservative laxities, so the gap
    between the two isolates exactly the paper's delta (ii)."""
    specs = [
        SchedulerSpec("V-Dover", VDoverScheduler, {"k": k}),
        SchedulerSpec(
            "V-Dover(no-supp)", VDoverScheduler, {"k": k, "supplement": False}
        ),
        SchedulerSpec("Dover(c=1)", DoverScheduler, {"k": k, "c_hat": 1.0}),
    ]
    factories = [
        _paper_factory(lam, k=k, expected_jobs=expected_jobs) for lam in lambdas
    ]
    return _sweep(
        "lambda", lambdas, factories, [specs] * len(lambdas), n_runs, seed, workers
    )


def run_beta_sweep(
    betas: Sequence[float] = (1.1, 1.5, 2.0, 3.0, 5.0, 9.0),
    *,
    lam: float = 6.0,
    k: float = 7.0,
    n_runs: int = 30,
    seed: int = 13,
    workers: int | None = None,
    expected_jobs: float = 500.0,
) -> SweepResult:
    """E7: sensitivity to the value threshold β at fixed load.

    Theorem 3's worst-case-optimal ``β* = 1 + sqrt(k/f(k,δ))`` is close to
    1 for the paper's (k=7, δ=35); average-case performance is fairly flat
    in β because zero-laxity wins are rare under the Poisson workload."""
    factory = _paper_factory(lam, k=k, expected_jobs=expected_jobs)
    specs = [
        SchedulerSpec(f"beta={b:g}", VDoverScheduler, {"k": k, "beta": b})
        for b in betas
    ]
    runner = MonteCarloRunner(factory, specs)
    outcomes = runner.run(n_runs, seed=seed, workers=workers)
    result = SweepResult(sweep_name="beta")
    for b, spec in zip(betas, specs):
        result.swept_values.append(float(b))
        result.percents.setdefault("V-Dover", []).append(
            summarize([100.0 * o.normalized(spec.name) for o in outcomes])
        )
    return result


def run_delta_sweep(
    highs: Sequence[float] = (2.0, 5.0, 15.0, 35.0, 100.0),
    *,
    lam: float = 6.0,
    k: float = 7.0,
    n_runs: int = 30,
    seed: int = 17,
    workers: int | None = None,
    expected_jobs: float = 500.0,
) -> SweepResult:
    """E8: capacity variability δ = c̄/c̲ (c̲ = 1 fixed, c̄ swept).

    The more the capacity can spike, the more the supplement queue is worth
    and the more a wrong ĉ hurts Dover."""
    factories = []
    specs_per_value = []
    for high in highs:
        factories.append(
            PaperInstanceFactory(
                workload=PoissonWorkload(
                    lam=lam,
                    horizon=expected_jobs / lam,
                    density_range=(1.0, k),
                    c_lower=1.0,
                ),
                low=1.0,
                high=high,
                sojourn=(expected_jobs / lam) / 4.0,
            )
        )
        specs_per_value.append(
            [
                SchedulerSpec("V-Dover", VDoverScheduler, {"k": k}),
                SchedulerSpec(
                    "Dover(c=low)", DoverScheduler, {"k": k, "c_hat": 1.0}
                ),
                SchedulerSpec(
                    "Dover(c=high)", DoverScheduler, {"k": k, "c_hat": high}
                ),
            ]
        )
    return _sweep(
        "delta", [h / 1.0 for h in highs], factories, specs_per_value, n_runs, seed, workers
    )


def run_k_misestimation_sweep(
    believed_ks: Sequence[float] = (1.5, 3.0, 7.0, 14.0, 49.0),
    *,
    true_k: float = 7.0,
    lam: float = 8.0,
    n_runs: int = 30,
    seed: int = 19,
    workers: int | None = None,
    expected_jobs: float = 500.0,
) -> SweepResult:
    """E13: robustness to a misestimated importance-ratio bound.

    V-Dover's threshold β is derived from the *believed* k; the workload's
    true densities span [1, true_k].  Under-believing k makes β too small
    (urgent jobs seize the processor too eagerly); over-believing makes β
    too large (valuable urgent jobs are demoted).  The sweep measures how
    forgiving the average case is to either error — operators rarely know
    k exactly, so this is the first question a practitioner asks."""
    factory = _paper_factory(lam, k=true_k, expected_jobs=expected_jobs)
    specs = [
        SchedulerSpec(f"believe k={kb:g}", VDoverScheduler, {"k": kb})
        for kb in believed_ks
    ]
    runner = MonteCarloRunner(factory, specs)
    outcomes = runner.run(n_runs, seed=seed, workers=workers)
    result = SweepResult(sweep_name="believed k")
    for kb, spec in zip(believed_ks, specs):
        result.swept_values.append(float(kb))
        result.percents.setdefault("V-Dover", []).append(
            summarize([100.0 * o.normalized(spec.name) for o in outcomes])
        )
    return result


def run_slack_sweep(
    slacks: Sequence[float] = (1.0, 1.5, 2.0, 4.0, 8.0),
    *,
    lam: float = 8.0,
    k: float = 7.0,
    n_runs: int = 30,
    seed: int = 23,
    workers: int | None = None,
    expected_jobs: float = 500.0,
) -> SweepResult:
    """E14: deadline tightness (relative deadline = slack × p/c̲).

    The paper's simulation pins slack = 1 (zero conservative laxity at
    release) — the regime where zero-laxity triage matters most.  This
    sweep loosens the deadlines: as slack grows, instances become closer
    to underloaded, EDF approaches optimality (Theorem 2's regime), and
    V-Dover's edge over it should shrink toward zero while never going
    (statistically) negative."""
    specs = [
        SchedulerSpec("V-Dover", VDoverScheduler, {"k": k}),
        SchedulerSpec("EDF", EDFScheduler, {}),
        SchedulerSpec("Dover(c=1)", DoverScheduler, {"k": k, "c_hat": 1.0}),
    ]
    factories = [
        _paper_factory(
            lam, k=k, expected_jobs=expected_jobs, deadline_slack=slack
        )
        for slack in slacks
    ]
    return _sweep(
        "deadline slack", slacks, factories, [specs] * len(slacks), n_runs, seed, workers
    )
