"""Piecewise-constant capacity defined by explicit breakpoints.

This is the workhorse representation: the CTMC model of the paper's
Section IV, trace-driven models, and the residual capacity left by primary
cloud jobs all reduce to a sorted list of ``(breakpoint, rate)`` pairs.
All queries go through the shared prefix-sum index
(:class:`repro.capacity.prefix.PrefixIndexedCapacity`): ``integrate`` and
``advance`` are ``O(log n)`` bisections on the cumulative-work array and
iteration over ``pieces`` is ``O(k)`` in the number of pieces returned.

Bound validation is tolerance-aware (relative ε ≈ 1e-12, via
:func:`repro.capacity.base.ensure_band`): declared bounds are routinely
*derived* floats that can drift ~1 ulp from the realized rates, and such
drift must not reject a legitimate instance.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Iterator, Sequence, Tuple

from repro.capacity.base import Piece, ensure_band
from repro.capacity.prefix import PrefixIndexedCapacity, build_prefix
from repro.errors import CapacityError

__all__ = ["PiecewiseConstantCapacity"]


class PiecewiseConstantCapacity(PrefixIndexedCapacity):
    """Capacity that is constant between sorted breakpoints.

    Parameters
    ----------
    breakpoints:
        Strictly increasing times ``b_0 < b_1 < ...`` with ``b_0 == 0.0``.
        The rate on ``[b_i, b_{i+1})`` is ``rates[i]``; past the last
        breakpoint the rate is ``rates[-1]`` forever.
    rates:
        One rate per breakpoint; all must be positive.
    lower, upper:
        Declared bounds of the capacity input set.  Default to the min/max
        of ``rates``.  The declared bounds may be wider than the realized
        trajectory (the scheduler only ever learns the declaration) but must
        contain every rate — up to the shared 1e-12 relative tolerance for
        derived-float drift (see :mod:`repro.capacity.base`).
    """

    def __init__(
        self,
        breakpoints: Sequence[float],
        rates: Sequence[float],
        *,
        lower: float | None = None,
        upper: float | None = None,
    ) -> None:
        if len(breakpoints) != len(rates):
            raise CapacityError(
                f"{len(breakpoints)} breakpoints but {len(rates)} rates"
            )
        if not breakpoints:
            raise CapacityError("at least one (breakpoint, rate) pair required")
        if breakpoints[0] != 0.0:
            raise CapacityError(
                f"first breakpoint must be 0.0, got {breakpoints[0]!r}"
            )
        bp = [float(b) for b in breakpoints]
        for a, b in zip(bp, bp[1:]):
            if b <= a:
                raise CapacityError(f"breakpoints not strictly increasing: {a} -> {b}")
        rt = [float(r) for r in rates]
        for r in rt:
            if r <= 0.0:
                raise CapacityError(f"non-positive rate: {r!r}")
        lo = min(rt) if lower is None else float(lower)
        hi = max(rt) if upper is None else float(upper)
        ensure_band(lo, hi, min(rt), max(rt))
        super().__init__(lo, hi)
        self._bp = bp
        self._rates = rt
        # Prefix-sum index: cum[i] = ∫_0^{bp[i]} c (see capacity/prefix.py).
        self._cum = build_prefix(bp, rt)

    # ------------------------------------------------------------------
    @property
    def breakpoints(self) -> Tuple[float, ...]:
        return tuple(self._bp)

    @property
    def rates(self) -> Tuple[float, ...]:
        return tuple(self._rates)

    def _rate_at(self, i: int) -> float:
        return self._rates[i]

    def _index(self, t: float) -> int:
        """Index of the piece containing ``t`` (pieces close on the left)."""
        return max(0, bisect_right(self._bp, t) - 1)

    # ------------------------------------------------------------------
    def value(self, t: float) -> float:
        if t < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t!r}")
        return self._rates[self._index(t)]

    def pieces(self, t0: float, t1: float) -> Iterator[Piece]:
        if t1 <= t0:
            return
        if t0 < 0.0:
            raise CapacityError(f"capacity undefined for t < 0: {t0!r}")
        i = self._index(t0)
        start = t0
        n = len(self._bp)
        while start < t1:
            end = self._bp[i + 1] if i + 1 < n else math.inf
            if end > t1:
                end = t1
            yield (start, end, self._rates[i])
            start = end
            i += 1

    # integrate / advance / cumulative / next_change: O(log n) via the
    # shared prefix-sum index (PrefixIndexedCapacity).

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PiecewiseConstantCapacity(n_pieces={len(self._bp)}, "
            f"lower={self.lower:g}, upper={self.upper:g})"
        )
