"""Property-based tests: JobQueue behaves as a sorted container with
removal, under arbitrary interleavings of operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Job, JobQueue, edf_key, latest_deadline_key


@st.composite
def operations(draw):
    """A sequence of (op, job-index) against a pool of jobs."""
    n_jobs = draw(st.integers(min_value=1, max_value=20))
    jobs = [
        Job(i, 0.0, 1.0, draw(st.floats(0.5, 100.0)), 1.0) for i in range(n_jobs)
    ]
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove", "dequeue", "first"]),
                st.integers(0, n_jobs - 1),
            ),
            max_size=60,
        )
    )
    return jobs, ops


@settings(max_examples=100, deadline=None)
@given(data=operations())
def test_queue_matches_reference_model(data):
    """Differential test against a naive sorted-list model."""
    jobs, ops = data
    queue = JobQueue(edf_key)
    model: dict[int, Job] = {}

    for op, idx in ops:
        job = jobs[idx]
        if op == "insert":
            if job.jid not in model:
                queue.insert(job)
                model[job.jid] = job
        elif op == "remove":
            got = queue.remove(job)
            expected = model.pop(job.jid, None)
            assert got is expected
        elif op == "dequeue":
            if model:
                got = queue.dequeue()
                best = min(model.values(), key=edf_key)
                assert got is best
                del model[got.jid]
        elif op == "first":
            if model:
                got = queue.first()
                assert got is min(model.values(), key=edf_key)

        assert len(queue) == len(model)
        assert {j.jid for j in queue.jobs()} == set(model)


@settings(max_examples=50, deadline=None)
@given(deadlines=st.lists(st.floats(0.5, 100.0), min_size=1, max_size=30))
def test_drain_is_sorted(deadlines):
    queue = JobQueue(edf_key)
    for i, d in enumerate(deadlines):
        queue.insert(Job(i, 0.0, 1.0, d, 1.0))
    drained = queue.drain()
    keys = [edf_key(j) for j in drained]
    assert keys == sorted(keys)


@settings(max_examples=50, deadline=None)
@given(deadlines=st.lists(st.floats(0.5, 100.0), min_size=1, max_size=30))
def test_latest_deadline_is_reverse_of_edf(deadlines):
    """Qsupp's order is the exact reverse of Qedf's on the same jobs
    (modulo the id tie-break direction)."""
    jobs = [Job(i, 0.0, 1.0, d, 1.0) for i, d in enumerate(deadlines)]
    supp = JobQueue(latest_deadline_key)
    for j in jobs:
        supp.insert(j)
    drained = supp.drain()
    ds = [j.deadline for j in drained]
    assert ds == sorted(ds, reverse=True)
