"""Event types and the event queues for the discrete-event engine.

Events are totally ordered by ``(time, kind priority, sequence)``.  The kind
priority encodes the tie-breaking rules the paper's semantics require at a
shared timestamp:

1. ``COMPLETION`` before ``DEADLINE`` — a job finishing exactly at its
   deadline *succeeds* (deadlines are firm but inclusive);
2. ``DEADLINE`` before ``RELEASE`` — expired jobs leave the system before
   new arrivals are considered;
3. ``RELEASE`` before ``ALARM`` — the paper's workload sets relative
   deadlines to ``p/c̲`` so every job's zero-conservative-laxity instant
   coincides with its release; the release handler must run first, then the
   zero-laxity interrupt fires for the job if it was not scheduled.

Stale events are handled by versioning: each (job, kind) carries a version
token captured at scheduling time; bumping the token invalidates in-flight
events without an O(n) heap scan (lazy deletion, as recommended for heapq).
Lazy deletion alone lets dead entries accumulate — schedulers that churn
alarms (LLF crossing timers, Dover's zero-laxity interrupts) can grow the
heap without bound — so the queue also supports *compaction*: when the
caller has hinted that more than half the heap is dead
(:meth:`EventQueue.note_stale`), the heap is filtered through the caller's
staleness predicate and re-heapified.  Compaction preserves pop order
exactly because every entry's ``(time, kind, seq)`` key is unique.

Two implementations share one contract (push/pop/peek/compact/dump/load):

* :class:`EventQueue` — a single binary heap.  O(log n) everywhere, the
  right default for paper-scale runs.
* :class:`CalendarEventQueue` — a bucketed (calendar-queue) variant for
  high-λ regimes: events hash into fixed-width time buckets (each bucket a
  small heap over the full ``(time, kind, seq)`` key, bucket indices in a
  second tiny heap), so pushes and pops touch a bucket of a few entries
  instead of a deep global heap.  Pop order is *identical* to the binary
  heap's by construction — buckets partition time, and within a bucket the
  full unique key orders entries — which the equivalence property suite
  pins down (``tests/sim/test_events_calendar.py``).

:func:`make_event_queue` selects between them ("heap", "calendar", or
"auto" on a seeded-event-density heuristic — see
``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional, Tuple

from repro.errors import SimulationError

__all__ = [
    "EventKind",
    "Event",
    "EventQueue",
    "CalendarEventQueue",
    "make_event_queue",
]


class EventKind(enum.IntEnum):
    """Event categories; the integer value is the same-time priority."""

    COMPLETION = 0
    DEADLINE = 1
    RELEASE = 2
    ALARM = 3
    TIMER = 4
    END = 5
    #: Injected execution fault (job kill, VM revocation, scheduled crash).
    #: Lowest priority at a shared timestamp: the world transition the fault
    #: interrupts must have fully taken effect first.
    FAULT = 6


class Event:
    """A scheduled occurrence.

    ``version`` is compared against the engine's current token for the
    (job, kind) pair at pop time; mismatches are silently dropped.
    ``payload`` carries the job for job events or an arbitrary tag for
    timers.

    Hot-path note: this used to be a frozen dataclass; the kernel creates
    one per push (plus ~2 heap-tuple fields), so the ``__slots__`` plain
    class cuts both allocation size and construction time on the
    per-event path.  Value equality and hashing are preserved.
    """

    __slots__ = ("time", "kind", "payload", "version")

    def __init__(
        self,
        time: float,
        kind: EventKind,
        payload: Any = None,
        version: int = 0,
    ) -> None:
        self.time = time
        self.kind = kind
        self.payload = payload
        self.version = version

    def sort_key(self, seq: int) -> tuple:
        return (self.time, int(self.kind), seq)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.time == other.time
            and self.kind == other.kind
            and self.payload == other.payload
            and self.version == other.version
        )

    def __hash__(self) -> int:
        return hash((self.time, self.kind, self.version))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Event(time={self.time!r}, kind={self.kind!r}, "
            f"payload={self.payload!r}, version={self.version!r})"
        )


#: Heap entries are ``(time, int(kind), seq, event)`` — compared by the
#: unique (time, kind, seq) prefix, so the Event object itself is never
#: compared.
_Entry = Tuple[float, int, int, Event]


class EventQueue:
    """A priority queue of :class:`Event` with deterministic ordering.

    Ties beyond (time, kind) break by insertion sequence, which makes every
    simulation run bit-for-bit reproducible for a fixed input.

    ``stale`` is an optional predicate identifying entries that are
    *provably* dead (their version token was bumped, or their job reached a
    terminal state); it is only consulted during :meth:`compact`.
    """

    def __init__(self, stale: Callable[[Event], bool] | None = None) -> None:
        self._heap: List[_Entry] = []
        self._counter = itertools.count()
        self._stale = stale
        self._stale_hint = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, event: Event) -> None:
        if event.time != event.time:  # NaN guard
            raise SimulationError(f"event with NaN time: {event!r}")
        seq = next(self._counter)
        heapq.heappush(self._heap, (event.time, int(event.kind), seq, event))

    def push_many(self, events: Iterable[Event]) -> None:
        """Bulk push: append then re-heapify (O(n) instead of n pushes at
        O(log n) each).  Sequence numbers are assigned in iteration order,
        so the pop order is identical to pushing one by one."""
        heap = self._heap
        counter = self._counter
        for event in events:
            if event.time != event.time:  # NaN guard
                raise SimulationError(f"event with NaN time: {event!r}")
            heap.append((event.time, int(event.kind), next(counter), event))
        heapq.heapify(heap)

    def pop(self) -> Event:
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, kind, seq, event = heapq.heappop(self._heap)
        if self._stale_hint:
            # The popped entry may itself have been one of the hinted-dead
            # ones; keep the hint an upper bound rather than letting it
            # exceed the heap size.
            self._stale_hint = min(self._stale_hint, len(self._heap))
        return event

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def peek_key(self) -> Optional[Tuple[float, int]]:
        """``(time, int(kind))`` of the head event without popping it.

        The batch dispatch path uses this to gather whole same-``(time,
        kind)`` groups; like :meth:`peek_time` it sees stale entries too
        (the caller filters them exactly as the scalar loop would)."""
        head = self._heap[0] if self._heap else None
        return None if head is None else (head[0], head[1])

    def pop_group(self, time: float, kind_int: int) -> List[Event]:
        """Pop every consecutive head entry keyed exactly ``(time,
        kind_int)``, in pop order.

        Equivalent to repeated ``peek_key()``/``pop()`` — one call per
        gathered group instead of two per event, with the key comparison
        done on the raw heap entry (no tuple allocation).  Stale entries
        come out too; the caller filters them exactly as the scalar loop
        would."""
        heap = self._heap
        out: List[Event] = []
        heappop = heapq.heappop
        while heap:
            head = heap[0]
            if head[0] != time or head[1] != kind_int:
                break
            out.append(heappop(heap)[3])
        if out and self._stale_hint:
            self._stale_hint = min(self._stale_hint, len(heap))
        return out

    # -- compaction (lazy-deletion hygiene) ---------------------------------

    def note_stale(self, n: int = 1) -> int:
        """Record that ``n`` in-flight entries just became dead.

        Called by the engine whenever it bumps a version token (cancelling
        an alarm or a completion).  When the hinted dead count exceeds half
        the heap, :meth:`compact` runs automatically.  Returns the number of
        entries removed (0 when no compaction was triggered).
        """
        self._stale_hint += int(n)
        if self._stale is not None and self._stale_hint * 2 > len(self):
            return self.compact()
        return 0

    def compact(self) -> int:
        """Drop all entries the staleness predicate marks dead; re-heapify.

        Safe at any point: pop order is fully determined by the unique
        ``(time, kind, seq)`` keys, so removing dead entries and rebuilding
        the heap never changes which live event comes out next.
        """
        if self._stale is None:
            self._stale_hint = 0
            return 0
        before = len(self._heap)
        self._heap = [entry for entry in self._heap if not self._stale(entry[3])]
        heapq.heapify(self._heap)
        self._stale_hint = 0
        return before - len(self._heap)

    # -- snapshot support ---------------------------------------------------

    def dump(self) -> List[_Entry]:
        """All entries in sorted (pop) order, plus no internal state.

        Used by engine snapshots; pair with :meth:`load` and
        :attr:`next_seq` / :attr:`stale_hint` to rebuild an identical queue.
        """
        return sorted(self._heap)

    def load(
        self,
        entries: Iterable[_Entry],
        next_seq: int,
        stale_hint: int = 0,
    ) -> None:
        """Replace the queue contents (snapshot restore).

        ``next_seq`` must be the original queue's :attr:`next_seq` so that
        sequence numbers assigned after the restore match the original run
        exactly (bit-identical replay depends on it).
        """
        self._heap = list(entries)
        heapq.heapify(self._heap)
        self._counter = itertools.count(int(next_seq))
        self._stale_hint = int(stale_hint)

    @property
    def next_seq(self) -> int:
        """The sequence number the next :meth:`push` will consume."""
        # itertools.count has no peek; clone-by-arithmetic is not possible,
        # so burn-and-restore: take the value and rebuild the counter.
        value = next(self._counter)
        self._counter = itertools.count(value)
        return value

    @property
    def stale_hint(self) -> int:
        """Current hinted count of dead entries (snapshot bookkeeping)."""
        return self._stale_hint


class CalendarEventQueue(EventQueue):
    """Bucketed (calendar-queue) event queue for high-λ regimes.

    Events hash into fixed-width time buckets; each bucket is a small heap
    over the full ``(time, kind, seq)`` entry, and a second heap orders the
    indices of non-empty buckets.  Because buckets partition the time axis
    monotonically and the per-bucket key is the same unique total order the
    binary heap uses, the pop sequence is **identical** to
    :class:`EventQueue`'s for any push/pop interleaving — the calendar
    layout only changes *where* the log factor is paid (a bucket of O(1)
    expected entries instead of one deep heap).

    ``bucket_width`` sets the time span per bucket; pick roughly
    ``horizon / expected_events × 4`` so a bucket holds a few events
    (:func:`make_event_queue` does this).
    """

    def __init__(
        self,
        stale: Callable[[Event], bool] | None = None,
        *,
        bucket_width: float = 1.0,
    ) -> None:
        super().__init__(stale)
        if not bucket_width > 0.0:
            raise SimulationError(
                f"bucket_width must be positive, got {bucket_width!r}"
            )
        self._width = float(bucket_width)
        self._buckets: dict[int, List[_Entry]] = {}
        self._order: List[int] = []  # heap of non-empty bucket indices
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def _bucket_of(self, time: float) -> int:
        return int(time // self._width)

    def push(self, event: Event) -> None:
        if event.time != event.time:  # NaN guard
            raise SimulationError(f"event with NaN time: {event!r}")
        entry = (event.time, int(event.kind), next(self._counter), event)
        self._place(entry)

    def push_many(self, events: Iterable[Event]) -> None:
        for event in events:
            self.push(event)

    def _place(self, entry: _Entry) -> None:
        idx = self._bucket_of(entry[0])
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [entry]
            heapq.heappush(self._order, idx)
        else:
            heapq.heappush(bucket, entry)
        self._size += 1

    def _head_bucket(self) -> Optional[List[_Entry]]:
        """The bucket holding the globally minimal entry (cleans up emptied
        buckets lazily); ``None`` when the queue is empty."""
        order = self._order
        buckets = self._buckets
        while order:
            bucket = buckets.get(order[0])
            if bucket:
                return bucket
            # Emptied (or vanished) bucket index: retire it.
            buckets.pop(order[0], None)
            heapq.heappop(order)
        return None

    def pop(self) -> Event:
        bucket = self._head_bucket()
        if bucket is None:
            raise SimulationError("pop from empty event queue")
        time, kind, seq, event = heapq.heappop(bucket)
        self._size -= 1
        if self._stale_hint:
            self._stale_hint = min(self._stale_hint, self._size)
        return event

    def peek_time(self) -> Optional[float]:
        bucket = self._head_bucket()
        return bucket[0][0] if bucket else None

    def peek_key(self) -> Optional[Tuple[float, int]]:
        bucket = self._head_bucket()
        return (bucket[0][0], bucket[0][1]) if bucket else None

    def pop_group(self, time: float, kind_int: int) -> List[Event]:
        """See :meth:`EventQueue.pop_group`; buckets partition the time
        axis, so a same-time group always sits in one bucket — but the
        head bucket is re-resolved per pop (popping the bucket's last
        entry retires it)."""
        out: List[Event] = []
        heappop = heapq.heappop
        while True:
            bucket = self._head_bucket()
            if not bucket:
                break
            head = bucket[0]
            if head[0] != time or head[1] != kind_int:
                break
            out.append(heappop(bucket)[3])
            self._size -= 1
        if out and self._stale_hint:
            self._stale_hint = min(self._stale_hint, self._size)
        return out

    def compact(self) -> int:
        if self._stale is None:
            self._stale_hint = 0
            return 0
        before = self._size
        stale = self._stale
        buckets = {}
        for idx, bucket in self._buckets.items():
            kept = [entry for entry in bucket if not stale(entry[3])]
            if kept:
                heapq.heapify(kept)
                buckets[idx] = kept
        self._buckets = buckets
        self._order = list(buckets.keys())
        heapq.heapify(self._order)
        self._size = sum(len(b) for b in buckets.values())
        self._stale_hint = 0
        return before - self._size

    def dump(self) -> List[_Entry]:
        out: List[_Entry] = []
        for bucket in self._buckets.values():
            out.extend(bucket)
        out.sort()
        return out

    def load(
        self,
        entries: Iterable[_Entry],
        next_seq: int,
        stale_hint: int = 0,
    ) -> None:
        self._buckets = {}
        self._order = []
        self._size = 0
        for entry in entries:
            self._place(entry)
        self._counter = itertools.count(int(next_seq))
        self._stale_hint = int(stale_hint)


#: ``make_event_queue("auto")`` picks the calendar layout when the seeded
#: event density (events per simulated time unit) reaches this bar *and*
#: there are enough events for bucketing to matter.  Below it the single
#: binary heap wins on constant factors.  (docs/PERFORMANCE.md)
CALENDAR_DENSITY_THRESHOLD = 24.0
CALENDAR_MIN_EVENTS = 4096

#: Target expected entries per calendar bucket.
_CALENDAR_FILL = 4.0


def make_event_queue(
    mode: str = "auto",
    *,
    stale: Callable[[Event], bool] | None = None,
    horizon: float = 0.0,
    expected_events: int = 0,
) -> EventQueue:
    """Build the event queue for a run.

    ``mode`` is ``"heap"``, ``"calendar"`` or ``"auto"``; auto selects the
    calendar layout for high-λ regimes (seeded-event density ≥
    ``CALENDAR_DENSITY_THRESHOLD`` per time unit and at least
    ``CALENDAR_MIN_EVENTS`` events), else the binary heap.  Both produce
    bit-identical pop orders; the choice is purely a constant-factor one.
    """
    if mode not in ("auto", "heap", "calendar"):
        raise SimulationError(
            f"unknown event queue mode {mode!r} "
            "(expected 'auto', 'heap' or 'calendar')"
        )
    if mode == "auto":
        dense = (
            horizon > 0.0
            and expected_events >= CALENDAR_MIN_EVENTS
            and expected_events / horizon >= CALENDAR_DENSITY_THRESHOLD
        )
        mode = "calendar" if dense else "heap"
    if mode == "calendar":
        if horizon > 0.0 and expected_events > 0:
            width = max(horizon * _CALENDAR_FILL / expected_events, 1e-9)
        else:
            width = 1.0
        return CalendarEventQueue(stale, bucket_width=width)
    return EventQueue(stale)
