"""E8 — ablation: capacity variability δ = c̄/c̲.

Sweeps the CTMC's high state with the low state pinned at 1, comparing
V-Dover against Dover anchored at each end of the band.  Expected shape:

* at small δ every policy converges (there is little variability to
  exploit or misjudge);
* as δ grows, Dover(ĉ=c̲) leaves ever more spike capacity unused and
  Dover(ĉ=c̄) overcommits ever harder during floors, while V-Dover tracks
  the better of the two or beats both.
"""

from __future__ import annotations

import pytest

from conftest import expected_jobs
from repro.experiments import run_delta_sweep
from repro.experiments.runner import default_mc_runs


def test_delta_ablation(archive, benchmark):
    sweep = run_delta_sweep(
        highs=(2.0, 5.0, 15.0, 35.0, 100.0),
        lam=6.0,
        n_runs=default_mc_runs(30),
        expected_jobs=min(500.0, expected_jobs()),
    )
    archive("ablation_delta", sweep.render())

    n = len(sweep.swept_values)
    for i in range(n):
        vd = sweep.percents["V-Dover"][i].mean
        low_anchor = sweep.percents["Dover(c=low)"][i].mean
        high_anchor = sweep.percents["Dover(c=high)"][i].mean
        # V-Dover within noise of (or above) the best fixed anchor.
        assert vd >= max(low_anchor, high_anchor) - 1.5, (
            f"delta={sweep.swept_values[i]}: V-Dover fell behind a fixed anchor"
        )

    # At the smallest delta the three policies should be close.
    spread_small = (
        max(s[0].mean for s in sweep.percents.values())
        - min(s[0].mean for s in sweep.percents.values())
    )
    assert spread_small < 10.0

    benchmark.pedantic(
        lambda: run_delta_sweep(highs=(35.0,), n_runs=3, expected_jobs=150.0, workers=1),
        rounds=1,
        iterations=1,
    )
