"""Ingress adapters: JSON lines in, acks out.

The service's wire surface is deliberately thin: one JSON object per
line (:mod:`repro.service.messages`), answered by one JSON ack per line
— ``{"ok": true, ...}`` or ``{"ok": false, "error": "..."}``.  Two
adapters feed the same :meth:`ServiceIngress.handle_line` path:

* :meth:`serve_tcp` — an asyncio TCP server (one connection per client,
  lines processed in arrival order per connection);
* :meth:`run_lines` — an in-process driver for an iterable of lines
  (the stdin adapter and the soak harness both use it: stdin is just
  ``run_lines(sys.stdin)`` via a thread executor).

Malformed lines never kill the service: they produce an error ack and a
``service.rejected`` count.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import AsyncIterator, Dict, Iterable, List, Optional

from repro import obs as _obs
from repro.errors import CircuitOpenError, MessageError
from repro.service.messages import parse_message
from repro.service.supervisor import ScheduleService

__all__ = ["ServiceIngress"]


class ServiceIngress:
    """Validate, route and ack JSON-line traffic for a running service."""

    def __init__(self, service: ScheduleService) -> None:
        self.service = service
        self.accepted_lines = 0
        self.rejected_lines = 0
        self._server: "asyncio.AbstractServer | None" = None

    # ------------------------------------------------------------------
    async def handle_line(self, line: "str | bytes") -> Dict:
        """Process one wire line; always returns an ack dict."""
        if isinstance(line, bytes):
            line = line.decode("utf-8", errors="replace")
        line = line.strip()
        if not line:
            return {"ok": True, "noop": True}
        try:
            message = parse_message(line)
            result = await self.service.dispatch(message)
        except (MessageError, CircuitOpenError) as exc:
            self.rejected_lines += 1
            octx = _obs.current()
            if octx is not None:
                octx.metrics.counter("service.rejected").inc()
            return {"ok": False, "error": str(exc)}
        self.accepted_lines += 1
        ack: Dict = {"ok": True}
        if result is not None:  # a Close returns the tenant report
            ack["closed"] = result.tenant
            ack["accepted"] = len(result.accepted)
            ack["shed"] = len(result.shed)
        return ack

    async def run_lines(
        self, lines: "Iterable[str] | AsyncIterator[str]"
    ) -> List[Dict]:
        """Drive the service from an iterable of wire lines, in order.

        Accepts both sync iterables (lists, files) and async iterators;
        returns the acks."""
        acks: List[Dict] = []
        if hasattr(lines, "__aiter__"):
            async for line in lines:  # type: ignore[union-attr]
                acks.append(await self.handle_line(line))
        else:
            for line in lines:
                acks.append(await self.handle_line(line))
        return acks

    # ------------------------------------------------------------------
    # TCP adapter
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                ack = await self.handle_line(line)
                writer.write((json.dumps(ack) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def serve_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> asyncio.AbstractServer:
        """Start the JSON-line TCP listener (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        return self._server

    async def stop_tcp(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # stdin adapter
    # ------------------------------------------------------------------
    async def run_stdin(self, stream: Optional[object] = None) -> List[Dict]:
        """Drive the service from ``stdin`` (or any file-like ``stream``),
        reading lines in a thread so the event loop stays responsive."""
        stream = stream if stream is not None else sys.stdin
        loop = asyncio.get_running_loop()
        acks: List[Dict] = []
        while True:
            line = await loop.run_in_executor(None, stream.readline)
            if not line:
                break
            acks.append(await self.handle_line(line))
        return acks
