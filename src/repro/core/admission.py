"""Individual admissibility (paper, Definition 4) and related predicates.

A job is *individually admissible* iff it could always be completed before
its deadline regardless of capacity variation, had it been the only job:
``d_i − r_i >= p_i / c̲``.  Theorem 3 makes this the dividing line for
overloaded online scheduling: with it, V-Dover's positive competitive
ratio holds; without it, *no* online algorithm has a positive ratio
(Theorem 3(3); see :mod:`repro.workload.instances` for the adversarial
family realising the impossibility).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.sim.job import Job

__all__ = [
    "is_individually_admissible",
    "all_individually_admissible",
    "filter_admissible",
    "admissibility_report",
]


def is_individually_admissible(job: Job, c_lower: float) -> bool:
    """Definition 4 for a single job (delegates to :meth:`Job.
    is_individually_admissible`)."""
    return job.is_individually_admissible(c_lower)


def all_individually_admissible(jobs: Iterable[Job], c_lower: float) -> bool:
    """True iff every job satisfies Definition 4 — the premise of
    Theorem 3(2)."""
    return all(job.is_individually_admissible(c_lower) for job in jobs)


def filter_admissible(
    jobs: Iterable[Job], c_lower: float
) -> tuple[list[Job], list[Job]]:
    """Split jobs into (admissible, inadmissible) lists.

    Note the paper's warning: under *varying* capacity, dropping the
    inadmissible jobs is not value-neutral — such jobs can still complete
    when capacity runs high, and both online and offline schedulers may
    profit from them.  This helper exists for instance hygiene and for
    experiments that enforce the Theorem-3(2) premise, not as a silently
    applied preprocessing step.
    """
    admissible: list[Job] = []
    inadmissible: list[Job] = []
    for job in jobs:
        (admissible if job.is_individually_admissible(c_lower) else inadmissible).append(job)
    return admissible, inadmissible


def admissibility_report(jobs: Sequence[Job], c_lower: float) -> dict:
    """Summary statistics used by experiment logs and the CLI."""
    admissible, inadmissible = filter_admissible(jobs, c_lower)
    return {
        "n_jobs": len(jobs),
        "n_admissible": len(admissible),
        "n_inadmissible": len(inadmissible),
        "admissible_value": sum(j.value for j in admissible),
        "inadmissible_value": sum(j.value for j in inadmissible),
        "all_admissible": not inadmissible,
    }
