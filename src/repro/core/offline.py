"""Offline (clairvoyant) scheduling: feasibility, exact optimum, heuristics.

The offline value-maximisation problem is NP-hard even for constant
capacity (Dertouzos & Mok), so this module provides:

* an exact **feasibility** test (:func:`is_feasible`): with free preemption
  on one processor, EDF completes every job of a set iff *some* schedule
  does (classical optimality of EDF for feasibility; it transfers to
  varying capacity through the stretch transformation, and our EDF
  implementation is capacity-oblivious anyway);
* an exact **optimal value** via branch-and-bound over job subsets
  (:func:`optimal_offline_value`) — practical to ``n ≈ 20`` thanks to the
  monotone pruning rule (supersets of infeasible sets are infeasible) and
  the residual-value bound;
* a polynomial **greedy admission** heuristic (:func:`greedy_admission`),
  which is the classical density-ordered accept-if-still-feasible rule;
* :func:`is_underloaded` — the paper's underload condition for a concrete
  instance (every released job can be completed), i.e. the premise of
  Theorem 2.
"""

from __future__ import annotations

import logging
from typing import Callable, Sequence

from repro.capacity.base import CapacityFunction
from repro.core.edf import EDFScheduler
from repro.errors import InvalidInstanceError
from repro.sim.engine import simulate
from repro.sim.job import Job
from repro.sim.metrics import SimulationResult

__all__ = [
    "edf_result",
    "is_feasible",
    "is_underloaded",
    "optimal_offline_value",
    "greedy_admission",
]

logger = logging.getLogger(__name__)


def edf_result(
    jobs: Sequence[Job],
    capacity: CapacityFunction,
    *,
    validate: bool = False,
) -> SimulationResult:
    """Run (capacity-oblivious) EDF over the instance and return the result."""
    return simulate(jobs, capacity, EDFScheduler(), validate=validate)


def is_feasible(jobs: Sequence[Job], capacity: CapacityFunction) -> bool:
    """Can *all* jobs meet their deadlines under some preemptive schedule?

    Exact: EDF is optimal for feasibility on a single preemptive processor,
    a property preserved under the stretch transformation, so simulating
    EDF decides the question.
    """
    if not jobs:
        return True
    return edf_result(jobs, capacity).n_completed == len(jobs)


def is_underloaded(jobs: Sequence[Job], capacity: CapacityFunction) -> bool:
    """The paper's underload condition for this instance: there exists an
    offline schedule finishing every job by its deadline."""
    return is_feasible(jobs, capacity)


def optimal_offline_value(
    jobs: Sequence[Job],
    capacity: CapacityFunction,
    *,
    max_jobs: int = 20,
    return_set: bool = False,
):
    """Exact clairvoyant optimum by branch-and-bound over job subsets.

    The optimal offline scheduler completes some subset ``S`` of jobs and
    (w.l.o.g.) runs EDF on ``S``; the optimum is the maximum total value
    over feasible subsets.  Jobs are branched in descending value order;
    a branch is cut when (a) including the job makes the chosen set
    infeasible (monotone: all supersets stay infeasible), or (b) the chosen
    value plus all remaining value cannot beat the incumbent.

    Parameters
    ----------
    max_jobs:
        Hard cap guarding against accidental exponential blow-ups; raise it
        explicitly for bigger instances if you have the patience.
    return_set:
        When true, return ``(value, frozenset_of_jids)`` instead of the
        bare value.
    """
    if len(jobs) > max_jobs:
        raise InvalidInstanceError(
            f"optimal_offline_value is exponential; got {len(jobs)} jobs "
            f"with max_jobs={max_jobs} (raise max_jobs to force)"
        )
    order = sorted(jobs, key=lambda j: (-j.value, j.jid))
    suffix_value = [0.0] * (len(order) + 1)
    for i in range(len(order) - 1, -1, -1):
        suffix_value[i] = suffix_value[i + 1] + order[i].value

    best_value = 0.0
    best_set: frozenset[int] = frozenset()

    def descend(i: int, chosen: list[Job], value: float) -> None:
        nonlocal best_value, best_set
        if value > best_value:
            best_value = value
            best_set = frozenset(j.jid for j in chosen)
        if i == len(order) or value + suffix_value[i] <= best_value:
            return
        job = order[i]
        chosen.append(job)
        if is_feasible(chosen, capacity):
            descend(i + 1, chosen, value + job.value)
        chosen.pop()
        descend(i + 1, chosen, value)

    descend(0, [], 0.0)
    if return_set:
        return best_value, best_set
    return best_value


def greedy_admission(
    jobs: Sequence[Job],
    capacity: CapacityFunction,
    *,
    key: Callable[[Job], tuple] | None = None,
) -> tuple[float, list[Job]]:
    """Polynomial heuristic: scan jobs in priority order (default: value
    density descending), admit each if the admitted set stays feasible.

    Returns ``(total admitted value, admitted jobs)``.  This is the natural
    clairvoyant heuristic a practitioner would deploy; the benchmarks use
    it as a scalable stand-in for the optimum on large instances.
    """
    if key is None:
        key = lambda job: (-job.density, job.jid)  # noqa: E731
    admitted: list[Job] = []
    for job in sorted(jobs, key=key):
        admitted.append(job)
        if not is_feasible(admitted, capacity):
            admitted.pop()
    return sum(j.value for j in admitted), admitted
