"""Unit tests for the paper's Poisson workload generator."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.sim import importance_ratio
from repro.workload import PoissonWorkload


class TestConstruction:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(lam=0.0, horizon=10.0),
            dict(lam=1.0, horizon=0.0),
            dict(lam=1.0, horizon=10.0, workload_mean=0.0),
            dict(lam=1.0, horizon=10.0, density_range=(0.0, 7.0)),
            dict(lam=1.0, horizon=10.0, density_range=(7.0, 1.0)),
            dict(lam=1.0, horizon=10.0, c_lower=0.0),
            dict(lam=1.0, horizon=10.0, deadline_slack=0.0),
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(InvalidInstanceError):
            PoissonWorkload(**kwargs)

    def test_paper_defaults(self):
        wl = PoissonWorkload(lam=6.0, horizon=2000.0 / 6.0)
        assert wl.importance_ratio_bound == pytest.approx(7.0)
        assert wl.expected_jobs == pytest.approx(2000.0)


class TestGeneration:
    def test_deterministic_given_seed(self):
        wl = PoissonWorkload(lam=5.0, horizon=50.0)
        assert wl.generate(123) == wl.generate(123)

    def test_different_seeds_differ(self):
        wl = PoissonWorkload(lam=5.0, horizon=50.0)
        assert wl.generate(1) != wl.generate(2)

    def test_sorted_by_release_with_sequential_ids(self):
        jobs = PoissonWorkload(lam=5.0, horizon=50.0).generate(7)
        releases = [j.release for j in jobs]
        assert releases == sorted(releases)
        assert [j.jid for j in jobs] == list(range(len(jobs)))

    def test_all_jobs_zero_conservative_laxity(self):
        """The paper's deadline rule: d − r = p / c̲ exactly."""
        jobs = PoissonWorkload(lam=5.0, horizon=50.0, c_lower=2.0).generate(11)
        for job in jobs:
            assert job.relative_deadline == pytest.approx(job.workload / 2.0)
            assert job.is_individually_admissible(2.0)

    def test_deadline_slack_loosens(self):
        jobs = PoissonWorkload(
            lam=5.0, horizon=50.0, deadline_slack=3.0
        ).generate(13)
        for job in jobs:
            assert job.relative_deadline == pytest.approx(3.0 * job.workload)

    def test_density_within_range(self):
        jobs = PoissonWorkload(lam=20.0, horizon=50.0).generate(17)
        for job in jobs:
            assert 1.0 - 1e-9 <= job.density <= 7.0 + 1e-9
        assert importance_ratio(jobs) <= 7.0 + 1e-9

    def test_job_count_statistics(self):
        wl = PoissonWorkload(lam=10.0, horizon=100.0)
        counts = [len(wl.generate(seed)) for seed in range(30)]
        mean = np.mean(counts)
        # Poisson(1000): mean 1000, sd ~31.6; 30 samples -> se ~5.8.
        assert abs(mean - 1000.0) < 30.0

    def test_workload_mean_statistics(self):
        jobs = PoissonWorkload(lam=40.0, horizon=100.0).generate(19)
        mean = np.mean([j.workload for j in jobs])
        assert abs(mean - 1.0) < 0.1

    def test_accepts_generator_instance(self):
        wl = PoissonWorkload(lam=5.0, horizon=20.0)
        rng = np.random.default_rng(5)
        jobs = wl.generate(rng)
        assert jobs  # consumed from the provided generator
