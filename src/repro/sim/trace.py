"""Execution traces: what ran when, and validation of schedule legality.

Every simulation records a :class:`ScheduleTrace` — the sequence of run
segments ``(start, end, job, work_done)`` plus per-job outcomes.  The trace
is the ground truth for metrics, for the value-versus-time series of the
paper's Figure 1, and for the *validator*, which independently re-checks
that the engine and scheduler together produced a legal schedule:

* segments do not overlap (single processor);
* work done in a segment equals the capacity integral over it
  (work conservation — no job runs faster than ``c(t)``);
* a completed job received exactly its workload, entirely within
  ``[release, deadline]``;
* no job ran before its release or after its deadline.

Running the validator after every test simulation is the repository's main
defence against subtle engine bugs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.capacity.base import CapacityFunction
from repro.errors import SimulationError
from repro.sim.job import Job, JobStatus

__all__ = ["RunSegment", "ScheduleTrace"]

_EPS = 1e-6


@dataclass(frozen=True)
class RunSegment:
    """A maximal interval during which one job ran uninterrupted."""

    start: float
    end: float
    jid: int
    work: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ScheduleTrace:
    """Chronological record of one simulation run."""

    segments: List[RunSegment] = field(default_factory=list)
    #: job id -> final status
    outcomes: Dict[int, JobStatus] = field(default_factory=dict)
    #: job id -> completion time (only completed jobs)
    completion_times: Dict[int, float] = field(default_factory=dict)
    #: (time, value) points: cumulative value after each completion
    value_points: List[tuple[float, float]] = field(default_factory=list)
    #: job id -> workload progress destroyed by execution faults (a killed
    #: job may have to redo work it already received; that work *was*
    #: legally executed, so the validator budgets for it)
    lost_work: Dict[int, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording API (used by the engine)
    # ------------------------------------------------------------------
    def add_segment(self, start: float, end: float, jid: int, work: float) -> None:
        if end < start - _EPS:
            raise SimulationError(f"segment ends before it starts: [{start}, {end}]")
        if end - start <= 0.0:
            return  # zero-length segments carry no information
        # Merge with the previous segment when the same job continues
        # seamlessly (keeps traces compact across same-time event cascades).
        if self.segments:
            last = self.segments[-1]
            if last.jid == jid and abs(last.end - start) <= _EPS:
                self.segments[-1] = RunSegment(
                    last.start, end, jid, last.work + work
                )
                return
        self.segments.append(RunSegment(start, end, jid, work))

    def record_lost_work(self, jid: int, amount: float) -> None:
        """Record that an execution fault destroyed ``amount`` units of
        ``jid``'s already-performed progress (kill with partial retention)."""
        if amount <= 0.0:
            return
        self.lost_work[jid] = self.lost_work.get(jid, 0.0) + amount

    def record_outcome(self, job: Job, status: JobStatus, t: float) -> None:
        self.outcomes[job.jid] = status
        if status is JobStatus.COMPLETED:
            self.completion_times[job.jid] = t
            prev = self.value_points[-1][1] if self.value_points else 0.0
            self.value_points.append((t, prev + job.value))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def work_by_job(self) -> Dict[int, float]:
        acc: Dict[int, float] = {}
        for seg in self.segments:
            acc[seg.jid] = acc.get(seg.jid, 0.0) + seg.work
        return acc

    def busy_time(self) -> float:
        """Total time the processor was executing some job."""
        return sum(seg.duration for seg in self.segments)

    def total_work(self) -> float:
        """Total workload executed across all jobs."""
        return sum(seg.work for seg in self.segments)

    def value_series(self, horizon: float) -> list[tuple[float, float]]:
        """Cumulative-value step function as ``(t, value)`` points,
        anchored at ``(0, 0)`` and extended to ``(horizon, final)`` —
        exactly the series plotted in the paper's Figure 1."""
        pts = [(0.0, 0.0)]
        pts.extend(self.value_points)
        final = pts[-1][1]
        if pts[-1][0] < horizon:
            pts.append((horizon, final))
        return pts

    def value_at(self, t: float) -> float:
        """Cumulative value accrued by time ``t``."""
        val = 0.0
        for when, cum in self.value_points:
            if when <= t:
                val = cum
            else:
                break
        return val

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        jobs: Sequence[Job],
        capacity: CapacityFunction,
        *,
        tol: float = 1e-6,
    ) -> None:
        """Re-check schedule legality from first principles.

        Raises :class:`SimulationError` on the first violation found.
        """
        by_id = {job.jid: job for job in jobs}

        prev_end = -math.inf
        for seg in self.segments:
            if seg.start < prev_end - tol:
                raise SimulationError(
                    f"overlapping segments: segment starting at {seg.start} "
                    f"begins before previous end {prev_end}"
                )
            prev_end = seg.end
            job = by_id.get(seg.jid)
            if job is None:
                raise SimulationError(f"segment for unknown job {seg.jid}")
            if seg.start < job.release - tol:
                raise SimulationError(
                    f"job {seg.jid} ran at {seg.start} before release {job.release}"
                )
            if seg.end > job.deadline + tol:
                raise SimulationError(
                    f"job {seg.jid} ran until {seg.end} past deadline {job.deadline}"
                )
            expected = capacity.integrate(seg.start, seg.end)
            scale = max(1.0, abs(expected))
            if abs(expected - seg.work) > tol * scale:
                raise SimulationError(
                    f"work conservation violated for job {seg.jid} on "
                    f"[{seg.start}, {seg.end}]: recorded {seg.work}, "
                    f"capacity integral {expected}"
                )

        work = self.work_by_job()
        for jid, status in self.outcomes.items():
            job = by_id.get(jid)
            if job is None:
                raise SimulationError(f"outcome for unknown job {jid}")
            done = work.get(jid, 0.0)
            # Execution faults (job kills) can destroy progress a job
            # already legally received; that work was really executed, so
            # the per-job budget is workload + lost.
            budget = job.workload + self.lost_work.get(jid, 0.0)
            if status is JobStatus.COMPLETED:
                if abs(done - budget) > tol * max(1.0, budget):
                    raise SimulationError(
                        f"job {jid} marked completed with work {done} != "
                        f"workload-plus-lost {budget}"
                    )
                tdone = self.completion_times[jid]
                if tdone > job.deadline + tol:
                    raise SimulationError(
                        f"job {jid} completed at {tdone} past deadline "
                        f"{job.deadline}"
                    )
            else:
                if done > budget + tol * max(1.0, budget):
                    raise SimulationError(
                        f"job {jid} executed {done} exceeding workload "
                        f"{budget} yet not completed"
                    )
