"""The adaptive adversary behind the competitive-ratio upper bounds.

Theorem 1(2)/3(1)'s upper bound ``1/(1+√k)²`` comes from an *adversary
argument* (Baruah et al. / Koren–Shasha): whenever the online scheduler is
about to bank a job's value, the adversary releases a conflicting
zero-laxity job worth slightly more than the scheduler's abandonment
threshold, forcing it to either discard accrued work or forfeit the new
value; the escalation is capped by the importance-ratio bound ``k``.

Our engine takes the job set upfront, but every shipped scheduler is
*deterministic*, so the adaptive game is realised by **restart-replay**:
after each probe the simulation is replayed from scratch with the
instance-so-far, the adversary observes which job the scheduler is about
to complete, and injects the next bait just before that instant.  This is
exactly the classical adversary's information model (it reacts to the
online algorithm's published behaviour, never to the future).

:class:`EscalationAdversary` measures the realized online/offline ratio of
the resulting game.  It is a *demonstration* adversary — tuned to the
Dover family's value test, not re-deriving the tight lower-bound
construction — so the measured ratio is an upper bound certificate for
the specific scheduler, expected to land between the scheduler's guarantee
and 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.capacity.constant import ConstantCapacity
from repro.core.offline import optimal_offline_value
from repro.errors import InvalidInstanceError
from repro.sim.engine import simulate
from repro.sim.job import Job
from repro.sim.metrics import SimulationResult
from repro.sim.scheduler import Scheduler

__all__ = ["AdversaryOutcome", "EscalationAdversary"]


@dataclass(frozen=True)
class AdversaryOutcome:
    """Result of one adversary game."""

    jobs: tuple[Job, ...]
    online_value: float
    offline_value: float
    rounds: int

    @property
    def ratio(self) -> float:
        return self.online_value / self.offline_value if self.offline_value else 1.0


class EscalationAdversary:
    """Bait-and-switch escalation against a deterministic scheduler.

    Parameters
    ----------
    scheduler_factory:
        Builds a fresh scheduler instance per replay (schedulers hold
        per-run state).
    k:
        Importance-ratio budget: bait value densities stay within
        ``[1, k]``.
    escalation:
        Multiplicative value step between consecutive baits.  The game is
        most damaging when each bait *just* clears the victim's abandonment
        threshold; for the Dover family that is the β threshold, so pass
        ``beta * 1.05`` or so.  Values <= 1 are rejected.
    workload:
        Bait workload (all baits are identical in size; the escalation is
        purely in value).
    epsilon:
        How long before the observed completion the next bait lands.
        Must be well under ``workload / rate``.
    rate:
        Constant processor rate of the game (the classical setting).
    max_rounds:
        Hard cap on the escalation length (also keeps the exact offline
        optimum tractable).
    """

    def __init__(
        self,
        scheduler_factory: Callable[[], Scheduler],
        k: float,
        *,
        escalation: float,
        workload: float = 1.0,
        epsilon: float = 0.05,
        rate: float = 1.0,
        max_rounds: int = 16,
    ) -> None:
        if k < 1.0:
            raise InvalidInstanceError(f"k must be >= 1, got {k!r}")
        if escalation <= 1.0:
            raise InvalidInstanceError(
                f"escalation must exceed 1, got {escalation!r}"
            )
        if not 0.0 < epsilon < workload / rate:
            raise InvalidInstanceError(
                f"epsilon must lie in (0, workload/rate), got {epsilon!r}"
            )
        if max_rounds < 1 or max_rounds > 18:
            raise InvalidInstanceError(
                "max_rounds must be in [1, 18] (exact offline optimum is "
                "exponential)"
            )
        self._factory = scheduler_factory
        self._k = float(k)
        self._escalation = float(escalation)
        self._workload = float(workload)
        self._epsilon = float(epsilon)
        self._rate = float(rate)
        self._max_rounds = int(max_rounds)

    # ------------------------------------------------------------------
    def _bait(self, jid: int, release: float, value: float) -> Job:
        return Job(
            jid=jid,
            release=release,
            workload=self._workload,
            deadline=release + self._workload / self._rate,  # zero laxity
            value=value,
        )

    def _replay(self, jobs: Sequence[Job]) -> SimulationResult:
        return simulate(list(jobs), ConstantCapacity(self._rate), self._factory())

    def play(self) -> AdversaryOutcome:
        """Run the game and measure the realized competitive ratio."""
        max_value = self._k * self._workload  # density cap
        jobs = [self._bait(0, 0.0, self._workload)]  # density 1 opener
        value = self._workload

        rounds = 1
        while rounds < self._max_rounds:
            result = self._replay(jobs)
            if not result.trace.value_points:
                break  # the scheduler banks nothing; escalating won't help
            # The adversary strikes at the scheduler's *first* banked value:
            # a bait landing just before it forces the abandonment dilemma.
            first_completion = result.trace.value_points[0][0]
            release = first_completion - self._epsilon
            if release <= (jobs[-1].release if jobs else 0.0):
                break  # cannot strike earlier than the previous bait
            value = min(value * self._escalation, max_value)
            jobs.append(self._bait(rounds, release, value))
            rounds += 1
            if value >= max_value:
                break  # budget exhausted; one final replay below

        final = self._replay(jobs)
        offline = optimal_offline_value(
            jobs, ConstantCapacity(self._rate), max_jobs=self._max_rounds + 1
        )
        return AdversaryOutcome(
            jobs=tuple(jobs),
            online_value=final.value,
            offline_value=offline,
            rounds=rounds,
        )
