"""Replay and (de)serialisation of concrete instances.

A recorded instance — jobs plus (optionally) the realized capacity path —
can be saved to JSON and replayed later, which is how the repository pins
down regression fixtures and how a user would feed real production traces
into the schedulers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.capacity.piecewise import PiecewiseConstantCapacity
from repro.errors import InvalidInstanceError
from repro.sim.job import Job
from repro.workload.base import WorkloadGenerator

__all__ = [
    "ReplayWorkload",
    "jobs_to_records",
    "jobs_from_records",
    "save_instance",
    "load_instance",
]


class ReplayWorkload(WorkloadGenerator):
    """A generator that always returns the same recorded job list."""

    def __init__(self, jobs: Sequence[Job]) -> None:
        self._jobs = sorted(jobs, key=lambda j: (j.release, j.jid))

    def generate(self, rng: np.random.Generator | int | None = None) -> list[Job]:
        return list(self._jobs)


def jobs_to_records(jobs: Sequence[Job]) -> list[dict]:
    """Serialise jobs to plain dict records (JSON-safe)."""
    return [
        {
            "jid": job.jid,
            "release": job.release,
            "workload": job.workload,
            "deadline": job.deadline,
            "value": job.value,
        }
        for job in jobs
    ]


def jobs_from_records(records: Sequence[dict]) -> list[Job]:
    """Inverse of :func:`jobs_to_records` (validates through :class:`Job`)."""
    try:
        return [
            Job(
                jid=int(rec["jid"]),
                release=float(rec["release"]),
                workload=float(rec["workload"]),
                deadline=float(rec["deadline"]),
                value=float(rec["value"]),
            )
            for rec in records
        ]
    except KeyError as exc:  # re-raise with context
        raise InvalidInstanceError(f"job record missing field: {exc}") from exc


def save_instance(
    path: str | Path,
    jobs: Sequence[Job],
    capacity: PiecewiseConstantCapacity | None = None,
) -> None:
    """Write an instance (and optionally its capacity path) to JSON."""
    doc: dict = {"jobs": jobs_to_records(jobs)}
    if capacity is not None:
        doc["capacity"] = {
            "breakpoints": list(capacity.breakpoints),
            "rates": list(capacity.rates),
            "lower": capacity.lower,
            "upper": capacity.upper,
        }
    Path(path).write_text(json.dumps(doc, indent=2))


def load_instance(
    path: str | Path,
) -> tuple[list[Job], PiecewiseConstantCapacity | None]:
    """Read an instance written by :func:`save_instance`."""
    doc = json.loads(Path(path).read_text())
    jobs = jobs_from_records(doc["jobs"])
    capacity = None
    if "capacity" in doc:
        cap = doc["capacity"]
        capacity = PiecewiseConstantCapacity(
            cap["breakpoints"],
            cap["rates"],
            lower=cap.get("lower"),
            upper=cap.get("upper"),
        )
    return jobs, capacity
