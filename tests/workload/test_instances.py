"""Unit tests for the adversarial/constructed instance families."""

import numpy as np
import pytest

from repro.capacity import PiecewiseConstantCapacity, TwoStateMarkovCapacity
from repro.core import (
    EDFScheduler,
    VDoverScheduler,
    all_individually_admissible,
    greedy_admission,
    is_feasible,
)
from repro.errors import InvalidInstanceError
from repro.sim import simulate
from repro.workload import feasible_instance, inadmissible_trap, locke_trap


class TestInadmissibleTrap:
    def test_structure(self):
        jobs, cap = inadmissible_trap(10)
        assert len(jobs) == 12  # trap + 10 unit jobs + rescue
        trap = jobs[0]
        assert not trap.is_individually_admissible(cap.lower)
        assert all(
            j.is_individually_admissible(cap.lower) for j in jobs[1:]
        )

    def test_ratio_decays(self):
        """Theorem 3(3) realised: measured ratio shrinks like 1/n."""
        ratios = []
        for n in (5, 10, 20):
            jobs, cap = inadmissible_trap(n)
            online = simulate(jobs, cap, VDoverScheduler(k=float(n * n)))
            offline, _ = greedy_admission(jobs, cap)
            ratios.append(online.value / offline)
        assert ratios[0] > ratios[1] > ratios[2]
        assert ratios[-1] < 0.06

    def test_removing_trap_restores_value(self):
        """Without the inadmissible job the same stream is harvested."""
        jobs, cap = inadmissible_trap(10)
        clean = [j for j in jobs if j.is_individually_admissible(cap.lower)]
        online = simulate(clean, cap, VDoverScheduler(k=7.0))
        assert online.n_completed == len(clean)

    def test_rejects_bad_n(self):
        with pytest.raises(InvalidInstanceError):
            inadmissible_trap(0)

    def test_declared_upper_validated(self):
        with pytest.raises(InvalidInstanceError):
            inadmissible_trap(5, declared_upper=0.5)


class TestLockeTrap:
    def test_edf_collapses_vdover_does_not(self):
        jobs, cap = locke_trap(10)
        edf = simulate(jobs, cap, EDFScheduler(), validate=True)
        vdover = simulate(jobs, cap, VDoverScheduler(k=300.0), validate=True)
        assert edf.value < 1.0          # only the worthless shorts
        assert vdover.value == pytest.approx(10.0)  # the big job
        assert vdover.value > 10 * edf.value

    def test_all_admissible(self):
        jobs, cap = locke_trap(8)
        assert all_individually_admissible(jobs, cap.lower)

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidInstanceError):
            locke_trap(1)
        with pytest.raises(InvalidInstanceError):
            locke_trap(5, short_value=0.0)


class TestFeasibleInstance:
    def test_always_feasible_constant(self):
        cap = PiecewiseConstantCapacity([0.0], [1.0])
        for seed in range(5):
            jobs = feasible_instance(cap, n=8, horizon=40.0, rng=seed)
            assert is_feasible(jobs, cap)

    def test_always_feasible_varying(self):
        for seed in range(5):
            cap = TwoStateMarkovCapacity(1.0, 10.0, mean_sojourn=10.0, rng=seed)
            jobs = feasible_instance(cap, n=10, horizon=60.0, rng=seed + 100)
            assert is_feasible(jobs, cap)

    def test_workloads_match_windows(self):
        cap = PiecewiseConstantCapacity([0.0, 10.0], [1.0, 3.0])
        jobs = feasible_instance(
            cap, n=4, horizon=20.0, rng=1, max_release_lead=0.0, max_deadline_slack=0.0
        )
        # With zero lead/slack the jobs tile the horizon's work exactly.
        assert sum(j.workload for j in jobs) == pytest.approx(
            cap.integrate(0.0, 20.0)
        )

    def test_rejects_bad_params(self):
        cap = PiecewiseConstantCapacity([0.0], [1.0])
        with pytest.raises(InvalidInstanceError):
            feasible_instance(cap, n=0, horizon=10.0)
        with pytest.raises(InvalidInstanceError):
            feasible_instance(cap, n=3, horizon=0.0)
