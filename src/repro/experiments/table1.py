"""Experiment E1: the paper's Table I.

Setup (Section IV): Poisson arrivals with rate λ sweeping
``{4, 5, 6, 7, 8, 10, 12}``, exponential workloads (mean 1), relative
deadline ``workload / c̲`` (zero conservative laxity), value density
U[1, 7] (k = 7), horizon ``H = 2000/λ`` (2000 expected jobs), capacity a
two-state CTMC over {1, 35} with mean sojourn ``H/4``.

Reported metric: percentage of the total generated value captured, averaged
over Monte-Carlo runs — Dover at each ĉ ∈ {1, 10.5, 24.5, 35}, V-Dover, and
V-Dover's relative gain over the *best* Dover column (the paper bolds the
best Dover per row and reports the gain against it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.stats import Summary, paired_gain_percent, summarize
from repro.errors import ExperimentError
from repro.analysis.tables import render_table
from repro.core.dover import DoverScheduler
from repro.core.vdover import VDoverScheduler
from repro.experiments.runner import (
    FailedReplication,
    MonteCarloRunner,
    PaperInstanceFactory,
    SchedulerSpec,
)
from repro.workload.poisson import PoissonWorkload

__all__ = ["Table1Config", "Table1Row", "Table1Result", "run_table1"]

VDOVER_NAME = "V-Dover"


def _dover_name(c_hat: float) -> str:
    return f"Dover(c={c_hat:g})"


@dataclass(frozen=True)
class Table1Config:
    """Knobs of the Table-I reproduction (defaults = the paper's values,
    except the Monte-Carlo count, which the paper sets to 800)."""

    lambdas: Sequence[float] = (4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0)
    c_hats: Sequence[float] = (1.0, 10.5, 24.5, 35.0)
    k: float = 7.0
    low: float = 1.0
    high: float = 35.0
    expected_jobs: float = 2000.0
    workload_mean: float = 1.0
    n_runs: int = 100
    seed: int = 2011
    workers: int | None = None

    def horizon(self, lam: float) -> float:
        return self.expected_jobs / lam

    def specs(self) -> list[SchedulerSpec]:
        specs = [
            SchedulerSpec(_dover_name(c), DoverScheduler, {"k": self.k, "c_hat": c})
            for c in self.c_hats
        ]
        specs.append(SchedulerSpec(VDOVER_NAME, VDoverScheduler, {"k": self.k}))
        return specs


@dataclass
class Table1Row:
    """One λ row: mean captured-value percentages and the paired gain."""

    lam: float
    dover_percent: dict[float, Summary]  # c_hat -> summary (percent)
    vdover_percent: Summary
    best_c_hat: float
    gain_percent: Summary  # paired V-Dover vs best-Dover relative gain

    @property
    def best_dover_percent(self) -> Summary:
        return self.dover_percent[self.best_c_hat]


@dataclass
class Table1Result:
    config: Table1Config
    rows: list[Table1Row] = field(default_factory=list)
    #: failure metadata (schema v2): λ -> replications lost to crash/timeout
    failures: dict[float, list[FailedReplication]] = field(default_factory=dict)

    @property
    def n_failed(self) -> int:
        return sum(len(f) for f in self.failures.values())

    def render(self) -> str:
        headers = (
            ["lambda"]
            + [f"Dover c={c:g}" for c in self.config.c_hats]
            + ["V-Dover", "best c", "Gain %"]
        )
        body = []
        for row in self.rows:
            cells: list[object] = [f"{row.lam:g}"]
            for c in self.config.c_hats:
                mark = "*" if c == row.best_c_hat else " "
                cells.append(f"{row.dover_percent[c].mean:7.3f}{mark}")
            cells.append(f"{row.vdover_percent.mean:7.3f}")
            cells.append(f"{row.best_c_hat:g}")
            cells.append(f"{row.gain_percent.mean:+.2f}")
            body.append(cells)
        rendered = render_table(
            headers,
            body,
            title=(
                f"Table I — % of generated value captured "
                f"(n={self.config.n_runs} MC runs; * = best Dover)"
            ),
        )
        if self.n_failed:
            rendered += (
                f"\n[!] {self.n_failed} replication(s) failed and were "
                f"excluded; see result.failures for structured records"
            )
        return rendered


def run_table1(
    config: Table1Config | None = None,
    *,
    checkpoint_dir: "str | None" = None,
    timeout: float | None = None,
    max_retries: int = 0,
    backoff: float = 0.0,
) -> Table1Result:
    """Reproduce Table I under ``config`` (paper defaults).

    Resilience knobs (docs/ROBUSTNESS.md): with ``checkpoint_dir`` every
    λ-row checkpoints each finished replication to
    ``<dir>/table1_lam<λ>.ckpt.jsonl`` and an interrupted run resumes from
    completed seeds with bit-identical summaries; ``timeout`` /
    ``max_retries`` / ``backoff`` bound each replication's wall clock and
    retry transient failures.  Replications that still fail are *excluded*
    from the averages and reported as structured records in
    ``result.failures`` instead of aborting the whole table.
    """
    config = config or Table1Config()
    out = Table1Result(config=config)
    specs = config.specs()
    for i, lam in enumerate(config.lambdas):
        horizon = config.horizon(lam)
        factory = PaperInstanceFactory(
            workload=PoissonWorkload(
                lam=lam,
                horizon=horizon,
                workload_mean=config.workload_mean,
                density_range=(1.0, config.k),
                c_lower=config.low,
            ),
            low=config.low,
            high=config.high,
            sojourn=horizon / 4.0,
        )
        runner = MonteCarloRunner(factory, specs)
        checkpoint = None
        if checkpoint_dir is not None:
            checkpoint = Path(checkpoint_dir) / f"table1_lam{lam:g}.ckpt.jsonl"
        report = runner.run_report(
            config.n_runs,
            seed=config.seed + i,
            workers=config.workers,
            timeout=timeout,
            max_retries=max_retries,
            backoff=backoff,
            checkpoint=checkpoint,
        )
        if report.failures:
            out.failures[lam] = report.failure_records()
        outcomes = report.survivors
        if not outcomes:
            raise ExperimentError(
                f"Table I row λ={lam:g}: every replication failed "
                f"({report.failure_records()[0]})"
            )

        normalized = {
            spec.name: np.array([o.normalized(spec.name) for o in outcomes])
            for spec in specs
        }
        dover_percent = {
            c: summarize(100.0 * normalized[_dover_name(c)]) for c in config.c_hats
        }
        best_c = max(config.c_hats, key=lambda c: dover_percent[c].mean)
        gain = paired_gain_percent(
            normalized[VDOVER_NAME], normalized[_dover_name(best_c)]
        )
        out.rows.append(
            Table1Row(
                lam=lam,
                dover_percent=dover_percent,
                vdover_percent=summarize(100.0 * normalized[VDOVER_NAME]),
                best_c_hat=best_c,
                gain_percent=gain,
            )
        )
    return out
