"""Cluster extension: secondary jobs dispatched across many servers.

The paper closes its model section noting the single-server policy extends
"to the cloud-wise scheduling of secondary user demands on unsold cloud
instances".  This example builds that extension: a heterogeneous fleet of
servers (each with its own primary load and hence its own residual
capacity process) behind an online dispatcher, every server running
V-Dover locally.

Three dispatchers are compared on the same job stream:

* round-robin         — no information;
* least-work          — routes to the smallest conservative backlog;
* best-fit            — routes to the server leaving the job most laxity.

Run:  python examples/cluster_dispatch.py [seed]
"""

import sys

import numpy as np

from repro.analysis import render_table
from repro.cloud import (
    BestFitDispatcher,
    LeastWorkDispatcher,
    PrimaryOccupancyModel,
    RoundRobinDispatcher,
    run_cluster,
)
from repro.core import VDoverScheduler
from repro.workload import PoissonWorkload


def main(seed: int = 3) -> None:
    horizon = 100.0
    # A heterogeneous fleet: big busy servers and small quiet ones.
    fleet = [
        PrimaryOccupancyModel(16.0, 2.0, arrival_rate=5.0, mean_holding=4.0),
        PrimaryOccupancyModel(16.0, 2.0, arrival_rate=5.0, mean_holding=4.0),
        PrimaryOccupancyModel(8.0, 1.0, arrival_rate=1.0, mean_holding=3.0),
        PrimaryOccupancyModel(8.0, 1.0, arrival_rate=1.0, mean_holding=3.0),
    ]
    root = np.random.SeedSequence(seed)
    cap_seeds, job_seed = root.spawn(2)
    capacities = [
        model.sample_residual(horizon * 2.0, np.random.default_rng(s))
        for model, s in zip(fleet, cap_seeds.spawn(len(fleet)))
    ]

    # One cluster-wide secondary stream, sized against the *total* floor.
    total_floor = sum(c.lower for c in capacities)
    workload = PoissonWorkload(
        lam=12.0, horizon=horizon, c_lower=total_floor, deadline_slack=4.0
    )
    jobs = workload.generate(np.random.default_rng(job_seed))
    offered = sum(j.value for j in jobs)
    print(
        f"{len(jobs)} secondary jobs over {horizon:g}h across "
        f"{len(fleet)} servers (offered value {offered:.1f})\n"
    )

    rows = []
    for dispatcher in (RoundRobinDispatcher(), LeastWorkDispatcher(), BestFitDispatcher()):
        result = run_cluster(
            jobs, capacities, lambda: VDoverScheduler(k=7.0), dispatcher
        )
        spread = [len([1 for s in result.assignment.values() if s == i]) for i in range(len(fleet))]
        rows.append(
            [
                dispatcher.name,
                result.value,
                f"{100 * result.normalized_value:.1f}%",
                result.n_completed,
                "/".join(map(str, spread)),
            ]
        )
    print(
        render_table(
            ["dispatcher", "value", "% of offered", "completed", "jobs per server"],
            rows,
            title="Cluster dispatch policies (all servers run V-Dover)",
            float_fmt="{:.1f}",
        )
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
