"""Incremental Monte-Carlo checkpoints (experiments store, schema v2).

Long sweeps (the paper's Table I is 7 λ-rows × 800 replications) used to be
all-or-nothing: a crash at replication 799 lost hours.  The checkpoint
store makes a run *resumable*: every finished replication is appended to a
JSON-lines file the moment it completes, and a restarted run replays the
file, re-executes only what is missing, and — because every replication's
RNG derives from ``SeedSequence(seed).spawn(n_runs)[index]`` independently
of execution order — produces **bit-identical** results to an uninterrupted
run.

File layout (one JSON document per line)::

    {"schema": 2, "kind": "mc_checkpoint", "seed": ..., "n_runs": ...,
     "fingerprint": "..."}                      # header
    {"index": 3, "outcome": {...}}              # completed replication
    {"index": 5, "failed": {...}}               # failure metadata
    ...

* The **fingerprint** hashes the run configuration (seed, run count,
  scheduler recipes, instance factory); resuming with a different
  configuration raises :class:`~repro.errors.CheckpointError` instead of
  silently mixing incompatible replications.
* **Failures are metadata, not results**: a replication recorded as failed
  is re-attempted on resume (its failure may have been transient), and the
  latest record per index wins.
* Every record line carries a CRC32 (``"crc"``) over its own payload;
  records written before checksums existed (no ``"crc"`` key) are
  accepted as legacy.
* Loading tolerates a truncated final line (the signature of a crash
  mid-append).  A corrupt record *mid-file* (bad JSON or a CRC mismatch
  — bit rot, not a torn append) is **skipped and reported** via
  :attr:`CheckpointStore.corrupt_records`: its replication simply
  re-runs, instead of the whole resume being refused.  Only a corrupt
  *header* still refuses — without it nothing in the file can be
  attributed to a run.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import IO, List, Mapping, Tuple

from repro.errors import CheckpointError
from repro.experiments.runner import FailedReplication, ReplicationOutcome

__all__ = ["CheckpointStore", "run_fingerprint"]

CHECKPOINT_SCHEMA = 2
_KIND = "mc_checkpoint"


def _record_crc(doc: Mapping) -> int:
    """CRC32 over a record's canonical JSON form, ``"crc"`` excluded."""
    body = {k: v for k, v in doc.items() if k != "crc"}
    return zlib.crc32(json.dumps(body, sort_keys=True).encode()) & 0xFFFFFFFF


def run_fingerprint(factory, specs, seed: int, n_runs: int) -> str:
    """A stable digest of everything that determines the replication
    stream: the instance factory, the scheduler recipes, the master seed
    and the run count."""
    doc = {
        "factory": repr(factory),
        "specs": [
            [
                spec.name,
                f"{spec.cls.__module__}.{spec.cls.__qualname__}",
                sorted((str(k), repr(v)) for k, v in dict(spec.kwargs).items()),
            ]
            for spec in specs
        ],
        "seed": int(seed),
        "n_runs": int(n_runs),
    }
    blob = json.dumps(doc, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def _outcome_to_dict(outcome: ReplicationOutcome) -> dict:
    doc = {
        "generated_value": outcome.generated_value,
        "n_jobs": outcome.n_jobs,
        "values": dict(outcome.values),
        "completed": dict(outcome.completed),
        "recovered": outcome.recovered,
    }
    if outcome.metrics is not None:
        # Worker-side observability snapshot (plain JSON already) — kept in
        # the checkpoint so a resumed sweep's merged metrics cover loaded
        # replications too.
        doc["metrics"] = outcome.metrics
    return doc


def _outcome_from_dict(doc: Mapping) -> ReplicationOutcome:
    return ReplicationOutcome(
        generated_value=float(doc["generated_value"]),
        n_jobs=int(doc["n_jobs"]),
        values={str(k): float(v) for k, v in doc["values"].items()},
        completed={str(k): int(v) for k, v in doc["completed"].items()},
        # Absent in checkpoints written before crash recovery existed.
        recovered=int(doc.get("recovered", 0)),
        # Absent in checkpoints written before/without observability.
        metrics=doc.get("metrics"),
    )


def _failure_to_dict(failure: FailedReplication) -> dict:
    doc = {
        "index": failure.index,
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
        "traceback": failure.traceback,
    }
    if failure.trace_tail:
        # JSON-ready trace-event dicts (see TraceSink.tail).
        doc["trace_tail"] = list(failure.trace_tail)
    return doc


def _failure_from_dict(doc: Mapping) -> FailedReplication:
    return FailedReplication(
        index=int(doc["index"]),
        error_type=str(doc["error_type"]),
        message=str(doc["message"]),
        attempts=int(doc["attempts"]),
        traceback=str(doc.get("traceback", "")),
        trace_tail=tuple(doc.get("trace_tail", ())),
    )


class CheckpointStore:
    """Append-only per-replication checkpoint bound to one run fingerprint.

    Open with the header metadata of the run about to execute; if the file
    already exists its header is validated against that metadata and the
    recorded replications become available via :attr:`completed` /
    :attr:`failures`.
    """

    def __init__(
        self, path: str | Path, *, seed: int, n_runs: int, fingerprint: str
    ) -> None:
        self.path = Path(path)
        self.seed = int(seed)
        self.n_runs = int(n_runs)
        self.fingerprint = str(fingerprint)
        self.completed: dict[int, ReplicationOutcome] = {}
        self.failures: dict[int, FailedReplication] = {}
        #: (line number, reason) for every skipped mid-file corrupt record.
        self.corrupt_records: List[Tuple[int, str]] = []
        self._fh: IO[str] | None = None
        if self.path.exists() and self.path.stat().st_size > 0:
            self._load_existing()
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            header = {
                "schema": CHECKPOINT_SCHEMA,
                "kind": _KIND,
                "seed": self.seed,
                "n_runs": self.n_runs,
                "fingerprint": self.fingerprint,
            }
            with self.path.open("w") as fh:
                fh.write(json.dumps(header) + "\n")

    # ------------------------------------------------------------------
    def _load_existing(self) -> None:
        lines = self.path.read_text().splitlines()
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError) as exc:
            raise CheckpointError(f"{self.path}: corrupt checkpoint header") from exc
        if header.get("kind") != _KIND:
            raise CheckpointError(f"{self.path}: not a Monte-Carlo checkpoint")
        if header.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"{self.path}: unsupported checkpoint schema "
                f"{header.get('schema')!r} (expected {CHECKPOINT_SCHEMA})"
            )
        for key, want in (
            ("seed", self.seed),
            ("n_runs", self.n_runs),
            ("fingerprint", self.fingerprint),
        ):
            if header.get(key) != want:
                raise CheckpointError(
                    f"{self.path}: checkpoint belongs to a different run "
                    f"({key}: recorded {header.get(key)!r}, requested {want!r}); "
                    "delete the file or point the run elsewhere"
                )
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines):
                    # A truncated *final* line is the signature of a crash
                    # mid-append: tolerate it and re-run that replication.
                    break
                # An undecodable line *followed by* valid data is bit rot,
                # not a torn append.  The header already proved the file
                # belongs to this run, so losing one record only costs
                # re-running its replication: skip it and report.
                self.corrupt_records.append((lineno, "undecodable JSON"))
                continue
            if "crc" in record and _record_crc(record) != record["crc"]:
                # Decodes fine but fails its own checksum — silent bit
                # rot inside a value.  Same treatment: skip and re-run.
                self.corrupt_records.append((lineno, "CRC mismatch"))
                continue
            index = int(record["index"])
            if not 0 <= index < self.n_runs:
                raise CheckpointError(
                    f"{self.path}: replication index {index} out of range "
                    f"for n_runs={self.n_runs}"
                )
            if "outcome" in record:
                self.completed[index] = _outcome_from_dict(record["outcome"])
                self.failures.pop(index, None)
            elif "failed" in record:
                self.failures[index] = _failure_from_dict(record["failed"])
            # Unknown record kinds are ignored for forward compatibility.

    # ------------------------------------------------------------------
    def _append(self, doc: dict) -> None:
        if self._fh is None:
            self._fh = self.path.open("a")
        doc = dict(doc)
        doc["crc"] = _record_crc(doc)
        self._fh.write(json.dumps(doc) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, index: int, result: ReplicationOutcome | FailedReplication) -> None:
        """Persist one finished replication (or its failure metadata)."""
        if isinstance(result, FailedReplication):
            self.failures[index] = result
            self._append({"index": index, "failed": _failure_to_dict(result)})
        else:
            self.completed[index] = result
            self.failures.pop(index, None)
            self._append({"index": index, "outcome": _outcome_to_dict(result)})

    def pending(self) -> list[int]:
        """Replication indices still to run (missing or previously failed)."""
        return [i for i in range(self.n_runs) if i not in self.completed]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
