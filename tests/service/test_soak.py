"""Service ↔ replay parity under chaos — the soak_smoke CI gate.

A miniature (seconds, not minutes) chaos soak through the *real* stack:
3 tenants of Poisson wire traffic via the ingress, sensor noise, kill
and revocation start faults, ingress-injected kills/evictions and ≥ 5
forced kernel crashes.  The assertions are the service's acceptance
criteria verbatim: zero accepted-then-lost jobs, restarts within the
backoff cap, and every tenant's surviving journal replaying
bit-identically through the closed-horizon engine — shed accounting
included.  Per-tenant journals and shed logs are written under
``test-results/soak/`` so a CI failure ships the evidence as artifacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.soak import SoakConfig, run_soak
from repro.service import RestartPolicy

ARTIFACT_DIR = Path(__file__).resolve().parents[2] / "test-results" / "soak"


@pytest.mark.soak_smoke
class TestSoakSmoke:
    def test_chaos_soak_replays_bit_identically(self):
        config = SoakConfig(
            tenants=3,
            lam=2.0,
            horizon=24.0,
            seed=2011,
            forced_crashes=5,
            ingress_faults_per_tenant=2,
            kill_rate=0.05,
            revocation_rate=0.02,
            sensor_noise=0.1,
            snapshot_every=8,
            flush_every=4,
            policy=RestartPolicy(backoff_base=0.001, backoff_cap=0.004),
            journal_dir=str(ARTIFACT_DIR),
        )
        report = run_soak(config)

        # The acceptance gate, itemised so a failure names the criterion.
        assert report.forced_crashes >= 5
        assert report.recoveries >= report.forced_crashes
        assert report.malformed_rejected, "a malformed line was accepted"
        for tenant, outcome in sorted(report.outcomes.items()):
            assert outcome.report.lost_jids == (), (
                f"{tenant}: accepted-then-lost jobs "
                f"{outcome.report.lost_jids}"
            )
            assert outcome.backoffs_within_cap, (
                f"{tenant}: backoffs {outcome.report.backoffs} exceed "
                f"cap {config.policy.backoff_cap}"
            )
            assert outcome.check.ok, (
                f"{tenant}: replay parity failed: {outcome.check.failures}"
            )
            assert (ARTIFACT_DIR / f"{tenant}.journal.jsonl").exists()
        assert report.ok
        assert report.failures() == []

    def test_soak_exercises_shedding_parity(self):
        """A starved budget forces queue_budget sheds mid-soak; the shed
        accounting must still balance and the replay must still agree."""
        config = SoakConfig(
            tenants=3,
            lam=4.0,
            horizon=16.0,
            seed=7,
            forced_crashes=3,
            queue_budget=3,
            snapshot_every=8,
            flush_every=2,
            policy=RestartPolicy(backoff_base=0.001, backoff_cap=0.004),
            journal_dir=str(ARTIFACT_DIR / "starved"),
        )
        report = run_soak(config)
        assert report.shed > 0, "the starved soak never shed — not a test"
        assert report.submitted == report.accepted + report.shed
        assert report.ok, report.failures()

    def test_soak_emits_health_timeline(self, tmp_path):
        """With ``--timeline`` the soak writes a machine-readable JSONL
        health timeline: per-chunk fleet scrapes with health states and
        SLO snapshots while crashes are landing."""
        import json

        timeline = tmp_path / "timeline.jsonl"
        config = SoakConfig(
            tenants=2,
            lam=2.0,
            horizon=12.0,
            seed=2011,
            forced_crashes=2,
            ingress_faults_per_tenant=1,
            policy=RestartPolicy(backoff_base=0.001, backoff_cap=0.004),
            timeline_path=str(timeline),
        )
        report = run_soak(config)
        assert report.ok, report.failures()
        assert report.timeline_path == str(timeline)
        assert any(
            "health timeline" in line for line in report.summary_lines()
        )
        rows = [
            json.loads(line)
            for line in timeline.read_text().splitlines()
            if line.strip()
        ]
        assert rows, "timeline is empty"
        last = rows[-1]
        assert set(last["health"]) == {"t0", "t1"}
        for tenant, entry in last["fleet"].items():
            assert entry["health"] in ("ok", "degraded", "restarting")
            assert entry["stats"]["tenant"] == tenant
            assert "slo" in entry
        # lines_sent is monotone: the scrapes straddle the whole stream
        sent = [row["lines_sent"] for row in rows]
        assert sent == sorted(sent) and sent[-1] > 0

    def test_soak_timeline_works_with_telemetry_off(self, tmp_path):
        """The timeline (health states + kernel-derived live facts) does
        not require the SLO trackers — telemetry off still scrapes."""
        import json

        timeline = tmp_path / "off.jsonl"
        config = SoakConfig(
            tenants=2,
            lam=1.0,
            horizon=10.0,
            forced_crashes=1,
            ingress_faults_per_tenant=1,
            policy=RestartPolicy(backoff_base=0.001, backoff_cap=0.004),
            telemetry=False,
            timeline_path=str(timeline),
        )
        report = run_soak(config)
        assert report.ok, report.failures()
        rows = [
            json.loads(line)
            for line in timeline.read_text().splitlines()
            if line.strip()
        ]
        entry = rows[-1]["fleet"]["t0"]
        assert "counters" not in entry["slo"]  # no tracker...
        assert "live" in entry["slo"]  # ...but kernel facts still scrape


@pytest.mark.kill_soak_smoke
class TestKill9Smoke:
    """The durability acceptance gate: SIGKILL a real child service
    mid-traffic, cold-start from disk, resend the whole stream, and
    prove bit-identical replay parity plus zero accepted-job loss.

    Runs as its own CI step (``-m kill_soak_smoke``); the store
    directory lands under ``test-results/kill9/`` so a failure ships
    the WAL, op log and snapshots as artifacts."""

    def test_kill9_soak_passes(self):
        from repro.experiments.soak import Kill9Config, run_kill9

        store_dir = ARTIFACT_DIR.parent / "kill9"
        config = Kill9Config(
            tenants=2,
            lam=2.0,
            horizon=20.0,
            seed=2011,
            kills=3,
            forced_crashes=2,
            ingress_faults_per_tenant=2,
            snapshot_every=8,
            flush_every=4,
            store_dir=str(store_dir),
        )
        report = run_kill9(config)

        assert report.kills_delivered == 3
        assert report.incarnations >= 5  # kills + final traffic + audit
        assert report.drain_exit_code == 0
        # Resending the full stream after each cold start must hit the
        # dedup journal, not re-admit: a healthy run sees many of them.
        assert report.duplicate_acks > 0
        for k, per_tenant in sorted(report.parity_per_kill.items()):
            for tenant, ok in sorted(per_tenant.items()):
                assert ok, f"kill {k}: {tenant} lost replay parity"
        # Drain-boundary bit-identity: the audited cold start reports
        # the same counters the drained service last printed — and the
        # same SLO snapshot (modulo the restart-legitimate fields).
        from repro.obs.telemetry import slo_parity_view

        for tenant, drained in sorted(report.drain_stats.items()):
            cold = report.cold_stats[tenant]
            for key in ("submitted", "accepted", "shed", "accepted_crc"):
                assert drained[key] == cold[key], (tenant, key)
            assert drained["accepted"] + drained["shed"] == drained["submitted"]
            assert slo_parity_view(drained["slo"]) == slo_parity_view(
                cold["slo"]
            ), f"{tenant}: SLO diverged across the drain boundary"
        for tenant, ack in sorted(report.close_acks.items()):
            assert ack.get("parity") is True, (tenant, ack)
            assert ack.get("lost") == [], (tenant, ack)
        assert report.ok, report.failures()

        # The machine-readable health timeline straddles every SIGKILL:
        # one fleet scrape per incarnation, every tenant present.
        import json

        assert report.timeline_path
        rows = [
            json.loads(line)
            for line in Path(report.timeline_path).read_text().splitlines()
            if line.strip()
        ]
        events = [row["event"] for row in rows]
        assert events.count("pre_kill") == 3
        assert "pre_drain" in events and "post_cold_start" in events
        for row in rows:
            assert set(row["fleet"]) == {"t0", "t1"}, row
